//! # NCS — a multithreaded message passing environment for ATM LAN/WAN
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.
//!
//! ```
//! use bytes::Bytes;
//! use ncs::core::{NcsConfig, NcsWorld, ThreadAddr};
//! use ncs::net::Testbed;
//! use ncs::sim::Sim;
//!
//! // Two NCS processes on a simulated 1995 ATM LAN exchanging a message.
//! let sim = Sim::new();
//! let net = Testbed::SunAtmLanTcp.build(2);
//! NcsWorld::launch(&sim, vec![net], 2, NcsConfig::default(), |id, proc_| {
//!     proc_.t_create("worker", 5, move |ncs| {
//!         if id == 0 {
//!             ncs.send(ThreadAddr::new(1, 0), 7, Bytes::from_static(b"hi"));
//!         } else {
//!             assert_eq!(ncs.recv_any().tag, 7);
//!         }
//!     });
//! });
//! sim.run().assert_clean();
//! ```

#![forbid(unsafe_code)]

pub use ncs_apps as apps;
pub use ncs_core as core;
pub use ncs_mts as mts;
pub use ncs_net as net;
pub use ncs_p4 as p4;
pub use ncs_sim as sim;
