//! Workspace integration tests: every layer of the stack exercised
//! together through the `ncs` facade — simulator, network models, MTS,
//! p4, NCS core, and the applications.

use bytes::Bytes;
use ncs::apps::fft::{fft_ncs, fft_p4, FftConfig};
use ncs::apps::jpeg_dist::{jpeg_ncs, jpeg_p4, JpegConfig};
use ncs::apps::matmul::{matmul_ncs, matmul_p4, MatmulConfig};
use ncs::core::faulty::FaultyNet;
use ncs::core::{ErrorControl, NcsConfig, NcsWorld, ThreadAddr};
use ncs::net::{Network, Testbed};
use ncs::sim::Sim;
use std::sync::Arc;

fn small_matmul(nodes: usize) -> MatmulConfig {
    MatmulConfig {
        dim: 64,
        nodes,
        seed: 77,
    }
}

#[test]
fn matmul_verified_on_every_testbed() {
    for testbed in [
        Testbed::SunEthernet,
        Testbed::SunAtmLanTcp,
        Testbed::NynetTcp,
        Testbed::SunAtmLanApi,
        Testbed::NynetApi,
    ] {
        let cfg = small_matmul(2);
        let p4 = matmul_p4(testbed.build(3), cfg);
        let ncs = matmul_ncs(testbed.build(3), cfg);
        assert!(p4.verified, "{}: p4 result", testbed.id());
        assert!(ncs.verified, "{}: NCS result", testbed.id());
    }
}

#[test]
fn ncs_beats_p4_on_the_paper_testbeds() {
    // The headline claim at reduced scale: multithreaded message passing
    // wins once communication is a real fraction of runtime.
    for testbed in [
        Testbed::SunEthernet,
        Testbed::SunAtmLanTcp,
        Testbed::NynetTcp,
    ] {
        let cfg = small_matmul(2);
        let p4 = matmul_p4(testbed.build(3), cfg);
        let ncs = matmul_ncs(testbed.build(3), cfg);
        assert!(
            ncs.elapsed < p4.elapsed,
            "{}: NCS {} !< p4 {}",
            testbed.id(),
            ncs.elapsed,
            p4.elapsed
        );
    }
}

#[test]
fn fft_verified_and_scales() {
    // Paper-scale input so computation dominates the fixed per-message
    // latencies and distribution actually pays off.
    let mut last = None;
    for nodes in [1usize, 2, 4] {
        let cfg = FftConfig {
            m: 512,
            sets: 4,
            nodes,
            seed: 5,
        };
        let run = fft_ncs(Testbed::SunAtmLanTcp.build(nodes + 1), cfg);
        assert!(run.verified, "{nodes} nodes");
        if let Some(prev) = last {
            assert!(
                run.elapsed < prev,
                "{nodes} nodes did not speed up: {} !< {}",
                run.elapsed,
                prev
            );
        }
        last = Some(run.elapsed);
    }
}

#[test]
fn fft_p4_variant_verified_on_wan() {
    let cfg = FftConfig {
        m: 256,
        sets: 2,
        nodes: 4,
        seed: 6,
    };
    let run = fft_p4(Testbed::NynetTcp.build(5), cfg);
    assert!(run.verified);
}

#[test]
fn jpeg_pipeline_verified_both_variants() {
    let cfg = JpegConfig {
        width: 192,
        height: 128,
        quality: 75,
        entropy: ncs::apps::jpeg::EntropyKind::RleVarint,
        nodes: 4,
        seed: 9,
    };
    let p4 = jpeg_p4(Testbed::SunEthernet.build(5), cfg);
    let ncs = jpeg_ncs(Testbed::SunEthernet.build(5), cfg);
    assert!(p4.verified && ncs.verified);
    assert!(ncs.elapsed < p4.elapsed, "pipeline overlap must win");
    // Real compression happened.
    assert!(p4.compressed_bytes > 0 && p4.compressed_bytes < 192 * 128);
}

#[test]
fn deterministic_replay_across_full_stack() {
    let run = || {
        let cfg = small_matmul(2);
        matmul_ncs(Testbed::NynetTcp.build(3), cfg).elapsed
    };
    assert_eq!(run(), run(), "same seed must replay bit-identically");
}

#[test]
fn error_control_survives_a_lossy_atm_lan() {
    // FaultyNet over the ATM LAN + NCS checksum/retransmit: application
    // traffic arrives intact despite injected corruption.
    let sim = Sim::new();
    let base = Testbed::SunAtmLanTcp.build(2);
    let faulty = Arc::new(FaultyNet::new(base, 0.25, 0xBAD));
    let faulty_dyn: Arc<dyn Network> = Arc::clone(&faulty) as Arc<dyn Network>;
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        ..NcsConfig::default()
    };
    let world = NcsWorld::launch(&sim, vec![faulty_dyn], 2, cfg, |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..10u32 {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![i as u8; 2048]));
                }
            } else {
                for i in 0..10u32 {
                    let m = ncs.recv(Some(0), None, Some(i));
                    assert!(m.data.iter().all(|&b| b == i as u8));
                }
            }
        });
    });
    sim.run().assert_clean();
    assert!(faulty.corrupted_count() > 0, "injection must fire");
    assert!(
        world.procs()[0].retransmits() > 0,
        "retransmits must happen"
    );
}

#[test]
fn single_node_threading_overhead_is_small_but_real() {
    // Paper Table 1/3, nodes = 1: NCS carries user-level threading
    // overhead over the sequential baseline, and nothing more.
    let cfg = small_matmul(1);
    // The fabric needs two endpoints even when only one process runs.
    let p4 = matmul_p4(Testbed::SunEthernet.build(2), cfg);
    let ncs = matmul_ncs(Testbed::SunEthernet.build(2), cfg);
    assert!(p4.verified && ncs.verified);
    assert!(ncs.elapsed >= p4.elapsed, "threads are not free");
    let overhead =
        (ncs.elapsed.as_secs_f64() - p4.elapsed.as_secs_f64()) / p4.elapsed.as_secs_f64();
    assert!(overhead < 0.02, "overhead {overhead} should be under 2%");
}

#[test]
fn hsm_tier_delivers_faster_than_nsm_tier() {
    use ncs::net::stack::BlockingWait;
    use ncs::net::NodeId;
    use ncs::sim::{Dur, SimTime};
    use parking_lot::Mutex;

    let measure = |testbed: Testbed| {
        let sim = Sim::new();
        let net = testbed.build(2);
        let done: Arc<Mutex<SimTime>> = Arc::new(Mutex::new(SimTime::ZERO));
        let n2 = Arc::clone(&net);
        sim.spawn("tx", move |ctx| {
            n2.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                0,
                Bytes::from(vec![0u8; 100_000]),
            );
        });
        let d2 = Arc::clone(&done);
        sim.spawn("rx", move |ctx| {
            let m = net.inbox(NodeId(1)).recv(ctx).unwrap();
            ctx.sleep(net.recv_pickup_cost(NodeId(1), m.payload.len()));
            *d2.lock() = ctx.now();
        });
        sim.run().assert_clean();
        let t = *done.lock();
        t.since(SimTime::ZERO)
    };
    let nsm = measure(Testbed::SunAtmLanTcp);
    let hsm = measure(Testbed::SunAtmLanApi);
    assert!(hsm < nsm, "HSM {hsm} !< NSM {nsm}");
    assert!(hsm > Dur::ZERO);
}
