//! # ncs-net — network models for the NCS reproduction
//!
//! Everything between a process's buffer and the far host's buffer:
//!
//! * **ATM data plane**: [`cell`] (53-byte cells with HEC), [`aal5`] and
//!   [`aal34`] adaptation layers, [`crc`] algorithms;
//! * **fabrics**: [`ethernet`] (shared 10 Mb/s segment), [`atm`] (FORE-style
//!   single-switch LAN and the NYNET WAN testbed), [`wan`] (multi-switch
//!   fat-tree and DS-3/OC-48 wide-area ring with VBR cross-traffic), over
//!   FIFO-queued [`link`]s with payload-effective SONET/DS-3/TAXI rates;
//! * **host cost models**: [`host`] — CPU clocks, syscall/trap/interrupt
//!   costs, and the Figure-3 datapath (5 memory accesses per word on the
//!   socket path vs 3 on NCS's mapped-buffer path);
//! * **transport stacks**: [`stack`] — the socket/TCP/IP path ([`TcpNet`])
//!   and the NCS ATM API path ([`AtmApiNet`]) with Figure-2's multiple-I/O-
//!   buffer pipeline, both behind the [`Network`] trait;
//! * **testbeds**: [`topology::Testbed`] presets mirroring the paper's
//!   experimental environment;
//! * **fault injection**: [`faults`] — seeded cell-level bit flips and
//!   loss (exercising real HEC correction and AAL5 CRC rejection) plus
//!   crash-stop nodes, as a [`Network`] decorator; deterministic link
//!   flap windows and switch-buffer overflow live on [`link`] and [`atm`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aal34;
pub mod aal5;
pub mod api;
pub mod atm;
pub mod cell;
pub mod crc;
pub mod ethernet;
pub mod fabric;
pub mod faults;
pub mod host;
pub mod link;
pub mod stack;
pub mod topology;
pub mod wan;

pub use api::{AtmApi, TrafficClass, Vc, VcTable};
pub use faults::{ChaosNet, ChaosParams, FaultStats, FaultStatsSnapshot};
pub use fabric::{Fabric, IdealFabric, NodeId, SwitchedFabric, TransferTiming};
pub use wan::{
    spawn_vbr, FatTreeFabric, FatTreeParams, VbrConfig, VbrHandle, WanRingFabric, WanRingParams,
};
pub use host::{DatapathKind, HostParams};
pub use link::{LinkSpec, LinkState};
pub use stack::{
    AtmApiNet, AtmApiParams, BlockingWait, CellEventMode, Delivery, Network, TcpNet, TcpParams,
    WaitPolicy,
};
pub use topology::{ChaosTopology, Testbed};
