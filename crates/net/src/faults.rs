//! Cell-level fault injection: a [`Network`] decorator that damages traffic
//! the way a real ATM plant does.
//!
//! [`ChaosNet`] sits between a message layer and a transport stack. For each
//! message it models the AAL5 cell stream the transport would emit and rolls
//! seeded per-cell faults:
//!
//! * **bit flips** — one random bit of the 53-byte cell (or a multi-bit
//!   burst). Header hits go through real HEC correction-mode decoding
//!   ([`CellHeader::unpack_correcting`]): single-bit errors are repaired,
//!   worse ones discard the cell. Payload hits ride to the receiver where
//!   the AAL5 CRC-32 rejects the CS-PDU ([`aal5::reassemble`]).
//! * **cell loss** — the cell vanishes (switch congestion elsewhere), so
//!   reassembly fails on framing or length.
//! * **crash-stop nodes** — after a scheduled instant a node emits and
//!   absorbs nothing; traffic to or from it disappears silently.
//!
//! A damaged CS-PDU means the *message* never completes at the receiver:
//! ChaosNet drops it whole and the error-control layer above must recover
//! by timeout and retransmission. Every retransmission re-rolls its faults.
//! All damage is tallied in [`FaultStats`].
//!
//! Deterministic link up/down flap windows and switch output-buffer
//! overflow live *below* the transport, on [`crate::link::LinkState`] and
//! the ATM fabrics, because they depend on wire timing; this module handles
//! the payload-integrity faults that depend on message contents.

use bytes::Bytes;
use ncs_sim::{ChoicePoint, Ctx, Dur, Sim, SimChannel, SimRng, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::aal5;
use crate::cell::{AtmCell, CellHeader, CELL_BYTES, CELL_HEADER};
use crate::fabric::NodeId;
use crate::host::HostParams;
use crate::stack::{Delivery, Network, WaitPolicy};

/// Fault-injection knobs for [`ChaosNet`].
#[derive(Clone, Debug)]
pub struct ChaosParams {
    /// Per-cell probability of a bit-flip event.
    pub p_cell_corrupt: f64,
    /// Per-cell probability the cell is lost outright.
    pub p_cell_loss: f64,
    /// Probability a bit-flip event is a multi-bit burst (three flips in
    /// one byte) instead of a single bit — bursts in the header defeat
    /// HEC's single-bit correction.
    pub p_burst: f64,
    /// CS-PDU chunking applied to large messages before cell accounting
    /// (the transports hand AAL5 one I/O buffer at a time).
    pub pdu_bytes: usize,
    /// RNG seed; the same seed over the same traffic damages the same
    /// cells.
    pub seed: u64,
}

impl ChaosParams {
    /// No faults at all (useful as a baseline in sweeps).
    pub fn clean(seed: u64) -> ChaosParams {
        ChaosParams {
            p_cell_corrupt: 0.0,
            p_cell_loss: 0.0,
            p_burst: 0.1,
            pdu_bytes: 9180,
            seed,
        }
    }

    /// Corruption and loss at the given per-cell rates.
    pub fn new(p_cell_corrupt: f64, p_cell_loss: f64, seed: u64) -> ChaosParams {
        ChaosParams {
            p_cell_corrupt,
            p_cell_loss,
            ..ChaosParams::clean(seed)
        }
    }
}

/// Running damage tally, shared by reference with the harness.
#[derive(Default)]
pub struct FaultStats {
    /// Cells that entered the fault model.
    pub cells_total: AtomicU64,
    /// Cells hit by a bit-flip event.
    pub cells_corrupted: AtomicU64,
    /// Cells lost outright.
    pub cells_lost: AtomicU64,
    /// Headers repaired by HEC single-bit correction.
    pub headers_corrected: AtomicU64,
    /// Cells discarded for uncorrectable headers.
    pub cells_discarded: AtomicU64,
    /// CS-PDUs rejected by the AAL5 CRC-32 or framing checks.
    pub pdus_rejected: AtomicU64,
    /// Messages dropped whole (any of their PDUs died).
    pub messages_dropped: AtomicU64,
    /// Messages discarded because an endpoint had crashed.
    pub crash_drops: AtomicU64,
}

/// A plain-value copy of [`FaultStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Cells that entered the fault model.
    pub cells_total: u64,
    /// Cells hit by a bit-flip event.
    pub cells_corrupted: u64,
    /// Cells lost outright.
    pub cells_lost: u64,
    /// Headers repaired by HEC single-bit correction.
    pub headers_corrected: u64,
    /// Cells discarded for uncorrectable headers.
    pub cells_discarded: u64,
    /// CS-PDUs rejected by the AAL5 CRC-32 or framing checks.
    pub pdus_rejected: u64,
    /// Messages dropped whole.
    pub messages_dropped: u64,
    /// Messages discarded because an endpoint had crashed.
    pub crash_drops: u64,
}

impl FaultStats {
    /// Reads all counters.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            cells_total: self.cells_total.load(Ordering::Relaxed),
            cells_corrupted: self.cells_corrupted.load(Ordering::Relaxed),
            cells_lost: self.cells_lost.load(Ordering::Relaxed),
            headers_corrected: self.headers_corrected.load(Ordering::Relaxed),
            cells_discarded: self.cells_discarded.load(Ordering::Relaxed),
            pdus_rejected: self.pdus_rejected.load(Ordering::Relaxed),
            messages_dropped: self.messages_dropped.load(Ordering::Relaxed),
            crash_drops: self.crash_drops.load(Ordering::Relaxed),
        }
    }
}

/// The fault-injecting network decorator.
pub struct ChaosNet {
    inner: Arc<dyn Network>,
    params: ChaosParams,
    rng: Mutex<SimRng>,
    stats: Arc<FaultStats>,
    /// Crash-stop schedule: node → instant after which it is dead.
    crashes: Mutex<BTreeMap<usize, SimTime>>,
}

impl ChaosNet {
    /// Wraps `inner` with the given fault parameters.
    pub fn new(inner: Arc<dyn Network>, params: ChaosParams) -> Arc<ChaosNet> {
        assert!((0.0..=1.0).contains(&params.p_cell_corrupt));
        assert!((0.0..=1.0).contains(&params.p_cell_loss));
        assert!((0.0..=1.0).contains(&params.p_burst));
        assert!(params.pdu_bytes > 0 && params.pdu_bytes <= aal5::MAX_PDU);
        Arc::new(ChaosNet {
            inner,
            rng: Mutex::new(SimRng::new(params.seed)),
            stats: Arc::new(FaultStats::default()),
            crashes: Mutex::new(BTreeMap::new()),
            params,
        })
    }

    /// The damage tally (shared; keep a clone before moving the net).
    pub fn stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }

    /// Schedules `node` to crash-stop at `at`: from then on it neither
    /// sends nor receives.
    pub fn crash_at(&self, node: NodeId, at: SimTime) {
        self.crashes.lock().insert(node.idx(), at);
    }

    /// Whether `node` has crashed as of `now`.
    pub fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.crashes
            .lock()
            .get(&node.idx())
            .is_some_and(|&at| at <= now)
    }

    /// Runs one CS-PDU through the cell-level fault model. Returns whether
    /// the receiver's AAL5 layer hands the intact payload up.
    fn pdu_survives(&self, sim: &Sim, chunk: &[u8], rng: &mut SimRng) -> bool {
        let n_cells = aal5::cells_for_pdu(chunk.len());
        self.stats
            .cells_total
            .fetch_add(n_cells as u64, Ordering::Relaxed);

        // Cheap pass: draw each cell's fate without materializing anything.
        let mut lost = Vec::new();
        let mut flips: Vec<(usize, Vec<usize>)> = Vec::new();
        for i in 0..n_cells {
            if rng.gen_bool(self.params.p_cell_loss) {
                lost.push(i);
                continue;
            }
            if rng.gen_bool(self.params.p_cell_corrupt) {
                let first = rng.gen_index(CELL_BYTES * 8);
                let mut bits = vec![first];
                if rng.gen_bool(self.params.p_burst) {
                    // A burst: two more flips within the same byte.
                    let byte = first / 8;
                    bits.push(byte * 8 + rng.gen_index(8));
                    bits.push(byte * 8 + rng.gen_index(8));
                    bits.dedup();
                }
                flips.push((i, bits));
            }
        }
        self.stats
            .cells_lost
            .fetch_add(lost.len() as u64, Ordering::Relaxed);
        self.stats
            .cells_corrupted
            .fetch_add(flips.len() as u64, Ordering::Relaxed);
        if lost.is_empty() && flips.is_empty() {
            return true;
        }

        // Exploration: *which* cell of the train a rolled fault lands on is
        // timing, not semantics — any position is a legal victim. Let the
        // installed schedule policy rotate each hit; choice 0 keeps the
        // rolled position, so replaying an empty script is the canonical
        // fault pattern. Never consulted outside exploration runs.
        if n_cells >= 2 && sim.has_schedule_policy() {
            for i in lost.iter_mut().chain(flips.iter_mut().map(|(i, _)| i)) {
                let shift = sim.schedule_choice(ChoicePoint::FaultTiming, n_cells);
                *i = (*i + shift) % n_cells;
            }
            lost.sort_unstable();
            lost.dedup();
        }

        // Something was hit: run the real ATM receive pipeline over the
        // materialized cell stream to decide the PDU's fate.
        let cells = aal5::segment(chunk, 0, 32).expect("chunk bounded by pdu_bytes <= MAX_PDU");
        debug_assert_eq!(cells.len(), n_cells);
        let flip_map: BTreeMap<usize, &[usize]> = flips
            .iter()
            .map(|(i, bits)| (*i, bits.as_slice()))
            .collect();
        let mut received = Vec::with_capacity(n_cells);
        for (i, cell) in cells.iter().enumerate() {
            if lost.binary_search(&i).is_ok() {
                continue;
            }
            let mut wire = cell.to_bytes();
            if let Some(bits) = flip_map.get(&i) {
                for &b in *bits {
                    wire[b / 8] ^= 1 << (b % 8);
                }
            }
            let mut hdr = [0u8; CELL_HEADER];
            hdr.copy_from_slice(&wire[..CELL_HEADER]);
            match CellHeader::unpack_correcting(&hdr) {
                Ok((header, corrected)) => {
                    if corrected {
                        self.stats.headers_corrected.fetch_add(1, Ordering::Relaxed);
                    }
                    received.push(AtmCell::new(
                        header,
                        Bytes::copy_from_slice(&wire[CELL_HEADER..]),
                    ));
                }
                Err(_) => {
                    self.stats.cells_discarded.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        match aal5::reassemble(&received) {
            Ok(data) if data == chunk => true,
            _ => {
                self.stats.pdus_rejected.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Whether a whole message survives: every CS-PDU must.
    fn message_survives(&self, sim: &Sim, payload: &[u8]) -> bool {
        let mut rng = self.rng.lock();
        let mut ok = true;
        if payload.is_empty() {
            ok = self.pdu_survives(sim, &[], &mut rng);
        } else {
            for chunk in payload.chunks(self.params.pdu_bytes) {
                // Keep draining the RNG for every chunk so fault positions
                // do not depend on earlier chunks' outcomes.
                ok &= self.pdu_survives(sim, chunk, &mut rng);
            }
        }
        ok
    }
}

impl Network for ChaosNet {
    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn host(&self, node: NodeId) -> &HostParams {
        self.inner.host(node)
    }

    fn send(
        &self,
        ctx: &Ctx,
        policy: &dyn WaitPolicy,
        src: NodeId,
        dst: NodeId,
        tag: u64,
        payload: Bytes,
    ) {
        let now = ctx.now();
        if self.is_crashed(src, now) || self.is_crashed(dst, now) {
            self.stats.crash_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if !self.message_survives(ctx.sim(), &payload) {
            self.stats.messages_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.inner.send(ctx, policy, src, dst, tag, payload);
    }

    fn inbox(&self, node: NodeId) -> SimChannel<Delivery> {
        self.inner.inbox(node)
    }

    fn recv_pickup_cost(&self, node: NodeId, bytes: usize) -> Dur {
        self.inner.recv_pickup_cost(node, bytes)
    }

    fn recv_reaction_cost(&self, node: NodeId, bytes: usize) -> Dur {
        self.inner.recv_reaction_cost(node, bytes)
    }

    fn peer_unreachable(&self, src: NodeId, dst: NodeId, now: SimTime) -> bool {
        // Crash-stop is not a partition: the links stay up, the peer is
        // silent. Only real route severance counts.
        self.inner.peer_unreachable(src, dst, now)
    }

    fn description(&self) -> String {
        format!(
            "chaos(corrupt {:.1e}/cell, loss {:.1e}/cell, seed {}) over {}",
            self.params.p_cell_corrupt,
            self.params.p_cell_loss,
            self.params.seed,
            self.inner.description()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::IdealFabric;
    use crate::stack::{BlockingWait, TcpNet, TcpParams};
    use ncs_sim::Sim;

    fn base_net() -> Arc<dyn Network> {
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(5)));
        let hosts = (0..2).map(|_| HostParams::test_fast()).collect();
        Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
    }

    /// Sends `n` messages of `bytes` through `net`; returns how many arrive.
    fn deliveries(net: Arc<ChaosNet>, n: usize, bytes: usize) -> usize {
        let sim = Sim::new();
        let sender = Arc::clone(&net);
        sim.spawn("sender", move |ctx| {
            for i in 0..n {
                sender.send(
                    ctx,
                    &BlockingWait,
                    NodeId(0),
                    NodeId(1),
                    i as u64,
                    Bytes::from(vec![0xA5u8; bytes]),
                );
            }
        });
        let got = Arc::new(Mutex::new(0usize));
        let got2 = Arc::clone(&got);
        sim.spawn("receiver", move |ctx| {
            let inbox = net.inbox(NodeId(1));
            while inbox.recv(ctx).is_ok() {
                *got2.lock() += 1;
            }
        });
        let outcome = sim.run();
        assert!(outcome.panics.is_empty(), "{:?}", outcome.panics);
        let n = *got.lock();
        n
    }

    #[test]
    fn clean_params_are_transparent() {
        let net = ChaosNet::new(base_net(), ChaosParams::clean(1));
        let stats = net.stats();
        let sim = Sim::new();
        let tx = Arc::clone(&net);
        sim.spawn("sender", move |ctx| {
            tx.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                9,
                Bytes::from_static(b"hello cells"),
            );
        });
        let ok = Arc::new(Mutex::new(false));
        let ok2 = Arc::clone(&ok);
        let rx = Arc::clone(&net);
        sim.spawn("receiver", move |ctx| {
            let d = rx.inbox(NodeId(1)).recv(ctx).unwrap();
            assert_eq!(&d.payload[..], b"hello cells");
            *ok2.lock() = true;
        });
        sim.run();
        assert!(*ok.lock());
        let s = stats.snapshot();
        assert_eq!(s.cells_corrupted, 0);
        assert_eq!(s.messages_dropped, 0);
        assert!(s.cells_total > 0);
    }

    #[test]
    fn heavy_corruption_drops_messages() {
        let net = ChaosNet::new(base_net(), ChaosParams::new(0.5, 0.0, 7));
        let stats = net.stats();
        let sim = Sim::new();
        let tx = Arc::clone(&net);
        sim.spawn("sender", move |ctx| {
            for i in 0..10u64 {
                tx.send(
                    ctx,
                    &BlockingWait,
                    NodeId(0),
                    NodeId(1),
                    i,
                    Bytes::from(vec![3u8; 4096]),
                );
            }
        });
        sim.run();
        let s = stats.snapshot();
        assert!(s.cells_corrupted > 0);
        assert!(s.messages_dropped > 0, "{s:?}");
        // Payload hits must be caught by the AAL5 CRC.
        assert!(s.pdus_rejected > 0, "{s:?}");
    }

    #[test]
    fn single_bit_header_hits_are_survivable() {
        // With bursts disabled every header hit is a single flipped bit,
        // which HEC correction repairs; only payload hits kill PDUs.
        let mut p = ChaosParams::new(0.05, 0.0, 21);
        p.p_burst = 0.0;
        let net = ChaosNet::new(base_net(), p);
        let stats = net.stats();
        let sim = Sim::new();
        let tx = Arc::clone(&net);
        sim.spawn("sender", move |ctx| {
            for i in 0..200u64 {
                tx.send(
                    ctx,
                    &BlockingWait,
                    NodeId(0),
                    NodeId(1),
                    i,
                    Bytes::from(vec![17u8; 1024]),
                );
            }
        });
        sim.run();
        let s = stats.snapshot();
        assert!(s.headers_corrected > 0, "header hits occur at 5% {s:?}");
        assert_eq!(s.cells_discarded, 0, "single-bit headers always repair");
    }

    #[test]
    fn cell_loss_breaks_reassembly() {
        let net = ChaosNet::new(base_net(), ChaosParams::new(0.0, 0.3, 5));
        let stats = net.stats();
        let delivered = deliveries(Arc::clone(&net), 20, 2048);
        let s = stats.snapshot();
        assert!(s.cells_lost > 0);
        assert!(s.messages_dropped > 0);
        assert!(delivered < 20);
        assert_eq!(
            s.messages_dropped as usize + delivered,
            20,
            "every message either arrives or is counted dropped"
        );
    }

    #[test]
    fn crashed_destination_absorbs_nothing() {
        let net = ChaosNet::new(base_net(), ChaosParams::clean(3));
        net.crash_at(NodeId(1), SimTime::ZERO);
        let stats = net.stats();
        let delivered = deliveries(Arc::clone(&net), 5, 64);
        assert_eq!(delivered, 0);
        assert_eq!(stats.snapshot().crash_drops, 5);
    }

    #[test]
    fn crash_takes_effect_at_its_instant() {
        let net = ChaosNet::new(base_net(), ChaosParams::clean(3));
        net.crash_at(NodeId(1), SimTime::ZERO + Dur::from_millis(1));
        assert!(!net.is_crashed(NodeId(1), SimTime::ZERO));
        assert!(net.is_crashed(NodeId(1), SimTime::ZERO + Dur::from_millis(2)));
    }

    #[test]
    fn same_seed_same_damage() {
        let run = |seed: u64| {
            let net = ChaosNet::new(base_net(), ChaosParams::new(0.02, 0.01, seed));
            let stats = net.stats();
            deliveries(net, 30, 1500);
            stats.snapshot()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn empty_messages_still_traverse() {
        let net = ChaosNet::new(base_net(), ChaosParams::new(0.0, 0.0, 1));
        let delivered = deliveries(Arc::clone(&net), 3, 0);
        assert_eq!(delivered, 3);
        // An empty payload still rides one cell (trailer only).
        assert_eq!(net.stats().snapshot().cells_total, 3);
    }

    #[test]
    fn fault_rolls_are_per_cell_not_per_batch() {
        // Fault decisions are drawn per cell *before* any transport
        // batching (I/O buffers, cell trains), so loss probability cannot
        // depend on how the transport groups cells. With the same seed,
        // one large message and the same bytes split into per-PDU messages
        // consume the RNG identically: the damage tallies must be *equal*,
        // not merely statistically close.
        let pdu = ChaosParams::clean(0).pdu_bytes;
        let run = |msgs: usize, bytes: usize| {
            let net = ChaosNet::new(base_net(), ChaosParams::new(0.01, 0.02, 99));
            let stats = net.stats();
            deliveries(net, msgs, bytes);
            stats.snapshot()
        };
        let whole = run(1, 10 * pdu);
        let split = run(10, pdu);
        assert_eq!(whole.cells_total, split.cells_total);
        assert_eq!(whole.cells_lost, split.cells_lost);
        assert_eq!(whole.cells_corrupted, split.cells_corrupted);
        assert_eq!(whole.pdus_rejected, split.pdus_rejected);
    }

    #[test]
    fn loss_rate_statistical_regression() {
        // Fixed seed, fixed traffic: the observed per-cell loss count must
        // (a) be byte-for-byte reproducible and (b) sit within 5 sigma of
        // the binomial expectation — a seeded-RNG regression net for the
        // fault model.
        let p_loss = 0.05;
        let run = || {
            let net = ChaosNet::new(base_net(), ChaosParams::new(0.0, p_loss, 4242));
            let stats = net.stats();
            deliveries(net, 50, 8192);
            stats.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same traffic, same damage");
        let n = a.cells_total as f64;
        let mean = n * p_loss;
        let sigma = (n * p_loss * (1.0 - p_loss)).sqrt();
        let lo = (mean - 5.0 * sigma).floor() as u64;
        let hi = (mean + 5.0 * sigma).ceil() as u64;
        assert!(
            (lo..=hi).contains(&a.cells_lost),
            "cells_lost {} outside [{lo}, {hi}] for n={n} p={p_loss}",
            a.cells_lost
        );
    }
}
