//! Wire-level fabrics: who can reach whom, and when bits arrive.
//!
//! A [`Fabric`] answers one question: *if node `src` hands the wire a chunk
//! of `n` payload bytes at time `t`, when does the last bit reach `dst`?*
//! All queueing is FIFO bookkeeping on [`crate::link::LinkState`]s — no per-cell events —
//! which keeps multi-megabyte experiments fast while preserving
//! serialization, contention, and propagation behaviour.
//!
//! Implementations: [`IdealFabric`] (tests), plus the Ethernet and ATM
//! fabrics in their own modules.

use ncs_sim::{Dur, SimTime};

/// A host's position on a fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index helper.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// When a booked chunk clears the sender and reaches the receiver.
#[derive(Clone, Copy, Debug)]
pub struct TransferTiming {
    /// When the chunk has fully left the sender's first-hop transmitter
    /// (the sender-side buffer holding it can be reused after this).
    pub first_hop_done: SimTime,
    /// When the last bit arrives at the destination.
    pub arrival: SimTime,
    /// The chunk was lost in flight (link outage or switch-buffer
    /// overflow); `arrival` is when it *would* have arrived. Transports
    /// must not deliver it.
    pub dropped: bool,
}

/// Per-cell arrival geometry of a booked cell train: the whole-train
/// [`TransferTiming`] plus an arithmetically derived inter-cell spacing, so
/// transports that want per-cell instants (e.g. a per-cell-interrupt
/// receiver model) never force the fabric into per-cell bookings or the
/// kernel into per-cell bookkeeping it didn't ask for.
#[derive(Clone, Copy, Debug)]
pub struct TrainTiming {
    /// The train as a whole; `whole.arrival` is the final cell's arrival.
    pub whole: TransferTiming,
    /// Cells in the train (≥ 1).
    pub cells: usize,
    /// Spacing between consecutive cell arrivals at the destination.
    pub cell_gap: Dur,
}

impl TrainTiming {
    /// Arrival instant of cell `i` (0-based): the last cell lands at
    /// `whole.arrival`, earlier cells one `cell_gap` apart before it.
    pub fn cell_arrival(&self, i: usize) -> SimTime {
        assert!(i < self.cells, "cell index out of train");
        self.whole.arrival - self.cell_gap * (self.cells - 1 - i) as u64
    }

    /// Arrival instant of the train's first cell. With
    /// [`TrainTiming::cell_gap`], this is all a transport needs to schedule
    /// the whole train as one self-rearming kernel event
    /// (`Sim::schedule_count_train`) instead of per-cell closures.
    pub fn first_arrival(&self) -> SimTime {
        self.cell_arrival(0)
    }
}

/// A wire-level topology with FIFO-queued links.
pub trait Fabric: Send + Sync + 'static {
    /// Number of attached hosts.
    fn nodes(&self) -> usize;

    /// Books a chunk of `payload_bytes` from `src` to `dst`, departing no
    /// earlier than `depart`. Framing (Ethernet headers, ATM cell tax) is
    /// the fabric's business; callers pass protocol-level bytes.
    fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        depart: SimTime,
    ) -> TransferTiming;

    /// Books `payload_bytes` as a train of `cells` cells of
    /// `cell_wire_bytes` wire bytes each, and reports per-cell arrival
    /// geometry. The default books via [`Fabric::transfer`] and derives
    /// the spacing from the access-link rate (exact for single-switch
    /// LANs, where the last hop runs at the access rate; an upper bound on
    /// bunching for multi-hop WANs). The spacing is clamped so the first
    /// cell never appears to arrive before `depart`.
    fn transfer_train(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        cells: usize,
        cell_wire_bytes: usize,
        depart: SimTime,
    ) -> TrainTiming {
        assert!(cells > 0, "a cell train needs at least one cell");
        let whole = self.transfer(src, dst, payload_bytes, depart);
        let rate = self.access_rate(src);
        let mut cell_gap = if cells == 1 || rate == u64::MAX {
            Dur::ZERO
        } else {
            Dur::for_bytes(cell_wire_bytes, rate)
        };
        let span = cell_gap * (cells - 1) as u64;
        let avail = whole.arrival.saturating_since(depart);
        if span > avail {
            cell_gap = avail / (cells - 1) as u64;
        }
        TrainTiming {
            whole,
            cells,
            cell_gap,
        }
    }

    /// Payload-effective rate (b/s) of `src`'s first hop, used by transport
    /// layers for send-buffer pacing.
    fn access_rate(&self, src: NodeId) -> u64;

    /// Bytes queued in the switch output port feeding `node`'s downlink at
    /// `now`. `None` when the fabric has no per-port output buffering to
    /// observe (e.g. [`IdealFabric`]). Observability hook only: reading it
    /// must not perturb timing.
    fn output_backlog(&self, node: NodeId, now: SimTime) -> Option<u64> {
        let _ = (node, now);
        None
    }

    /// Whether the route a chunk from `src` to `dst` would take at `at` is
    /// entirely severed — every link on it inside a scheduled outage
    /// window. Partition detection for the error-control layer: a sender
    /// whose loss-recovery timer fires against a severed route can fail
    /// fast instead of crawling through its retry budget. Default: never
    /// (fabrics without outage modeling are always connected). Reading it
    /// must not perturb timing.
    fn path_down(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        let _ = (src, dst, at);
        false
    }

    /// Human-readable summary for experiment reports.
    fn description(&self) -> String;
}

/// A fabric built from switches and point-to-point [`crate::link::LinkState`]s, exposing
/// the handles chaos experiments need: per-host access links (to schedule
/// outage/flap windows on), the switch-to-switch long-haul links, and the
/// fabric-wide loss counters. Every multi-host ATM fabric in this crate
/// implements it, so a fault harness can sweep topologies generically.
pub trait SwitchedFabric: Fabric {
    /// The host→switch access link of `node`.
    fn uplink_of(&self, node: NodeId) -> &std::sync::Arc<crate::link::LinkState>;

    /// The switch→host access link of `node`.
    fn downlink_of(&self, node: NodeId) -> &std::sync::Arc<crate::link::LinkState>;

    /// Switch-to-switch links (trunks, backbone segments, ring long-hauls)
    /// in a stable order; empty for a single-switch fabric.
    fn trunk_links(&self) -> Vec<std::sync::Arc<crate::link::LinkState>>;

    /// Chunks dropped to finite switch output buffers so far.
    fn overflow_drop_count(&self) -> u64;

    /// Chunks lost to link outage windows so far.
    fn flap_loss_count(&self) -> u64;
}

/// An infinitely fast fabric with a fixed one-way latency. For unit tests
/// that want to isolate protocol/CPU costs from wire behaviour.
pub struct IdealFabric {
    nodes: usize,
    latency: Dur,
}

impl IdealFabric {
    /// Creates an ideal fabric over `nodes` hosts with the given latency.
    pub fn new(nodes: usize, latency: Dur) -> IdealFabric {
        IdealFabric { nodes, latency }
    }
}

impl Fabric for IdealFabric {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        _payload_bytes: usize,
        depart: SimTime,
    ) -> TransferTiming {
        assert!(src.idx() < self.nodes && dst.idx() < self.nodes);
        TransferTiming {
            first_hop_done: depart,
            arrival: depart + self.latency,
            dropped: false,
        }
    }

    fn access_rate(&self, _src: NodeId) -> u64 {
        u64::MAX
    }

    fn description(&self) -> String {
        format!("ideal fabric, latency {}", self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_fabric_fixed_latency() {
        let f = IdealFabric::new(4, Dur::from_micros(7));
        let t0 = SimTime::ZERO + Dur::from_millis(1);
        let tt = f.transfer(NodeId(0), NodeId(3), 1_000_000, t0);
        assert_eq!(tt.first_hop_done, t0);
        assert_eq!(tt.arrival, t0 + Dur::from_micros(7));
    }

    #[test]
    #[should_panic]
    fn ideal_fabric_bounds_checked() {
        let f = IdealFabric::new(2, Dur::ZERO);
        f.transfer(NodeId(0), NodeId(5), 10, SimTime::ZERO);
    }

    #[test]
    fn default_train_timing_is_arithmetic() {
        // An ideal fabric is infinitely fast: all cells of a train land
        // together at the whole-train arrival.
        let f = IdealFabric::new(2, Dur::from_micros(3));
        let t0 = SimTime::ZERO + Dur::from_millis(2);
        let train = f.transfer_train(NodeId(0), NodeId(1), 480, 11, 53, t0);
        assert_eq!(train.cells, 11);
        assert_eq!(train.cell_gap, Dur::ZERO);
        assert_eq!(train.cell_arrival(0), train.whole.arrival);
        assert_eq!(train.cell_arrival(10), train.whole.arrival);
        assert_eq!(train.whole.arrival, t0 + Dur::from_micros(3));
    }
}
