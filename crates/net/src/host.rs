//! Host CPU and memory-datapath cost models.
//!
//! The paper's Figure 3 argument is a counting one: on the Unix
//! socket/TCP/IP path every transmitted word crosses the memory bus **five**
//! times (application write, socket-layer copy in and out of the kernel
//! buffer, TCP read for checksumming, DMA to the interface), while the NCS
//! path — kernel buffers mmap'ed into the NCS address space, traps instead
//! of read/write syscalls — needs only **three**. [`DatapathKind`] encodes
//! those counts and [`HostParams::copy_time`] turns them into virtual time.
//!
//! Per-platform constants are calibrated against the paper's single-node
//! measurements (see `EXPERIMENTS.md`); they describe early-1990s SPARC
//! workstations, not modern hardware.

use ncs_sim::{Ctx, Dur};

/// Which software datapath a transfer uses (Figure 3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DatapathKind {
    /// Unix sockets + TCP/IP: five memory-bus accesses per word.
    SocketTcp,
    /// NCS over the ATM API with mmap'ed kernel buffers: three accesses.
    NcsMapped,
}

impl DatapathKind {
    /// Memory-bus accesses per 32-bit word of message data.
    pub fn accesses_per_word(self) -> u64 {
        match self {
            DatapathKind::SocketTcp => 5,
            DatapathKind::NcsMapped => 3,
        }
    }
}

/// Timing parameters of one workstation model.
#[derive(Clone, Debug)]
pub struct HostParams {
    /// Human-readable platform name.
    pub name: &'static str,
    /// CPU clock rate in Hz.
    pub clock_hz: u64,
    /// Effective memory-bus time per 32-bit word access during protocol
    /// copies (includes cache-miss amortization).
    pub bus_access: Dur,
    /// Cost of entering/leaving the kernel through a system call.
    pub syscall: Dur,
    /// Cost of the lightweight trap NCS uses instead of read/write syscalls.
    pub trap: Dur,
    /// Per-packet interrupt handling cost on receive.
    pub interrupt: Dur,
    /// Heavyweight (process-level) context switch.
    pub process_switch: Dur,
    /// TCP/IP protocol processing per packet, excluding data-touching costs
    /// (those are covered by [`HostParams::copy_time`]).
    pub tcp_per_packet: Dur,
}

impl HostParams {
    /// SUN SPARCstation IPX (~40 MHz): the paper's ATM LAN / NYNET hosts.
    pub fn sparc_ipx() -> HostParams {
        HostParams {
            name: "SPARCstation IPX (40 MHz)",
            clock_hz: 40_000_000,
            bus_access: Dur::from_nanos(320),
            syscall: Dur::from_micros(60),
            trap: Dur::from_micros(12),
            interrupt: Dur::from_micros(60),
            process_switch: Dur::from_micros(150),
            tcp_per_packet: Dur::from_micros(120),
        }
    }

    /// SUN SPARCstation ELC (~33 MHz): the paper's Ethernet hosts.
    pub fn sparc_elc() -> HostParams {
        HostParams {
            name: "SPARCstation ELC (33 MHz)",
            clock_hz: 33_000_000,
            bus_access: Dur::from_nanos(400),
            syscall: Dur::from_micros(75),
            trap: Dur::from_micros(15),
            interrupt: Dur::from_micros(75),
            process_switch: Dur::from_micros(180),
            tcp_per_packet: Dur::from_micros(150),
        }
    }

    /// A deliberately fast, low-overhead host for unit tests that want
    /// communication costs to dominate.
    pub fn test_fast() -> HostParams {
        HostParams {
            name: "test host (1 GHz)",
            clock_hz: 1_000_000_000,
            bus_access: Dur::from_nanos(4),
            syscall: Dur::from_micros(1),
            trap: Dur::from_nanos(200),
            interrupt: Dur::from_micros(1),
            process_switch: Dur::from_micros(2),
            tcp_per_packet: Dur::from_micros(2),
        }
    }

    /// Charges `cycles` of computation to the calling green thread.
    pub fn compute(&self, ctx: &Ctx, cycles: u64) {
        ctx.sleep(Dur::for_cycles(cycles, self.clock_hz));
    }

    /// Virtual time for `cycles` of computation.
    pub fn cycles(&self, cycles: u64) -> Dur {
        Dur::for_cycles(cycles, self.clock_hz)
    }

    /// Time to move `bytes` of message data through the given datapath
    /// (Figure 3: accesses-per-word × words × bus-access time).
    pub fn copy_time(&self, bytes: usize, kind: DatapathKind) -> Dur {
        let words = bytes.div_ceil(4) as u64;
        self.bus_access.times(words * kind.accesses_per_word())
    }

    /// Effective one-way memory throughput of a datapath in bytes/sec
    /// (reporting helper for the Figure 3 regenerator).
    pub fn datapath_bandwidth(&self, kind: DatapathKind) -> f64 {
        let t = self.copy_time(1 << 20, kind);
        (1u64 << 20) as f64 / t.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_sim::Sim;

    #[test]
    fn access_counts_match_paper() {
        assert_eq!(DatapathKind::SocketTcp.accesses_per_word(), 5);
        assert_eq!(DatapathKind::NcsMapped.accesses_per_word(), 3);
    }

    #[test]
    fn copy_time_ratio_is_five_thirds() {
        let h = HostParams::sparc_ipx();
        let tcp = h.copy_time(4096, DatapathKind::SocketTcp);
        let ncs = h.copy_time(4096, DatapathKind::NcsMapped);
        assert_eq!(tcp.as_ps() * 3, ncs.as_ps() * 5);
    }

    #[test]
    fn copy_time_scales_linearly() {
        let h = HostParams::sparc_elc();
        let one = h.copy_time(1024, DatapathKind::SocketTcp);
        let four = h.copy_time(4096, DatapathKind::SocketTcp);
        assert_eq!(four, one * 4);
    }

    #[test]
    fn copy_time_rounds_partial_words_up() {
        let h = HostParams::sparc_ipx();
        assert_eq!(
            h.copy_time(1, DatapathKind::NcsMapped),
            h.copy_time(4, DatapathKind::NcsMapped)
        );
        assert!(h.copy_time(5, DatapathKind::NcsMapped) > h.copy_time(4, DatapathKind::NcsMapped));
    }

    #[test]
    fn compute_charges_clock_cycles() {
        let sim = Sim::new();
        sim.spawn("c", |ctx| {
            let h = HostParams::sparc_ipx(); // 40 MHz: 1 Mcycle = 25 ms
            h.compute(ctx, 1_000_000);
            assert_eq!(ctx.now().as_ps(), Dur::from_millis(25).as_ps());
        });
        sim.run().assert_clean();
    }

    #[test]
    fn ncs_datapath_faster() {
        let h = HostParams::sparc_ipx();
        assert!(
            h.datapath_bandwidth(DatapathKind::NcsMapped)
                > h.datapath_bandwidth(DatapathKind::SocketTcp)
        );
    }
}
