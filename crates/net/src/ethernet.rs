//! Shared 10 Mb/s Ethernet segment — the paper's baseline LAN.
//!
//! All hosts share one half-duplex medium. Each protocol-level packet
//! becomes one frame with the 802.3 byte tax (preamble + header + FCS,
//! minimum frame padding) and is followed by the 9.6 µs inter-frame gap.
//! Access arbitration is FIFO at virtual-time resolution: a deterministic
//! idealization of CSMA/CD in which collisions never destroy frames but
//! contending stations still serialize, which matches the throughput (if
//! not the tail latency) of a moderately loaded segment.

use ncs_sim::{Dur, SimRng, SimTime};
use parking_lot::Mutex;

use crate::fabric::{Fabric, NodeId, TransferTiming};
use crate::link::{LinkSpec, LinkState};
use std::sync::Arc;

/// Frame overhead bytes added to every packet: preamble+SFD (8) + MAC
/// header (14) + FCS (4).
pub const FRAME_OVERHEAD: usize = 26;
/// Minimum MAC payload (packets smaller than this are padded).
pub const MIN_PAYLOAD: usize = 46;
/// Maximum MAC payload.
pub const MAX_PAYLOAD: usize = 1500;
/// Inter-frame gap at 10 Mb/s.
pub const INTERFRAME_GAP: Dur = Dur::from_micros(10); // 9.6 µs, rounded

/// Parameters for an Ethernet segment.
#[derive(Clone, Debug)]
pub struct EthernetParams {
    /// Number of attached hosts.
    pub nodes: usize,
    /// One-way propagation across the segment.
    pub propagation: Dur,
    /// CSMA/CD contention jitter: when the medium is already busy at frame
    /// submission, add a seeded pseudo-random backoff of up to this many
    /// slot times (51.2 µs each). Zero (the default) keeps the pure FIFO
    /// idealization.
    pub max_backoff_slots: u32,
    /// Seed for the backoff draw.
    pub jitter_seed: u64,
}

impl EthernetParams {
    /// A segment with `nodes` hosts and default timing (no jitter).
    pub fn new(nodes: usize) -> EthernetParams {
        EthernetParams {
            nodes,
            propagation: Dur::from_micros(10),
            max_backoff_slots: 0,
            jitter_seed: 0xE7E7,
        }
    }

    /// Enables contention backoff with up to `slots` slot times of jitter.
    pub fn with_backoff(mut self, slots: u32) -> EthernetParams {
        self.max_backoff_slots = slots;
        self
    }
}

/// The 10 Mb/s slot time (512 bit times).
pub const SLOT_TIME: Dur = Dur::from_ps(51_200_000);

/// The shared-medium fabric.
pub struct EthernetFabric {
    params: EthernetParams,
    medium: Arc<LinkState>,
    rng: Mutex<SimRng>,
}

impl EthernetFabric {
    /// Builds the segment.
    pub fn new(params: EthernetParams) -> EthernetFabric {
        assert!(params.nodes >= 2, "a segment needs at least two hosts");
        let mut spec = LinkSpec::ethernet10();
        spec.propagation = params.propagation;
        EthernetFabric {
            medium: LinkState::new(spec),
            rng: Mutex::new(SimRng::new(params.jitter_seed)),
            params,
        }
    }

    /// Wire bytes for a protocol payload of `bytes` (≤ [`MAX_PAYLOAD`]).
    pub fn wire_bytes(bytes: usize) -> usize {
        assert!(bytes <= MAX_PAYLOAD, "packet exceeds Ethernet MTU: {bytes}");
        bytes.max(MIN_PAYLOAD) + FRAME_OVERHEAD
    }

    /// The shared medium's utilization in `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.medium.utilization(now)
    }

    /// Total frames carried.
    pub fn frames_carried(&self) -> u64 {
        self.medium.chunks_carried()
    }
}

impl Fabric for EthernetFabric {
    fn nodes(&self) -> usize {
        self.params.nodes
    }

    fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        depart: SimTime,
    ) -> TransferTiming {
        assert!(src.idx() < self.params.nodes && dst.idx() < self.params.nodes);
        assert_ne!(src, dst, "loopback does not touch the wire");
        // Contention backoff: a station finding the wire busy costs the
        // segment a pseudo-random number of collision/backoff slot times
        // (dead wire) before its frame serializes.
        if self.params.max_backoff_slots > 0 && !self.medium.backlog(depart).is_zero() {
            let slots = self
                .rng
                .lock()
                .gen_range(u64::from(self.params.max_backoff_slots) + 1);
            if slots > 0 {
                self.medium.occupy(depart, SLOT_TIME.times(slots));
            }
        }
        let slot = self
            .medium
            .enqueue(depart, Self::wire_bytes(payload_bytes), INTERFRAME_GAP);
        TransferTiming {
            first_hop_done: slot.end,
            arrival: slot.arrival,
            dropped: slot.lost,
        }
    }

    fn access_rate(&self, _src: NodeId) -> u64 {
        self.medium.spec.rate_bps
    }

    fn description(&self) -> String {
        format!("shared 10 Mb/s Ethernet, {} hosts", self.params.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn wire_bytes_pads_and_taxes() {
        assert_eq!(EthernetFabric::wire_bytes(0), 46 + 26);
        assert_eq!(EthernetFabric::wire_bytes(46), 72);
        assert_eq!(EthernetFabric::wire_bytes(1500), 1526);
    }

    #[test]
    #[should_panic(expected = "exceeds Ethernet MTU")]
    fn oversized_packet_rejected() {
        EthernetFabric::wire_bytes(1501);
    }

    #[test]
    fn single_frame_timing() {
        let f = EthernetFabric::new(EthernetParams::new(4));
        // 1474-byte packet -> 1500 wire bytes = 1.2 ms at 10 Mb/s.
        let tt = f.transfer(NodeId(0), NodeId(1), 1474, t(0));
        assert_eq!(tt.first_hop_done, t(1200));
        assert_eq!(tt.arrival, t(1210));
    }

    #[test]
    fn contending_hosts_serialize() {
        let f = EthernetFabric::new(EthernetParams::new(4));
        let a = f.transfer(NodeId(0), NodeId(1), 1474, t(0));
        let b = f.transfer(NodeId(2), NodeId(3), 1474, t(0));
        // Second frame waits for the first plus the inter-frame gap.
        assert_eq!(
            b.first_hop_done,
            a.first_hop_done + INTERFRAME_GAP + Dur::from_micros(1200)
        );
    }

    #[test]
    fn effective_throughput_below_line_rate() {
        // Back-to-back MSS frames: 1486 wire bytes per 1460 useful bytes
        // plus the gap — about 9.7 Mb/s of goodput on a 10 Mb/s wire.
        let f = EthernetFabric::new(EthernetParams::new(2));
        let mut last = SimTime::ZERO;
        let n = 100;
        for _ in 0..n {
            last = f.transfer(NodeId(0), NodeId(1), 1460, last).arrival;
        }
        let goodput = (n * 1460) as f64 * 8.0 / last.as_secs_f64();
        assert!(goodput < 9.9e6, "goodput {goodput}");
        assert!(goodput > 9.0e6, "goodput {goodput}");
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        let f = EthernetFabric::new(EthernetParams::new(2));
        f.transfer(NodeId(1), NodeId(1), 100, t(0));
    }
}

#[cfg(test)]
mod backoff_tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn backoff_only_fires_under_contention() {
        let f = EthernetFabric::new(EthernetParams::new(2).with_backoff(8));
        // Idle wire: no jitter ever.
        let a = f.transfer(NodeId(0), NodeId(1), 100, t(0));
        assert_eq!(a.first_hop_done, t(0) + f.medium.spec.tx_time(126));
        // Busy wire: the second frame starts no earlier than FIFO would
        // allow, possibly later by whole slot times of collision waste.
        let b = f.transfer(NodeId(1), NodeId(0), 100, t(0));
        let fifo_done = a.first_hop_done + INTERFRAME_GAP + f.medium.spec.tx_time(126);
        assert!(b.first_hop_done >= fifo_done);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut p = EthernetParams::new(2).with_backoff(16);
            p.jitter_seed = seed;
            let f = EthernetFabric::new(p);
            let mut ends = Vec::new();
            for i in 0..20u64 {
                let tt = f.transfer(NodeId(0), NodeId(1), 1000, t(i));
                ends.push(tt.arrival);
            }
            ends
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn heavy_contention_with_backoff_slower_than_fifo() {
        let fifo = EthernetFabric::new(EthernetParams::new(4));
        let jitter = EthernetFabric::new(EthernetParams::new(4).with_backoff(16));
        let mut last_fifo = SimTime::ZERO;
        let mut last_jit = SimTime::ZERO;
        for i in 0..30u64 {
            let at = t(i); // everyone piles on at nearly the same instant
            last_fifo = last_fifo.max(fifo.transfer(NodeId(0), NodeId(1), 1400, at).arrival);
            last_jit = last_jit.max(jitter.transfer(NodeId(0), NodeId(1), 1400, at).arrival);
        }
        assert!(last_jit > last_fifo, "backoff must cost time under load");
    }
}
