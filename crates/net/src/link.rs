//! Point-to-point link models with FIFO queueing.
//!
//! A [`LinkState`] tracks when a link's transmitter frees up
//! (`busy_until`); enqueueing a chunk books the next free slot. This is the
//! standard packet-granularity FIFO-queue model: exact for a single sender,
//! and a faithful first-come-first-served approximation when several
//! activities share the link, without simulating every 53-byte cell as its
//! own event.
//!
//! [`LinkSpec`] presets carry *payload-effective* rates: SONET section/line/
//! path overhead, DS-3 PLCP framing and TAXI coding are already deducted, so
//! `Dur::for_bytes(wire_bytes, rate)` is the real serialization time of that
//! many link-layer bytes.

use ncs_sim::{Dur, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// Static description of a link type.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// Link-type name for reports.
    pub name: &'static str,
    /// Payload-effective data rate, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub propagation: Dur,
}

impl LinkSpec {
    /// FORE TAXI host–switch interface: 140 Mb/s, LAN-scale propagation.
    pub fn taxi_140() -> LinkSpec {
        LinkSpec {
            name: "TAXI-140",
            rate_bps: 140_000_000,
            propagation: Dur::from_micros(5),
        }
    }

    /// SONET OC-3c: 155.52 Mb/s line rate, 149.76 Mb/s SPE payload.
    pub fn oc3(propagation: Dur) -> LinkSpec {
        LinkSpec {
            name: "OC-3c",
            rate_bps: 149_760_000,
            propagation,
        }
    }

    /// SONET OC-48c: 2.48832 Gb/s line rate, 2.39616 Gb/s payload.
    pub fn oc48(propagation: Dur) -> LinkSpec {
        LinkSpec {
            name: "OC-48c",
            rate_bps: 2_396_160_000,
            propagation,
        }
    }

    /// DS-3 with PLCP framing: 44.736 Mb/s line, 40.704 Mb/s cell payload.
    pub fn ds3(propagation: Dur) -> LinkSpec {
        LinkSpec {
            name: "DS-3",
            rate_bps: 40_704_000,
            propagation,
        }
    }

    /// Classic shared 10 Mb/s Ethernet.
    pub fn ethernet10() -> LinkSpec {
        LinkSpec {
            name: "Ethernet-10",
            rate_bps: 10_000_000,
            propagation: Dur::from_micros(10),
        }
    }

    /// Serialization time for `bytes` on this link.
    pub fn tx_time(&self, bytes: usize) -> Dur {
        Dur::for_bytes(bytes, self.rate_bps)
    }
}

struct LinkInner {
    busy_until: SimTime,
    bytes_carried: u64,
    chunks_carried: u64,
    busy_integral_ps: u128,
    /// Scheduled outage windows `[down, up)`: any transmission overlapping
    /// one is lost on the wire (the transmitter still clocks the bits out).
    down_windows: Vec<(SimTime, SimTime)>,
    flap_losses: u64,
}

/// Dynamic state of one unidirectional link.
pub struct LinkState {
    /// The link's static parameters.
    pub spec: LinkSpec,
    inner: Mutex<LinkInner>,
}

/// A booked transmission on a link.
#[derive(Clone, Copy, Debug)]
pub struct TxSlot {
    /// When the first bit goes out.
    pub start: SimTime,
    /// When the last bit has left the transmitter.
    pub end: SimTime,
    /// When the last bit arrives at the far end (`end` + propagation).
    pub arrival: SimTime,
    /// The transmission overlapped a scheduled outage window: the bits were
    /// clocked out but never reached the far end.
    pub lost: bool,
}

/// A booked back-to-back cell train: one FIFO slot covering `n` equal
/// cells, with per-cell instants derived arithmetically rather than by
/// per-cell bookings or events.
#[derive(Clone, Copy, Debug)]
pub struct TxTrain {
    /// The train as a whole; `slot.end`/`slot.arrival` refer to the final
    /// cell's last bit.
    pub slot: TxSlot,
    /// Cells in the train.
    pub cells: usize,
    /// Serialization time of one cell: cell `i` (0-based) clears the
    /// transmitter at `slot.start + (i + 1) × cell_time` and arrives
    /// `propagation` later.
    pub cell_time: Dur,
}

impl TxTrain {
    /// Arrival instant of cell `i` at the far end.
    pub fn cell_arrival(&self, i: usize) -> SimTime {
        assert!(i < self.cells, "cell index out of train");
        self.slot.arrival - self.cell_time * (self.cells - 1 - i) as u64
    }

    /// Arrival instant of the train's first cell; with [`TxTrain::cell_time`]
    /// as the spacing, enough to schedule the whole train in bulk as one
    /// self-rearming kernel event.
    pub fn first_arrival(&self) -> SimTime {
        self.cell_arrival(0)
    }
}

impl LinkState {
    /// Creates an idle link.
    pub fn new(spec: LinkSpec) -> Arc<LinkState> {
        Arc::new(LinkState {
            spec,
            inner: Mutex::new(LinkInner {
                busy_until: SimTime::ZERO,
                bytes_carried: 0,
                chunks_carried: 0,
                busy_integral_ps: 0,
                down_windows: Vec::new(),
                flap_losses: 0,
            }),
        })
    }

    /// Books `wire_bytes` for transmission at or after `earliest`, with an
    /// extra `gap` of dead time appended (inter-frame gap on Ethernet, 0 on
    /// ATM links). FIFO: the chunk starts when both the caller is ready and
    /// the link is free.
    pub fn enqueue(&self, earliest: SimTime, wire_bytes: usize, gap: Dur) -> TxSlot {
        let mut l = self.inner.lock();
        let start = earliest.max(l.busy_until);
        let end = start + self.spec.tx_time(wire_bytes);
        l.busy_until = end + gap;
        l.bytes_carried += wire_bytes as u64;
        l.chunks_carried += 1;
        l.busy_integral_ps += u128::from(end.since(start).as_ps());
        let lost = l.down_windows.iter().any(|&(d, u)| start < u && end > d);
        if lost {
            l.flap_losses += 1;
        }
        TxSlot {
            start,
            end,
            arrival: end + self.spec.propagation,
            lost,
        }
    }

    /// Books a train of `cells` back-to-back cells of `cell_bytes` each in
    /// **one** lock acquisition and one FIFO booking — the Approach-2
    /// fast path. Per-cell timestamps come out of [`TxTrain`]
    /// arithmetically; the link never sees the individual cells.
    pub fn enqueue_train(
        &self,
        earliest: SimTime,
        cells: usize,
        cell_bytes: usize,
        gap: Dur,
    ) -> TxTrain {
        assert!(cells > 0, "a cell train needs at least one cell");
        let cell_time = self.spec.tx_time(cell_bytes);
        let hold = cell_time * cells as u64;
        let mut l = self.inner.lock();
        let start = earliest.max(l.busy_until);
        let end = start + hold;
        l.busy_until = end + gap;
        l.bytes_carried += (cells * cell_bytes) as u64;
        l.chunks_carried += 1;
        l.busy_integral_ps += u128::from(hold.as_ps());
        let lost = l.down_windows.iter().any(|&(d, u)| start < u && end > d);
        if lost {
            l.flap_losses += 1;
        }
        TxTrain {
            slot: TxSlot {
                start,
                end,
                arrival: end + self.spec.propagation,
                lost,
            },
            cells,
            cell_time,
        }
    }

    /// Schedules an outage window `[down, up)`: any transmission whose wire
    /// time overlaps it is marked lost. Deterministic link-flap injection.
    pub fn schedule_flap(&self, down: SimTime, up: SimTime) {
        assert!(down < up, "flap window must have positive width");
        self.inner.lock().down_windows.push((down, up));
    }

    /// Whether a scheduled outage covers instant `at`.
    pub fn is_down(&self, at: SimTime) -> bool {
        self.inner
            .lock()
            .down_windows
            .iter()
            .any(|&(d, u)| d <= at && at < u)
    }

    /// Transmissions lost to scheduled outages so far.
    pub fn flap_losses(&self) -> u64 {
        self.inner.lock().flap_losses
    }

    /// Occupies the transmitter for `hold` starting no earlier than
    /// `earliest`, without carrying payload — dead time such as CSMA/CD
    /// collision windows and backoff. Counted in the busy integral but not
    /// in the byte/chunk counters.
    pub fn occupy(&self, earliest: SimTime, hold: Dur) -> TxSlot {
        let mut l = self.inner.lock();
        let start = earliest.max(l.busy_until);
        let end = start + hold;
        l.busy_until = end;
        l.busy_integral_ps += u128::from(hold.as_ps());
        TxSlot {
            start,
            end,
            arrival: end + self.spec.propagation,
            lost: false,
        }
    }

    /// Wire bytes still queued ahead of `now`, at this link's rate.
    pub fn backlog_bytes(&self, now: SimTime) -> u64 {
        let ps = u128::from(self.backlog(now).as_ps());
        (ps * u128::from(self.spec.rate_bps) / 8 / 1_000_000_000_000) as u64
    }

    /// How far beyond `now` this link's transmitter is already booked.
    pub fn backlog(&self, now: SimTime) -> Dur {
        self.inner.lock().busy_until.saturating_since(now)
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.inner.lock().bytes_carried
    }

    /// Total chunks carried.
    pub fn chunks_carried(&self) -> u64 {
        self.inner.lock().chunks_carried
    }

    /// Fraction of `[0, now]` the transmitter spent sending.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.inner.lock().busy_integral_ps as f64 / now.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn idle_link_starts_immediately() {
        let link = LinkState::new(LinkSpec::ethernet10());
        let slot = link.enqueue(t(5), 1250, Dur::ZERO); // 1250 B at 10 Mb/s = 1 ms
        assert_eq!(slot.start, t(5));
        assert_eq!(slot.end, t(5) + Dur::from_millis(1));
        assert_eq!(slot.arrival, slot.end + Dur::from_micros(10));
    }

    #[test]
    fn fifo_queueing_serializes() {
        let link = LinkState::new(LinkSpec::ethernet10());
        let a = link.enqueue(t(0), 1250, Dur::ZERO);
        let b = link.enqueue(t(0), 1250, Dur::ZERO);
        assert_eq!(b.start, a.end);
        assert_eq!(link.backlog(t(0)), Dur::from_millis(2));
    }

    #[test]
    fn gap_holds_the_link() {
        let link = LinkState::new(LinkSpec::ethernet10());
        let a = link.enqueue(t(0), 1250, Dur::from_micros(9));
        let b = link.enqueue(t(0), 1250, Dur::ZERO);
        assert_eq!(b.start, a.end + Dur::from_micros(9));
    }

    #[test]
    fn late_arrival_after_idle_gap() {
        let link = LinkState::new(LinkSpec::ethernet10());
        let _ = link.enqueue(t(0), 125, Dur::ZERO); // 100 us
        let b = link.enqueue(t(500), 125, Dur::ZERO);
        assert_eq!(b.start, t(500));
        assert!((link.utilization(t(600)) - 200.0 / 600.0).abs() < 1e-9);
    }

    #[test]
    fn preset_rates_payload_effective() {
        // OC-3c carries 149.76 Mb/s of cells: one 53-byte cell = 2.831 us.
        let oc3 = LinkSpec::oc3(Dur::ZERO);
        let cell = oc3.tx_time(53);
        assert!((cell.as_secs_f64() - 53.0 * 8.0 / 149.76e6).abs() < 1e-12);
        assert!(LinkSpec::oc48(Dur::ZERO).rate_bps > 15 * oc3.rate_bps);
        assert!(LinkSpec::ds3(Dur::ZERO).rate_bps < oc3.rate_bps / 3);
    }

    #[test]
    fn counters_accumulate() {
        let link = LinkState::new(LinkSpec::taxi_140());
        link.enqueue(t(0), 53, Dur::ZERO);
        link.enqueue(t(0), 53, Dur::ZERO);
        assert_eq!(link.bytes_carried(), 106);
        assert_eq!(link.chunks_carried(), 2);
    }

    #[test]
    fn flap_window_loses_overlapping_transmissions() {
        let link = LinkState::new(LinkSpec::ethernet10());
        link.schedule_flap(t(100), t(300));
        // 125 B at 10 Mb/s = 100 us of wire time.
        let before = link.enqueue(t(0), 125, Dur::ZERO); // [0, 100): clean
        let during = link.enqueue(t(150), 125, Dur::ZERO); // [150, 250): lost
        let after = link.enqueue(t(300), 125, Dur::ZERO); // [300, 400): clean
        assert!(!before.lost);
        assert!(during.lost);
        assert!(!after.lost);
        assert_eq!(link.flap_losses(), 1);
        assert!(link.is_down(t(200)));
        assert!(!link.is_down(t(300)));
    }

    #[test]
    fn straddling_the_outage_edge_still_loses() {
        let link = LinkState::new(LinkSpec::ethernet10());
        link.schedule_flap(t(50), t(60));
        let slot = link.enqueue(t(0), 125, Dur::ZERO); // [0, 100) overlaps
        assert!(slot.lost);
    }

    #[test]
    fn train_books_once_with_arithmetic_cell_arrivals() {
        let link = LinkState::new(LinkSpec::taxi_140());
        let train = link.enqueue_train(t(0), 4, 53, Dur::ZERO);
        assert_eq!(train.cells, 4);
        assert_eq!(train.slot.start, t(0));
        assert_eq!(train.slot.end, t(0) + train.cell_time * 4);
        // One booking, four cells' worth of bytes.
        assert_eq!(link.chunks_carried(), 1);
        assert_eq!(link.bytes_carried(), 4 * 53);
        // Cell arrivals are evenly spaced and end at the train arrival.
        assert_eq!(train.cell_arrival(3), train.slot.arrival);
        for i in 0..3 {
            assert_eq!(
                train.cell_arrival(i + 1).since(train.cell_arrival(i)),
                train.cell_time
            );
        }
        // FIFO: the next chunk queues behind the whole train.
        let next = link.enqueue(t(0), 53, Dur::ZERO);
        assert_eq!(next.start, train.slot.end);
    }

    #[test]
    fn backlog_bytes_tracks_queued_wire_time() {
        let link = LinkState::new(LinkSpec::ethernet10());
        link.enqueue(t(0), 1250, Dur::ZERO); // 1 ms of wire time
        assert_eq!(link.backlog_bytes(t(0)), 1250);
        assert_eq!(link.backlog_bytes(t(2000)), 0);
    }
}
