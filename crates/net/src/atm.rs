//! ATM fabrics: the FORE-switch LAN and the NYNET wide-area testbed.
//!
//! Chunks are carried as AAL5 PDUs: the fabric converts payload bytes to a
//! cell count (48 payload bytes per 53-byte cell plus the 8-byte trailer)
//! and books `cells × 53` wire bytes on every link of the route. Switching
//! is output-buffered with a fixed per-chunk switch latency; queueing falls
//! out of the per-link FIFO bookkeeping.
//!
//! Store-and-forward is applied per chunk at each hop. Real ATM switches
//! cut through per cell, so multi-hop latency for large chunks is slightly
//! overestimated; transports keep chunks at MTU/buffer size (≤ 16 KB), which
//! bounds the error to well under a millisecond per hop.

use ncs_sim::{Dur, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::aal5;
use crate::cell::CELL_BYTES;
use crate::fabric::{Fabric, NodeId, SwitchedFabric, TrainTiming, TransferTiming};
use crate::link::{LinkSpec, LinkState};

/// Wire bytes for an AAL5-framed chunk of `payload` bytes.
pub fn atm_wire_bytes(payload: usize) -> usize {
    aal5::cells_for_pdu(payload) * CELL_BYTES
}

/// Does a chunk arriving at `link`'s output port at `at` find the buffer
/// already full? `None` models an infinite buffer.
///
/// Cut-through occupancy: the port streams the incoming chunk out cell by
/// cell while it arrives, so the chunk's own wire size never piles up —
/// only the backlog of *other* chunks' cells still queued ahead of it
/// counts. A chunk whose own cell count exceeds the capacity can therefore
/// still flow through an empty port; it is dropped only when the buffer is
/// already occupied to capacity when its first cell shows up.
fn output_buffer_full(link: &LinkState, at: SimTime, cap: Option<usize>) -> bool {
    match cap {
        Some(cells) => link.backlog_bytes(at) as usize / CELL_BYTES >= cells,
        None => false,
    }
}

/// Parameters of a single-switch ATM LAN.
#[derive(Clone, Debug)]
pub struct AtmLanParams {
    /// Number of attached hosts.
    pub nodes: usize,
    /// Host-to-switch access link (both directions).
    pub access: LinkSpec,
    /// Fixed per-chunk latency through the switch.
    pub switch_latency: Dur,
    /// Output-port buffer capacity in cells; a chunk arriving at a port
    /// whose queue already holds this many cells is dropped whole. `None` =
    /// infinite buffer (the default, preserving lossless behaviour).
    pub output_buffer_cells: Option<usize>,
}

impl AtmLanParams {
    /// The paper's configuration: TAXI-140 access into one FORE switch.
    pub fn fore_lan(nodes: usize) -> AtmLanParams {
        AtmLanParams {
            nodes,
            access: LinkSpec::taxi_140(),
            switch_latency: Dur::from_micros(20),
            output_buffer_cells: None,
        }
    }

    /// Caps every switch output port at `cells` cells of buffering.
    pub fn with_output_buffer(mut self, cells: usize) -> AtmLanParams {
        self.output_buffer_cells = Some(cells);
        self
    }
}

/// A single-switch ATM LAN: every host has a dedicated full-duplex access
/// link to one output-buffered switch.
pub struct AtmLanFabric {
    params: AtmLanParams,
    /// Host → switch direction, per host.
    uplinks: Vec<Arc<LinkState>>,
    /// Switch → host direction, per host.
    downlinks: Vec<Arc<LinkState>>,
    overflow_drops: AtomicU64,
}

impl AtmLanFabric {
    /// Builds the LAN.
    pub fn new(params: AtmLanParams) -> AtmLanFabric {
        assert!(params.nodes >= 2, "a LAN needs at least two hosts");
        AtmLanFabric {
            uplinks: (0..params.nodes)
                .map(|_| LinkState::new(params.access.clone()))
                .collect(),
            downlinks: (0..params.nodes)
                .map(|_| LinkState::new(params.access.clone()))
                .collect(),
            overflow_drops: AtomicU64::new(0),
            params,
        }
    }

    /// Cells carried toward host `dst` (output-port counter).
    pub fn cells_to(&self, dst: NodeId) -> u64 {
        self.downlinks[dst.idx()].bytes_carried() / CELL_BYTES as u64
    }

    /// The host→switch link of `node`, for flap scheduling and inspection.
    pub fn uplink(&self, node: NodeId) -> &Arc<LinkState> {
        &self.uplinks[node.idx()]
    }

    /// The switch→host link of `node`.
    pub fn downlink(&self, node: NodeId) -> &Arc<LinkState> {
        &self.downlinks[node.idx()]
    }

    /// Chunks dropped to switch output-buffer overflow.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops.load(Ordering::Relaxed)
    }

    /// Chunks lost to scheduled link outages, across all links.
    pub fn flap_losses(&self) -> u64 {
        self.uplinks
            .iter()
            .chain(self.downlinks.iter())
            .map(|l| l.flap_losses())
            .sum()
    }
}

impl Fabric for AtmLanFabric {
    fn nodes(&self) -> usize {
        self.params.nodes
    }

    fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        depart: SimTime,
    ) -> TransferTiming {
        assert!(src.idx() < self.params.nodes && dst.idx() < self.params.nodes);
        assert_ne!(src, dst, "loopback does not touch the fabric");
        let wire = atm_wire_bytes(payload_bytes);
        let up = self.uplinks[src.idx()].enqueue(depart, wire, Dur::ZERO);
        let at_switch = up.arrival + self.params.switch_latency;
        let port = &self.downlinks[dst.idx()];
        if output_buffer_full(port, at_switch, self.params.output_buffer_cells) {
            self.overflow_drops.fetch_add(1, Ordering::Relaxed);
            return TransferTiming {
                first_hop_done: up.end,
                arrival: at_switch,
                dropped: true,
            };
        }
        let down = port.enqueue(at_switch, wire, Dur::ZERO);
        TransferTiming {
            first_hop_done: up.end,
            arrival: down.arrival,
            dropped: up.lost || down.lost,
        }
    }

    /// Books the train with exactly one FIFO booking per hop
    /// ([`LinkState::enqueue_train`]) and reports the receiver-observed
    /// inter-cell spacing: the downlink's per-cell serialization time.
    fn transfer_train(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        cells: usize,
        cell_wire_bytes: usize,
        depart: SimTime,
    ) -> TrainTiming {
        assert!(src.idx() < self.params.nodes && dst.idx() < self.params.nodes);
        assert_ne!(src, dst, "loopback does not touch the fabric");
        let _ = payload_bytes; // the train geometry carries the wire size
        let up = self.uplinks[src.idx()].enqueue_train(depart, cells, cell_wire_bytes, Dur::ZERO);
        let at_switch = up.slot.arrival + self.params.switch_latency;
        let port = &self.downlinks[dst.idx()];
        if output_buffer_full(port, at_switch, self.params.output_buffer_cells) {
            self.overflow_drops.fetch_add(1, Ordering::Relaxed);
            return TrainTiming {
                whole: TransferTiming {
                    first_hop_done: up.slot.end,
                    arrival: at_switch,
                    dropped: true,
                },
                cells,
                cell_gap: Dur::ZERO,
            };
        }
        let down = port.enqueue_train(at_switch, cells, cell_wire_bytes, Dur::ZERO);
        TrainTiming {
            whole: TransferTiming {
                first_hop_done: up.slot.end,
                arrival: down.slot.arrival,
                dropped: up.slot.lost || down.slot.lost,
            },
            cells,
            cell_gap: down.cell_time,
        }
    }

    fn access_rate(&self, _src: NodeId) -> u64 {
        self.params.access.rate_bps
    }

    fn output_backlog(&self, node: NodeId, now: SimTime) -> Option<u64> {
        Some(self.downlink(node).backlog_bytes(now))
    }

    fn path_down(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        // The route is unique (up, switch, down); the switch itself never
        // fails, so the path is severed iff either access link is out.
        self.uplinks[src.idx()].is_down(at) || self.downlinks[dst.idx()].is_down(at)
    }

    fn description(&self) -> String {
        format!(
            "ATM LAN: {} hosts, {} access, 1 switch ({} latency)",
            self.params.nodes, self.params.access.name, self.params.switch_latency
        )
    }
}

impl SwitchedFabric for AtmLanFabric {
    fn uplink_of(&self, node: NodeId) -> &Arc<LinkState> {
        self.uplink(node)
    }

    fn downlink_of(&self, node: NodeId) -> &Arc<LinkState> {
        self.downlink(node)
    }

    fn trunk_links(&self) -> Vec<Arc<LinkState>> {
        Vec::new() // single switch: no switch-to-switch links
    }

    fn overflow_drop_count(&self) -> u64 {
        self.overflow_drops()
    }

    fn flap_loss_count(&self) -> u64 {
        self.flap_losses()
    }
}

/// Parameters of the NYNET-style wide-area testbed: two (or more) ATM LAN
/// sites joined by trunk links over a shared backbone.
#[derive(Clone, Debug)]
pub struct NynetParams {
    /// Total hosts; they are split evenly across sites (first half at site
    /// 0, and so on), matching how the paper spreads a computation across
    /// the testbed.
    pub nodes: usize,
    /// Number of sites.
    pub sites: usize,
    /// Host access link within a site.
    pub access: LinkSpec,
    /// Site-to-backbone trunk.
    pub trunk: LinkSpec,
    /// Shared backbone link (one per direction).
    pub backbone: LinkSpec,
    /// Per-chunk switch latency (applied at each switch: site switches and
    /// the backbone hop).
    pub switch_latency: Dur,
    /// Extra one-way wide-area propagation between sites.
    pub wan_propagation: Dur,
    /// Output-port buffer capacity in cells at every switch output (site
    /// switches and the backbone hop). `None` = infinite (default).
    pub output_buffer_cells: Option<usize>,
}

impl NynetParams {
    /// The paper's testbed shape: TAXI access, OC-3 site trunks, an OC-48
    /// backbone, and upstate–downstate propagation on the order of a
    /// millisecond.
    pub fn nynet(nodes: usize) -> NynetParams {
        NynetParams {
            nodes,
            sites: 2,
            access: LinkSpec::taxi_140(),
            trunk: LinkSpec::oc3(Dur::from_micros(50)),
            backbone: LinkSpec::oc48(Dur::ZERO),
            switch_latency: Dur::from_micros(20),
            wan_propagation: Dur::from_millis(1),
            output_buffer_cells: None,
        }
    }

    /// Variant routed over the DS-3 upstate–downstate link.
    pub fn nynet_ds3(nodes: usize) -> NynetParams {
        NynetParams {
            backbone: LinkSpec::ds3(Dur::ZERO),
            ..NynetParams::nynet(nodes)
        }
    }

    /// Caps every switch output port at `cells` cells of buffering.
    pub fn with_output_buffer(mut self, cells: usize) -> NynetParams {
        self.output_buffer_cells = Some(cells);
        self
    }

    /// Which site a node lives at.
    pub fn site_of(&self, node: NodeId) -> usize {
        let per = self.nodes.div_ceil(self.sites);
        (node.idx() / per).min(self.sites - 1)
    }
}

/// The wide-area fabric.
pub struct NynetFabric {
    params: NynetParams,
    uplinks: Vec<Arc<LinkState>>,
    downlinks: Vec<Arc<LinkState>>,
    /// Per site: trunk toward the backbone.
    trunks_up: Vec<Arc<LinkState>>,
    /// Per site: trunk from the backbone.
    trunks_down: Vec<Arc<LinkState>>,
    /// Shared backbone, one direction per entry index (site-pair agnostic).
    backbone: Arc<LinkState>,
    overflow_drops: AtomicU64,
}

impl NynetFabric {
    /// Builds the testbed.
    pub fn new(params: NynetParams) -> NynetFabric {
        assert!(params.nodes >= 2 && params.sites >= 2);
        NynetFabric {
            uplinks: (0..params.nodes)
                .map(|_| LinkState::new(params.access.clone()))
                .collect(),
            downlinks: (0..params.nodes)
                .map(|_| LinkState::new(params.access.clone()))
                .collect(),
            trunks_up: (0..params.sites)
                .map(|_| LinkState::new(params.trunk.clone()))
                .collect(),
            trunks_down: (0..params.sites)
                .map(|_| LinkState::new(params.trunk.clone()))
                .collect(),
            backbone: LinkState::new(params.backbone.clone()),
            overflow_drops: AtomicU64::new(0),
            params,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &NynetParams {
        &self.params
    }

    /// The host→switch link of `node`, for flap scheduling and inspection.
    pub fn uplink(&self, node: NodeId) -> &Arc<LinkState> {
        &self.uplinks[node.idx()]
    }

    /// The switch→host link of `node`.
    pub fn downlink(&self, node: NodeId) -> &Arc<LinkState> {
        &self.downlinks[node.idx()]
    }

    /// Site `site`'s trunk toward the backbone.
    pub fn trunk_up(&self, site: usize) -> &Arc<LinkState> {
        &self.trunks_up[site]
    }

    /// Site `site`'s trunk from the backbone.
    pub fn trunk_down(&self, site: usize) -> &Arc<LinkState> {
        &self.trunks_down[site]
    }

    /// The shared wide-area backbone link.
    pub fn backbone(&self) -> &Arc<LinkState> {
        &self.backbone
    }

    /// Chunks dropped to switch output-buffer overflow.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops.load(Ordering::Relaxed)
    }

    /// Chunks lost to scheduled link outages, across all links.
    pub fn flap_losses(&self) -> u64 {
        self.uplinks
            .iter()
            .chain(self.downlinks.iter())
            .chain(self.trunks_up.iter())
            .chain(self.trunks_down.iter())
            .chain(std::iter::once(&self.backbone))
            .map(|l| l.flap_losses())
            .sum()
    }
}

impl Fabric for NynetFabric {
    fn nodes(&self) -> usize {
        self.params.nodes
    }

    fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        depart: SimTime,
    ) -> TransferTiming {
        assert!(src.idx() < self.params.nodes && dst.idx() < self.params.nodes);
        assert_ne!(src, dst, "loopback does not touch the fabric");
        let wire = atm_wire_bytes(payload_bytes);
        let lat = self.params.switch_latency;
        let cap = self.params.output_buffer_cells;
        let s_src = self.params.site_of(src);
        let s_dst = self.params.site_of(dst);

        let up = self.uplinks[src.idx()].enqueue(depart, wire, Dur::ZERO);
        let mut lost = up.lost;
        let mut at = up.arrival + lat;
        // Each switch-fed hop can overflow its output buffer; an overflow
        // drops the chunk whole at that switch.
        let mut hops: Vec<&Arc<LinkState>> = Vec::with_capacity(4);
        if s_src != s_dst {
            hops.push(&self.trunks_up[s_src]);
            hops.push(&self.backbone);
            hops.push(&self.trunks_down[s_dst]);
        }
        hops.push(&self.downlinks[dst.idx()]);
        for link in hops {
            if output_buffer_full(link, at, cap) {
                self.overflow_drops.fetch_add(1, Ordering::Relaxed);
                return TransferTiming {
                    first_hop_done: up.end,
                    arrival: at,
                    dropped: true,
                };
            }
            let slot = link.enqueue(at, wire, Dur::ZERO);
            lost |= slot.lost;
            at = slot.arrival + lat;
            if Arc::ptr_eq(link, &self.backbone) {
                at += self.params.wan_propagation;
            }
        }
        // The final hop ends at the host, not another switch: undo the
        // trailing switch latency added in the loop.
        let arrival = at - lat;
        TransferTiming {
            first_hop_done: up.end,
            arrival,
            dropped: lost,
        }
    }

    fn access_rate(&self, _src: NodeId) -> u64 {
        self.params.access.rate_bps
    }

    fn output_backlog(&self, node: NodeId, now: SimTime) -> Option<u64> {
        Some(self.downlink(node).backlog_bytes(now))
    }

    fn path_down(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        // The route is unique: access links, plus (cross-site) the source
        // trunk, the backbone, and the destination trunk.
        if self.uplinks[src.idx()].is_down(at) || self.downlinks[dst.idx()].is_down(at) {
            return true;
        }
        let s_src = self.params.site_of(src);
        let s_dst = self.params.site_of(dst);
        s_src != s_dst
            && (self.trunks_up[s_src].is_down(at)
                || self.backbone.is_down(at)
                || self.trunks_down[s_dst].is_down(at))
    }

    fn description(&self) -> String {
        format!(
            "NYNET WAN: {} hosts over {} sites, {} access, {} trunks, {} backbone, {} WAN propagation",
            self.params.nodes,
            self.params.sites,
            self.params.access.name,
            self.params.trunk.name,
            self.params.backbone.name,
            self.params.wan_propagation
        )
    }
}

impl SwitchedFabric for NynetFabric {
    fn uplink_of(&self, node: NodeId) -> &Arc<LinkState> {
        self.uplink(node)
    }

    fn downlink_of(&self, node: NodeId) -> &Arc<LinkState> {
        self.downlink(node)
    }

    fn trunk_links(&self) -> Vec<Arc<LinkState>> {
        let mut v: Vec<Arc<LinkState>> = Vec::new();
        v.extend(self.trunks_up.iter().cloned());
        v.extend(self.trunks_down.iter().cloned());
        v.push(Arc::clone(&self.backbone));
        v
    }

    fn overflow_drop_count(&self) -> u64 {
        self.overflow_drops()
    }

    fn flap_loss_count(&self) -> u64 {
        self.flap_losses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn wire_bytes_cell_quantized() {
        assert_eq!(atm_wire_bytes(1), 53);
        assert_eq!(atm_wire_bytes(40), 53);
        assert_eq!(atm_wire_bytes(41), 106);
        assert_eq!(atm_wire_bytes(9140), atm_wire_bytes(9140));
        // 9140 + 8 = 9148 -> 191 cells
        assert_eq!(atm_wire_bytes(9140), 191 * 53);
    }

    #[test]
    fn lan_two_hop_timing() {
        let f = AtmLanFabric::new(AtmLanParams::fore_lan(4));
        let tt = f.transfer(NodeId(0), NodeId(1), 40, t(0));
        // One cell: 53 B at 140 Mb/s = 3.028 us per hop.
        let hop = LinkSpec::taxi_140().tx_time(53);
        let expect = SimTime::ZERO
            + hop // uplink
            + Dur::from_micros(5) // uplink propagation
            + Dur::from_micros(20) // switch
            + hop // downlink
            + Dur::from_micros(5); // downlink propagation
        assert_eq!(tt.arrival, expect);
        assert_eq!(tt.first_hop_done, SimTime::ZERO + hop);
    }

    #[test]
    fn lan_train_books_one_slot_per_hop() {
        let f = AtmLanFabric::new(AtmLanParams::fore_lan(4));
        let train = f.transfer_train(NodeId(0), NodeId(1), 480, 11, CELL_BYTES, t(0));
        assert_eq!(train.cells, 11);
        // One FIFO booking on the uplink and one on the downlink.
        assert_eq!(f.uplink(NodeId(0)).chunks_carried(), 1);
        assert_eq!(f.downlink(NodeId(1)).chunks_carried(), 1);
        // Receiver-side spacing = downlink cell serialization time.
        let cell = LinkSpec::taxi_140().tx_time(CELL_BYTES);
        assert_eq!(train.cell_gap, cell);
        assert_eq!(train.cell_arrival(10), train.whole.arrival);
        assert_eq!(train.cell_arrival(0), train.whole.arrival - cell * 10);
        // Whole-train timing agrees with the chunk model to within per-cell
        // rounding (tx_time rounds each call up to the next picosecond).
        let chunk = f.transfer(NodeId(2), NodeId(3), 480, t(0));
        let skew = train
            .whole
            .arrival
            .saturating_since(chunk.arrival)
            .max(chunk.arrival.saturating_since(train.whole.arrival));
        assert!(skew < Dur::from_nanos(1), "skew {skew}");
    }

    #[test]
    fn lan_output_port_contention() {
        let f = AtmLanFabric::new(AtmLanParams::fore_lan(4));
        // Two senders target the same destination: downlink serializes.
        let big = 14_000; // ~292 cells
        let a = f.transfer(NodeId(0), NodeId(3), big, t(0));
        let b = f.transfer(NodeId(1), NodeId(3), big, t(0));
        assert!(b.arrival > a.arrival, "output port must serialize");
        // But their uplinks are independent:
        assert_eq!(a.first_hop_done, b.first_hop_done);
    }

    #[test]
    fn lan_distinct_destinations_parallel() {
        let f = AtmLanFabric::new(AtmLanParams::fore_lan(4));
        let a = f.transfer(NodeId(0), NodeId(2), 14_000, t(0));
        let b = f.transfer(NodeId(1), NodeId(3), 14_000, t(0));
        assert_eq!(a.arrival, b.arrival, "disjoint paths do not interfere");
    }

    #[test]
    fn wan_crossing_pays_propagation() {
        let p = NynetParams::nynet(4); // nodes 0,1 at site 0; 2,3 at site 1
        let f = NynetFabric::new(p);
        let local = f.transfer(NodeId(0), NodeId(1), 1000, t(0));
        let remote = f.transfer(NodeId(0), NodeId(2), 1000, t(0));
        assert!(remote.arrival.since(local.arrival) >= Dur::from_millis(1));
    }

    #[test]
    fn site_assignment_splits_evenly() {
        let p = NynetParams::nynet(8);
        assert_eq!(p.site_of(NodeId(0)), 0);
        assert_eq!(p.site_of(NodeId(3)), 0);
        assert_eq!(p.site_of(NodeId(4)), 1);
        assert_eq!(p.site_of(NodeId(7)), 1);
    }

    #[test]
    fn ds3_slower_than_oc48_backbone() {
        let big = 16_000;
        let f1 = NynetFabric::new(NynetParams::nynet(4));
        let f2 = NynetFabric::new(NynetParams::nynet_ds3(4));
        let a = f1.transfer(NodeId(0), NodeId(2), big, t(0));
        let b = f2.transfer(NodeId(0), NodeId(2), big, t(0));
        assert!(b.arrival > a.arrival);
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn cross_site_flows_share_the_trunk() {
        // Nodes 0,1 at site 0; 2,3 at site 1. Two simultaneous cross-site
        // bulk transfers from different sources serialize on the shared
        // site-0 uplink trunk; a DS-3 backbone makes it worse.
        let f = NynetFabric::new(NynetParams::nynet_ds3(4));
        let solo = {
            let f2 = NynetFabric::new(NynetParams::nynet_ds3(4));
            f2.transfer(NodeId(0), NodeId(2), 100_000, t(0)).arrival
        };
        let a = f.transfer(NodeId(0), NodeId(2), 100_000, t(0)).arrival;
        let b = f.transfer(NodeId(1), NodeId(3), 100_000, t(0)).arrival;
        assert_eq!(a, solo, "first flow unaffected");
        assert!(
            b.since(SimTime::ZERO) > solo.since(SimTime::ZERO),
            "second flow must queue behind the first on the trunk/backbone"
        );
    }

    #[test]
    fn intra_site_flows_avoid_the_backbone() {
        let f = NynetFabric::new(NynetParams::nynet_ds3(4));
        // Saturate the backbone with cross-site traffic…
        for _ in 0..4 {
            f.transfer(NodeId(0), NodeId(2), 100_000, t(0));
        }
        // …an intra-site transfer on untouched access links is unaffected
        // (2 -> 3: neither endpoint's links carry the cross-site flows).
        let local = f.transfer(NodeId(2), NodeId(3), 1_000, t(0));
        let fresh =
            NynetFabric::new(NynetParams::nynet_ds3(4)).transfer(NodeId(2), NodeId(3), 1_000, t(0));
        assert_eq!(local.arrival, fresh.arrival);
    }

    #[test]
    fn finite_output_buffer_drops_under_fanin() {
        // Two senders blast one destination through a 64-cell output port:
        // the second chunk finds the port full and is dropped whole.
        let f = AtmLanFabric::new(AtmLanParams::fore_lan(4).with_output_buffer(64));
        let big = 14_000; // ~292 cells, far beyond the port buffer
        let a = f.transfer(NodeId(0), NodeId(3), big, t(0));
        let b = f.transfer(NodeId(1), NodeId(3), big, t(0));
        assert!(!a.dropped, "first chunk finds an empty buffer");
        assert!(b.dropped, "second chunk must overflow the port");
        assert_eq!(f.overflow_drops(), 1);
    }

    #[test]
    fn infinite_buffer_never_overflows() {
        let f = AtmLanFabric::new(AtmLanParams::fore_lan(4));
        for _ in 0..20 {
            let tt = f.transfer(NodeId(0), NodeId(3), 14_000, t(0));
            assert!(!tt.dropped);
        }
        assert_eq!(f.overflow_drops(), 0);
    }

    #[test]
    fn lan_flap_on_uplink_drops_chunk() {
        let f = AtmLanFabric::new(AtmLanParams::fore_lan(4));
        f.uplink(NodeId(0)).schedule_flap(t(0), t(10));
        let tt = f.transfer(NodeId(0), NodeId(1), 40, t(0));
        assert!(tt.dropped);
        assert_eq!(f.flap_losses(), 1);
        // Traffic from an unaffected host is clean.
        let ok = f.transfer(NodeId(2), NodeId(1), 40, t(0));
        assert!(!ok.dropped);
    }

    #[test]
    fn wan_backbone_flap_only_hits_cross_site_traffic() {
        let f = NynetFabric::new(NynetParams::nynet(4));
        f.backbone().schedule_flap(t(0), t(100_000));
        let local = f.transfer(NodeId(0), NodeId(1), 1000, t(0));
        let remote = f.transfer(NodeId(0), NodeId(2), 1000, t(0));
        assert!(!local.dropped, "intra-site traffic avoids the backbone");
        assert!(remote.dropped, "cross-site traffic crosses the dead trunk");
        assert_eq!(f.flap_losses(), 1);
    }

    #[test]
    fn wan_overflow_counts_and_drops() {
        let f = NynetFabric::new(NynetParams::nynet_ds3(4).with_output_buffer(32));
        // Saturate the slow DS-3 backbone with cross-site bulk transfers.
        let mut dropped = 0;
        for _ in 0..8 {
            if f.transfer(NodeId(0), NodeId(2), 16_000, t(0)).dropped {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "backbone queue must overflow");
        assert_eq!(f.overflow_drops(), dropped);
    }

    #[test]
    fn more_sites_spread_hosts() {
        let mut p = NynetParams::nynet(9);
        p.sites = 3;
        assert_eq!(p.site_of(NodeId(0)), 0);
        assert_eq!(p.site_of(NodeId(3)), 1);
        assert_eq!(p.site_of(NodeId(8)), 2);
        let f = NynetFabric::new(p);
        // Cross-site pairs in disjoint sites do not interfere.
        let a = f.transfer(NodeId(0), NodeId(3), 50_000, t(0));
        let b = f.transfer(NodeId(6), NodeId(4), 50_000, t(0));
        // Both use the shared backbone, so at most one is delayed, but
        // site trunks are disjoint.
        assert!(b.arrival >= a.first_hop_done);
    }
}
