//! AAL3/4 — the older adaptation layer, kept for the overhead comparison.
//!
//! AAL3/4 (ITU-T I.363.3) spends 4 of every 48 payload bytes on per-cell
//! framing, leaving 44 for data:
//!
//! ```text
//! | ST(2b) SN(4b) MID(10b) | 44B payload | LI(6b) CRC-10(10b) |
//! ```
//!
//! `ST` is the segment type (BOM / COM / EOM / SSM), `SN` a 4-bit sequence
//! number, `MID` a multiplexing id allowing several PDUs to interleave on one
//! circuit — the capability AAL5 dropped in exchange for 9% more payload.
//! The paper's Figure 11/12 stacks show both AALs under the ATM layer; the
//! bench suite uses this module to quantify why NCS defaults to AAL5.

use crate::cell::{AtmCell, CellHeader, CELL_PAYLOAD};
use crate::crc::crc10;
use bytes::Bytes;

/// Data bytes per AAL3/4 cell.
pub const SAR_PAYLOAD: usize = 44;

/// Segment type codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegmentType {
    /// Beginning of message.
    Bom,
    /// Continuation of message.
    Com,
    /// End of message.
    Eom,
    /// Single-segment message.
    Ssm,
}

impl SegmentType {
    fn code(self) -> u8 {
        match self {
            SegmentType::Bom => 0b10,
            SegmentType::Com => 0b00,
            SegmentType::Eom => 0b01,
            SegmentType::Ssm => 0b11,
        }
    }

    fn from_code(c: u8) -> SegmentType {
        match c & 0b11 {
            0b10 => SegmentType::Bom,
            0b00 => SegmentType::Com,
            0b01 => SegmentType::Eom,
            _ => SegmentType::Ssm,
        }
    }
}

/// Number of cells AAL3/4 needs for `bytes` of payload.
pub fn cells_for_pdu(bytes: usize) -> usize {
    bytes.div_ceil(SAR_PAYLOAD).max(1)
}

/// Segments `payload` into AAL3/4 cells for multiplexing id `mid`.
///
/// The full SAR-PDU (every cell's header + payload + trailer) is built as
/// one contiguous buffer, and each cell holds a zero-copy [`Bytes`] slice
/// of its 48-byte window.
pub fn segment(payload: &[u8], vpi: u8, vci: u16, mid: u16) -> Vec<AtmCell> {
    assert!(mid < 1024, "MID is 10 bits");
    let n = cells_for_pdu(payload.len());
    let mut sar = vec![0u8; n * CELL_PAYLOAD];
    for i in 0..n {
        let lo = i * SAR_PAYLOAD;
        let hi = (lo + SAR_PAYLOAD).min(payload.len());
        let chunk = &payload[lo..hi];
        let st = match (i == 0, i == n - 1) {
            (true, true) => SegmentType::Ssm,
            (true, false) => SegmentType::Bom,
            (false, false) => SegmentType::Com,
            (false, true) => SegmentType::Eom,
        };
        let sn = (i % 16) as u8;
        let body = &mut sar[i * CELL_PAYLOAD..(i + 1) * CELL_PAYLOAD];
        // SAR header: ST(2) SN(4) MID(10)
        body[0] = (st.code() << 6) | (sn << 2) | ((mid >> 8) as u8 & 0b11);
        body[1] = mid as u8;
        body[2..2 + chunk.len()].copy_from_slice(chunk);
        // SAR trailer: LI(6) CRC10(10) — CRC covers header+payload.
        let li = chunk.len() as u8;
        let crc = crc10(&body[..46]);
        body[46] = (li << 2) | ((crc >> 8) as u8 & 0b11);
        body[47] = crc as u8;
    }
    let sar = Bytes::from(sar);
    (0..n)
        .map(|i| {
            AtmCell::new(
                CellHeader::data(vpi, vci),
                sar.slice(i * CELL_PAYLOAD..(i + 1) * CELL_PAYLOAD),
            )
        })
        .collect()
}

/// Reassembly failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Aal34Error {
    /// No cells supplied.
    Empty,
    /// Per-cell CRC-10 mismatch.
    BadCrc,
    /// Sequence number gap.
    BadSequence,
    /// Segment-type state machine violation (e.g. COM before BOM).
    Framing,
    /// Cells from multiple MIDs passed to single-PDU reassembly.
    MixedMid,
}

impl std::fmt::Display for Aal34Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Aal34Error::Empty => "no cells",
            Aal34Error::BadCrc => "SAR-PDU CRC-10 mismatch",
            Aal34Error::BadSequence => "sequence number gap",
            Aal34Error::Framing => "segment-type violation",
            Aal34Error::MixedMid => "multiple MIDs",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for Aal34Error {}

/// Reassembles one PDU from its AAL3/4 cells.
pub fn reassemble(cells: &[AtmCell]) -> Result<Vec<u8>, Aal34Error> {
    if cells.is_empty() {
        return Err(Aal34Error::Empty);
    }
    let mut out = Vec::with_capacity(cells.len() * SAR_PAYLOAD);
    let mut mid0 = None;
    for (i, cell) in cells.iter().enumerate() {
        let body = &cell.payload;
        let crc_given = (u16::from(body[46] & 0b11) << 8) | u16::from(body[47]);
        if crc10(&body[..46]) != crc_given {
            return Err(Aal34Error::BadCrc);
        }
        let st = SegmentType::from_code(body[0] >> 6);
        let sn = (body[0] >> 2) & 0x0F;
        let mid = (u16::from(body[0] & 0b11) << 8) | u16::from(body[1]);
        let li = (body[46] >> 2) as usize;
        if *mid0.get_or_insert(mid) != mid {
            return Err(Aal34Error::MixedMid);
        }
        if sn != (i % 16) as u8 {
            return Err(Aal34Error::BadSequence);
        }
        let expect = match (i == 0, i == cells.len() - 1) {
            (true, true) => SegmentType::Ssm,
            (true, false) => SegmentType::Bom,
            (false, false) => SegmentType::Com,
            (false, true) => SegmentType::Eom,
        };
        if st != expect {
            return Err(Aal34Error::Framing);
        }
        out.extend_from_slice(&body[2..2 + li]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 13 + 1) as u8).collect()
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [0, 1, 43, 44, 45, 88, 89, 1000, 4000] {
            let p = payload(n);
            let cells = segment(&p, 3, 42, 7);
            assert_eq!(cells.len(), cells_for_pdu(n));
            assert_eq!(reassemble(&cells).unwrap(), p, "payload {n}");
        }
    }

    #[test]
    fn overhead_worse_than_aal5() {
        // For a 4 KB transfer AAL3/4 needs strictly more cells than AAL5.
        let n34 = cells_for_pdu(4096);
        let n5 = crate::aal5::cells_for_pdu(4096);
        assert!(n34 > n5, "AAL3/4 {n34} vs AAL5 {n5}");
        assert_eq!(n34, 94); // ceil(4096/44)
        assert_eq!(n5, 86); // ceil(4104/48)
    }

    #[test]
    fn single_cell_is_ssm() {
        let cells = segment(&payload(10), 0, 1, 0);
        assert_eq!(cells.len(), 1);
        assert_eq!(
            SegmentType::from_code(cells[0].payload[0] >> 6),
            SegmentType::Ssm
        );
    }

    #[test]
    fn corruption_detected_per_cell() {
        let mut cells = segment(&payload(300), 0, 1, 1);
        // Payload slices are shared views of the SAR-PDU; damage through a
        // copy.
        let mut damaged = cells[2].payload.to_vec();
        damaged[10] ^= 0x80;
        cells[2].payload = Bytes::from(damaged);
        assert_eq!(reassemble(&cells), Err(Aal34Error::BadCrc));
    }

    #[test]
    fn dropped_cell_detected_by_sequence() {
        let mut cells = segment(&payload(300), 0, 1, 1);
        cells.remove(1);
        assert_eq!(reassemble(&cells), Err(Aal34Error::BadSequence));
    }

    #[test]
    fn mixed_mid_detected() {
        let a = segment(&payload(100), 0, 1, 1);
        let b = segment(&payload(100), 0, 1, 2);
        let mixed: Vec<_> = vec![a[0].clone(), b[1].clone(), a[2].clone()];
        assert_eq!(reassemble(&mixed), Err(Aal34Error::MixedMid));
    }
}
