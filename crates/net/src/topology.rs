//! Ready-made testbeds matching the paper's experimental environment
//! (Section 2): SUN/Ethernet, SUN/ATM LAN, and the NYNET WAN, each with the
//! appropriate host models and transport stack.

use std::sync::Arc;

use crate::atm::{AtmLanFabric, AtmLanParams, NynetFabric, NynetParams};
use crate::ethernet::{EthernetFabric, EthernetParams};
use crate::fabric::SwitchedFabric;
use crate::host::HostParams;
use crate::stack::{AtmApiNet, AtmApiParams, Network, TcpNet, TcpParams};
use crate::wan::{FatTreeFabric, FatTreeParams, WanRingFabric, WanRingParams};

/// The three hardware configurations of the paper plus the two HSM
/// variants enabled by NCS's second MPS implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Testbed {
    /// SPARCstation ELCs on shared 10 Mb/s Ethernet, TCP/IP (baseline LAN).
    SunEthernet,
    /// SPARCstation IPXs on a FORE ATM LAN, TCP/IP over ATM (NSM).
    SunAtmLanTcp,
    /// SPARCstation IPXs across the NYNET WAN testbed, TCP/IP over ATM.
    NynetTcp,
    /// SPARCstation IPXs on the FORE ATM LAN via the NCS ATM API (HSM).
    SunAtmLanApi,
    /// SPARCstation IPXs across NYNET via the NCS ATM API (HSM).
    NynetApi,
}

impl Testbed {
    /// Short identifier used in experiment tables.
    pub fn id(self) -> &'static str {
        match self {
            Testbed::SunEthernet => "ethernet",
            Testbed::SunAtmLanTcp => "atm-lan-tcp",
            Testbed::NynetTcp => "nynet-tcp",
            Testbed::SunAtmLanApi => "atm-lan-api",
            Testbed::NynetApi => "nynet-api",
        }
    }

    /// Builds the testbed's network stack for `nodes` hosts.
    pub fn build(self, nodes: usize) -> Arc<dyn Network> {
        match self {
            Testbed::SunEthernet => {
                let fabric = Arc::new(EthernetFabric::new(EthernetParams::new(nodes)));
                let hosts = vec![HostParams::sparc_elc(); nodes];
                Arc::new(TcpNet::new(fabric, hosts, TcpParams::ethernet()))
            }
            Testbed::SunAtmLanTcp => {
                let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(nodes)));
                let hosts = vec![HostParams::sparc_ipx(); nodes];
                Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
            }
            Testbed::NynetTcp => {
                let fabric = Arc::new(NynetFabric::new(NynetParams::nynet(nodes)));
                let hosts = vec![HostParams::sparc_ipx(); nodes];
                Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
            }
            Testbed::SunAtmLanApi => {
                let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(nodes)));
                let hosts = vec![HostParams::sparc_ipx(); nodes];
                Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()))
            }
            Testbed::NynetApi => {
                let fabric = Arc::new(NynetFabric::new(NynetParams::nynet(nodes)));
                let hosts = vec![HostParams::sparc_ipx(); nodes];
                Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()))
            }
        }
    }
}

/// The topology axis of the WAN-scale chaos sweep: one switch, a campus
/// fat-tree, or a wide-area ring. All three run SPARCstation IPX hosts
/// over TCP/IP-over-ATM so only the wire topology varies between arms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosTopology {
    /// Single FORE switch (the paper's ATM LAN).
    Lan,
    /// Two-level fat-tree: TAXI access into edge switches, OC-3 trunks to
    /// two cores.
    FatTree,
    /// Wide-area ring with mixed DS-3/OC-48 long-haul segments and
    /// millisecond propagation.
    WanRing,
}

impl ChaosTopology {
    /// Short identifier used in result tables.
    pub fn id(self) -> &'static str {
        match self {
            ChaosTopology::Lan => "lan",
            ChaosTopology::FatTree => "fat-tree",
            ChaosTopology::WanRing => "wan-ring",
        }
    }

    /// All sweep arms, in report order.
    pub fn all() -> [ChaosTopology; 3] {
        [
            ChaosTopology::Lan,
            ChaosTopology::FatTree,
            ChaosTopology::WanRing,
        ]
    }

    /// Builds a chaos testbed: a fabric over `nodes + extra_nodes` hosts
    /// (the extras carry cross-traffic, not application processes) with an
    /// optional finite per-switch output buffer, and the TCP/IP-over-ATM
    /// stack on top. Returns the fabric twice — as the [`SwitchedFabric`]
    /// handle the fault harness flaps links through, and erased inside the
    /// [`Network`] — so the harness can keep scheduling faults after the
    /// stack takes ownership.
    pub fn build_chaos(
        self,
        nodes: usize,
        extra_nodes: usize,
        output_buffer_cells: Option<usize>,
    ) -> (Arc<dyn SwitchedFabric>, Arc<dyn Network>) {
        let total = nodes + extra_nodes;
        let hosts = vec![HostParams::sparc_ipx(); total];
        let tcp = TcpParams::ip_over_atm();
        match self {
            ChaosTopology::Lan => {
                let mut p = AtmLanParams::fore_lan(total);
                if let Some(cells) = output_buffer_cells {
                    p = p.with_output_buffer(cells);
                }
                let fabric = Arc::new(AtmLanFabric::new(p));
                let net = Arc::new(TcpNet::new(Arc::clone(&fabric), hosts, tcp));
                (fabric, net)
            }
            ChaosTopology::FatTree => {
                let mut p = FatTreeParams::campus(total);
                if let Some(cells) = output_buffer_cells {
                    p = p.with_output_buffer(cells);
                }
                let fabric = Arc::new(FatTreeFabric::new(p));
                let net = Arc::new(TcpNet::new(Arc::clone(&fabric), hosts, tcp));
                (fabric, net)
            }
            ChaosTopology::WanRing => {
                let mut p = WanRingParams::mixed_ring(total, 4);
                if let Some(cells) = output_buffer_cells {
                    p = p.with_output_buffer(cells);
                }
                let fabric = Arc::new(WanRingFabric::new(p));
                let net = Arc::new(TcpNet::new(Arc::clone(&fabric), hosts, tcp));
                (fabric, net)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::NodeId;
    use crate::stack::BlockingWait;
    use bytes::Bytes;
    use ncs_sim::{Dur, Sim};
    use parking_lot::Mutex;

    fn one_way_latency(testbed: Testbed, bytes: usize) -> Dur {
        let net = testbed.build(4);
        let sim = Sim::new();
        let lat = Arc::new(Mutex::new(Dur::ZERO));
        let n2 = Arc::clone(&net);
        sim.spawn("tx", move |ctx| {
            n2.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(3),
                0,
                Bytes::from(vec![0u8; bytes]),
            );
        });
        let l2 = Arc::clone(&lat);
        sim.spawn("rx", move |ctx| {
            let m = net.inbox(NodeId(3)).recv(ctx).unwrap();
            ctx.sleep(net.recv_pickup_cost(NodeId(3), m.payload.len()));
            *l2.lock() = ctx.now().since(m.sent_at);
        });
        sim.run().assert_clean();
        let d = *lat.lock();
        d
    }

    #[test]
    fn all_testbeds_build_and_deliver() {
        for tb in [
            Testbed::SunEthernet,
            Testbed::SunAtmLanTcp,
            Testbed::NynetTcp,
            Testbed::SunAtmLanApi,
            Testbed::NynetApi,
        ] {
            let d = one_way_latency(tb, 4096);
            assert!(d > Dur::ZERO, "{}: zero latency", tb.id());
        }
    }

    #[test]
    fn atm_lan_beats_ethernet_for_bulk() {
        let eth = one_way_latency(Testbed::SunEthernet, 100_000);
        let atm = one_way_latency(Testbed::SunAtmLanTcp, 100_000);
        assert!(atm < eth, "ATM {atm} !< Ethernet {eth}");
    }

    #[test]
    fn hsm_beats_nsm_on_atm_lan() {
        let nsm = one_way_latency(Testbed::SunAtmLanTcp, 100_000);
        let hsm = one_way_latency(Testbed::SunAtmLanApi, 100_000);
        assert!(hsm < nsm, "HSM {hsm} !< NSM {nsm}");
    }

    #[test]
    fn wan_adds_propagation_over_lan() {
        let lan = one_way_latency(Testbed::SunAtmLanTcp, 1000);
        let wan = one_way_latency(Testbed::NynetTcp, 1000);
        assert!(wan.saturating_sub(lan) >= Dur::from_millis(1));
    }
}

#[cfg(test)]
mod id_tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_stable() {
        let ids: Vec<&str> = [
            Testbed::SunEthernet,
            Testbed::SunAtmLanTcp,
            Testbed::NynetTcp,
            Testbed::SunAtmLanApi,
            Testbed::NynetApi,
        ]
        .iter()
        .map(|t| t.id())
        .collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "testbed ids must be unique");
        assert_eq!(Testbed::SunEthernet.id(), "ethernet");
    }

    #[test]
    fn descriptions_name_their_parts() {
        assert!(Testbed::SunEthernet
            .build(2)
            .description()
            .contains("Ethernet"));
        assert!(Testbed::SunAtmLanTcp
            .build(2)
            .description()
            .contains("TCP/IP"));
        assert!(Testbed::SunAtmLanApi
            .build(2)
            .description()
            .contains("ATM API"));
        assert!(Testbed::NynetTcp.build(2).description().contains("NYNET"));
    }

    #[test]
    fn chaos_topologies_build_with_extras_and_buffers() {
        use crate::fabric::NodeId;
        for topo in ChaosTopology::all() {
            let (fabric, net) = topo.build_chaos(16, 4, Some(256));
            assert_eq!(net.nodes(), 20, "{}", topo.id());
            assert_eq!(fabric.nodes(), 20);
            // The handles the fault harness needs are live: access links
            // exist for every host, and the multi-switch arms expose
            // trunks to flap.
            let _ = fabric.uplink_of(NodeId(0));
            let _ = fabric.downlink_of(NodeId(19));
            match topo {
                ChaosTopology::Lan => assert!(fabric.trunk_links().is_empty()),
                _ => assert!(!fabric.trunk_links().is_empty(), "{}", topo.id()),
            }
            assert_eq!(fabric.overflow_drop_count(), 0);
            assert_eq!(fabric.flap_loss_count(), 0);
        }
    }

    #[test]
    fn hosts_match_testbed_hardware() {
        use crate::fabric::NodeId;
        // Ethernet testbed runs on ELCs, ATM testbeds on IPXs (Section 2).
        assert!(Testbed::SunEthernet
            .build(2)
            .host(NodeId(0))
            .name
            .contains("ELC"));
        for tb in [
            Testbed::SunAtmLanTcp,
            Testbed::NynetTcp,
            Testbed::SunAtmLanApi,
        ] {
            assert!(
                tb.build(2).host(NodeId(0)).name.contains("IPX"),
                "{}",
                tb.id()
            );
        }
    }
}
