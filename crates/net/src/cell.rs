//! The ATM cell: a 53-byte unit with a 5-byte header and 48-byte payload.
//!
//! Header layout (UNI format, ITU-T I.361):
//!
//! ```text
//!  bit 7                                0
//!  +--------+--------+--------+--------+
//!  |  GFC   |       VPI       |  VCI   |   (GFC 4b, VPI 8b, VCI 16b,
//!  |        VCI (cont)        |PT |CLP |    PT 3b, CLP 1b)
//!  +--------+--------+--------+--------+
//!  |               HEC                 |   (CRC-8 + coset over bytes 0..4)
//!  +-----------------------------------+
//! ```
//!
//! The payload-type (PT) field's least significant "AUU" bit is how AAL5
//! marks the final cell of a CS-PDU.

use crate::crc;
use bytes::Bytes;

/// Bytes in a full ATM cell.
pub const CELL_BYTES: usize = 53;
/// Bytes of payload per cell.
pub const CELL_PAYLOAD: usize = 48;
/// Header bytes.
pub const CELL_HEADER: usize = 5;

/// Number of cells needed to carry `bytes` of raw payload (no AAL framing).
pub fn cells_for(bytes: usize) -> usize {
    bytes.div_ceil(CELL_PAYLOAD)
}

/// Decoded cell header fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CellHeader {
    /// Generic flow control (UNI only), 4 bits.
    pub gfc: u8,
    /// Virtual path identifier, 8 bits at the UNI.
    pub vpi: u8,
    /// Virtual channel identifier, 16 bits.
    pub vci: u16,
    /// Payload type, 3 bits. Bit 0 is the AAU/AUU bit used by AAL5 to mark
    /// the last cell of a PDU.
    pub pt: u8,
    /// Cell loss priority, 1 bit (1 = discard-eligible).
    pub clp: bool,
}

impl CellHeader {
    /// A data-cell header for the given circuit.
    pub fn data(vpi: u8, vci: u16) -> CellHeader {
        CellHeader {
            gfc: 0,
            vpi,
            vci,
            pt: 0,
            clp: false,
        }
    }

    /// Marks this as the final cell of an AAL5 CS-PDU.
    pub fn with_end_of_pdu(mut self, end: bool) -> CellHeader {
        if end {
            self.pt |= 0b001;
        } else {
            self.pt &= !0b001;
        }
        self
    }

    /// Whether the AAL5 end-of-PDU bit is set.
    pub fn end_of_pdu(&self) -> bool {
        self.pt & 0b001 != 0
    }

    /// Packs the header into 5 bytes including the computed HEC.
    pub fn pack(&self) -> [u8; CELL_HEADER] {
        assert!(self.gfc < 16, "GFC is 4 bits");
        assert!(self.pt < 8, "PT is 3 bits");
        let b0 = (self.gfc << 4) | (self.vpi >> 4);
        let b1 = (self.vpi << 4) | ((self.vci >> 12) as u8 & 0x0F);
        let b2 = (self.vci >> 4) as u8;
        let b3 = ((self.vci as u8) << 4) | (self.pt << 1) | u8::from(self.clp);
        let hec = crc::hec(&[b0, b1, b2, b3]);
        [b0, b1, b2, b3, hec]
    }

    /// Unpacks and HEC-verifies a 5-byte header.
    pub fn unpack(bytes: &[u8; CELL_HEADER]) -> Result<CellHeader, HeaderError> {
        if !crc::hec_ok(bytes) {
            return Err(HeaderError::BadHec);
        }
        Ok(CellHeader {
            gfc: bytes[0] >> 4,
            vpi: (bytes[0] << 4) | (bytes[1] >> 4),
            vci: (u16::from(bytes[1] & 0x0F) << 12)
                | (u16::from(bytes[2]) << 4)
                | u16::from(bytes[3] >> 4),
            pt: (bytes[3] >> 1) & 0b111,
            clp: bytes[3] & 1 != 0,
        })
    }

    /// Unpacks a 5-byte header in HEC *correction mode* (ITU-T I.432): a
    /// clean header decodes directly; a single-bit error anywhere in the 40
    /// header bits is corrected; anything worse is discarded. Returns the
    /// header and whether a correction was applied.
    pub fn unpack_correcting(
        bytes: &[u8; CELL_HEADER],
    ) -> Result<(CellHeader, bool), HeaderError> {
        if let Ok(h) = CellHeader::unpack(bytes) {
            return Ok((h, false));
        }
        for bit in 0..(CELL_HEADER * 8) {
            let mut fixed = *bytes;
            fixed[bit / 8] ^= 1 << (bit % 8);
            if let Ok(h) = CellHeader::unpack(&fixed) {
                return Ok((h, true));
            }
        }
        Err(HeaderError::BadHec)
    }
}

/// Header decode failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeaderError {
    /// Header error control checksum mismatch.
    BadHec,
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::BadHec => write!(f, "HEC check failed"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// A complete ATM cell.
///
/// The payload is a [`Bytes`] slice — normally a zero-copy view into the
/// CS-PDU the SAR layer built once (see [`crate::aal5::segment`]), so
/// cloning a cell or a whole cell train never copies payload bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AtmCell {
    /// Decoded header.
    pub header: CellHeader,
    /// 48-byte payload slice (invariant: `len() == CELL_PAYLOAD`).
    pub payload: Bytes,
}

impl AtmCell {
    /// Builds a cell from header fields and exactly 48 payload bytes.
    pub fn new(header: CellHeader, payload: Bytes) -> AtmCell {
        assert_eq!(
            payload.len(),
            CELL_PAYLOAD,
            "ATM cell payload must be exactly {CELL_PAYLOAD} bytes"
        );
        AtmCell { header, payload }
    }

    /// Serializes to 53 bytes.
    pub fn to_bytes(&self) -> [u8; CELL_BYTES] {
        let mut out = [0u8; CELL_BYTES];
        out[..CELL_HEADER].copy_from_slice(&self.header.pack());
        out[CELL_HEADER..].copy_from_slice(&self.payload);
        out
    }

    /// Parses 53 bytes, verifying the HEC.
    pub fn from_bytes(bytes: &[u8; CELL_BYTES]) -> Result<AtmCell, HeaderError> {
        let mut hdr = [0u8; CELL_HEADER];
        hdr.copy_from_slice(&bytes[..CELL_HEADER]);
        let header = CellHeader::unpack(&hdr)?;
        Ok(AtmCell {
            header,
            payload: Bytes::copy_from_slice(&bytes[CELL_HEADER..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_for_rounds_up() {
        assert_eq!(cells_for(0), 0);
        assert_eq!(cells_for(1), 1);
        assert_eq!(cells_for(48), 1);
        assert_eq!(cells_for(49), 2);
        assert_eq!(cells_for(96), 2);
    }

    #[test]
    fn header_pack_unpack_roundtrip() {
        for (vpi, vci, pt, clp) in [
            (0u8, 0u16, 0u8, false),
            (1, 42, 0, false),
            (255, 65535, 0b101, true),
            (0x5A, 0x1234, 0b001, false),
        ] {
            let h = CellHeader {
                gfc: 0,
                vpi,
                vci,
                pt,
                clp,
            };
            let packed = h.pack();
            let back = CellHeader::unpack(&packed).unwrap();
            assert_eq!(back, h);
        }
    }

    #[test]
    fn corrupted_header_rejected() {
        let h = CellHeader::data(3, 77);
        let mut packed = h.pack();
        packed[2] ^= 0x40;
        assert_eq!(CellHeader::unpack(&packed), Err(HeaderError::BadHec));
    }

    #[test]
    fn single_bit_header_error_corrected() {
        let h = CellHeader::data(3, 77).with_end_of_pdu(true);
        for bit in 0..(CELL_HEADER * 8) {
            let mut packed = h.pack();
            packed[bit / 8] ^= 1 << (bit % 8);
            let (back, corrected) = CellHeader::unpack_correcting(&packed)
                .unwrap_or_else(|_| panic!("bit {bit} must be correctable"));
            assert!(corrected);
            assert_eq!(back, h, "bit {bit}");
        }
    }

    #[test]
    fn clean_header_reports_no_correction() {
        let h = CellHeader::data(1, 9);
        let (back, corrected) = CellHeader::unpack_correcting(&h.pack()).unwrap();
        assert!(!corrected);
        assert_eq!(back, h);
    }

    #[test]
    fn end_of_pdu_bit() {
        let h = CellHeader::data(1, 2).with_end_of_pdu(true);
        assert!(h.end_of_pdu());
        assert_eq!(h.pt, 0b001);
        let h = h.with_end_of_pdu(false);
        assert!(!h.end_of_pdu());
    }

    #[test]
    fn cell_roundtrip() {
        let payload: Vec<u8> = (0..CELL_PAYLOAD as u8).collect();
        let cell = AtmCell::new(
            CellHeader::data(9, 300).with_end_of_pdu(true),
            Bytes::from(payload),
        );
        let bytes = cell.to_bytes();
        assert_eq!(bytes.len(), CELL_BYTES);
        let back = AtmCell::from_bytes(&bytes).unwrap();
        assert_eq!(back, cell);
    }

    #[test]
    #[should_panic(expected = "exactly 48 bytes")]
    fn wrong_payload_length_rejected() {
        let _ = AtmCell::new(CellHeader::data(0, 33), Bytes::from_static(b"short"));
    }
}
