//! AAL5 — the ATM adaptation layer NCS's High Speed Mode rides on.
//!
//! AAL5 (ITU-T I.363.5) frames a variable-length CS-PDU as:
//!
//! ```text
//! | user payload | 0-pad | 8-byte trailer: UU CPI LEN(2) CRC32(4) |
//! ```
//!
//! padded so the total is a multiple of 48, then slices it into cells; the
//! final cell is marked via the AUU bit of the PT field. There is no per-cell
//! overhead, which is why AAL5 (rather than AAL3/4) became the data AAL —
//! the `ncs-bench` overhead comparison quantifies exactly that.

use crate::cell::{AtmCell, CellHeader, CELL_PAYLOAD};
use crate::crc::crc32_aal5;

/// Trailer length in bytes.
pub const TRAILER_BYTES: usize = 8;

/// Maximum CS-PDU payload (16-bit length field).
pub const MAX_PDU: usize = 65_535;

/// Segments `payload` into AAL5 cells on circuit (`vpi`, `vci`).
///
/// Panics if `payload` exceeds [`MAX_PDU`] (callers chunk larger transfers;
/// the NCS buffer layer never hands AAL5 more than one I/O buffer at once).
pub fn segment(payload: &[u8], vpi: u8, vci: u16) -> Vec<AtmCell> {
    assert!(payload.len() <= MAX_PDU, "AAL5 PDU too large");
    let total = (payload.len() + TRAILER_BYTES).div_ceil(CELL_PAYLOAD) * CELL_PAYLOAD;
    let mut pdu = Vec::with_capacity(total);
    pdu.extend_from_slice(payload);
    pdu.resize(total - TRAILER_BYTES, 0);
    pdu.push(0); // CPCS-UU
    pdu.push(0); // CPI
    pdu.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    let crc = crc32_aal5(&pdu);
    pdu.extend_from_slice(&crc.to_be_bytes());
    debug_assert_eq!(pdu.len() % CELL_PAYLOAD, 0);

    let n_cells = pdu.len() / CELL_PAYLOAD;
    let mut cells = Vec::with_capacity(n_cells);
    for (i, chunk) in pdu.chunks_exact(CELL_PAYLOAD).enumerate() {
        let mut body = [0u8; CELL_PAYLOAD];
        body.copy_from_slice(chunk);
        let header = CellHeader::data(vpi, vci).with_end_of_pdu(i == n_cells - 1);
        cells.push(AtmCell::new(header, body));
    }
    cells
}

/// Number of cells AAL5 needs for a payload of `bytes` (used by the timing
/// models without materializing cells).
pub fn cells_for_pdu(bytes: usize) -> usize {
    (bytes + TRAILER_BYTES).div_ceil(CELL_PAYLOAD)
}

/// Reassembly failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Aal5Error {
    /// No cells supplied.
    Empty,
    /// Final cell lacks the end-of-PDU mark, or a mark appears early.
    Framing,
    /// Cells from more than one circuit were interleaved.
    MixedCircuit,
    /// CRC-32 mismatch over the reassembled CS-PDU.
    BadCrc,
    /// Length field inconsistent with the cell count.
    BadLength,
}

impl std::fmt::Display for Aal5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Aal5Error::Empty => "no cells",
            Aal5Error::Framing => "end-of-PDU framing violation",
            Aal5Error::MixedCircuit => "cells from multiple circuits",
            Aal5Error::BadCrc => "CS-PDU CRC-32 mismatch",
            Aal5Error::BadLength => "length field inconsistent",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for Aal5Error {}

/// Reassembles one CS-PDU from its cells, verifying framing, circuit
/// consistency, CRC and length.
pub fn reassemble(cells: &[AtmCell]) -> Result<Vec<u8>, Aal5Error> {
    if cells.is_empty() {
        return Err(Aal5Error::Empty);
    }
    let circuit = (cells[0].header.vpi, cells[0].header.vci);
    for (i, c) in cells.iter().enumerate() {
        if (c.header.vpi, c.header.vci) != circuit {
            return Err(Aal5Error::MixedCircuit);
        }
        let last = i == cells.len() - 1;
        if c.header.end_of_pdu() != last {
            return Err(Aal5Error::Framing);
        }
    }
    let mut pdu = Vec::with_capacity(cells.len() * CELL_PAYLOAD);
    for c in cells {
        pdu.extend_from_slice(&c.payload);
    }
    let crc_given = u32::from_be_bytes(pdu[pdu.len() - 4..].try_into().unwrap());
    let crc_calc = crc32_aal5(&pdu[..pdu.len() - 4]);
    if crc_given != crc_calc {
        return Err(Aal5Error::BadCrc);
    }
    let len = u16::from_be_bytes(pdu[pdu.len() - 6..pdu.len() - 4].try_into().unwrap()) as usize;
    if len + TRAILER_BYTES > pdu.len() || pdu.len() - (len + TRAILER_BYTES) >= CELL_PAYLOAD {
        return Err(Aal5Error::BadLength);
    }
    pdu.truncate(len);
    Ok(pdu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 3) as u8).collect()
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [0, 1, 39, 40, 41, 47, 48, 88, 89, 96, 1000, 65_535] {
            let p = payload(n);
            let cells = segment(&p, 2, 99);
            assert_eq!(cells.len(), cells_for_pdu(n), "cell count for {n}");
            let back = reassemble(&cells).expect("reassemble");
            assert_eq!(back, p, "payload {n}");
        }
    }

    #[test]
    fn only_last_cell_marked() {
        let cells = segment(&payload(200), 1, 5);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.header.end_of_pdu(), i == cells.len() - 1);
        }
    }

    #[test]
    fn forty_bytes_fit_one_cell() {
        // 40 + 8 trailer = 48: exactly one cell; 41 needs two.
        assert_eq!(segment(&payload(40), 0, 1).len(), 1);
        assert_eq!(segment(&payload(41), 0, 1).len(), 2);
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut cells = segment(&payload(500), 0, 1);
        cells[3].payload[10] ^= 0x01;
        assert_eq!(reassemble(&cells), Err(Aal5Error::BadCrc));
    }

    #[test]
    fn missing_last_cell_detected() {
        let mut cells = segment(&payload(500), 0, 1);
        cells.pop();
        assert_eq!(reassemble(&cells), Err(Aal5Error::Framing));
    }

    #[test]
    fn dropped_middle_cell_detected() {
        let mut cells = segment(&payload(500), 0, 1);
        cells.remove(2);
        // Framing still looks fine (only last cell marked) but CRC catches it.
        assert_eq!(reassemble(&cells), Err(Aal5Error::BadCrc));
    }

    #[test]
    fn interleaved_circuits_detected() {
        let a = segment(&payload(100), 0, 1);
        let b = segment(&payload(100), 0, 2);
        let mixed: Vec<_> = a[..1].iter().chain(b[1..].iter()).cloned().collect();
        assert_eq!(reassemble(&mixed), Err(Aal5Error::MixedCircuit));
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(reassemble(&[]), Err(Aal5Error::Empty));
    }
}
