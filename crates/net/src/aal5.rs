//! AAL5 — the ATM adaptation layer NCS's High Speed Mode rides on.
//!
//! AAL5 (ITU-T I.363.5) frames a variable-length CS-PDU as:
//!
//! ```text
//! | user payload | 0-pad | 8-byte trailer: UU CPI LEN(2) CRC32(4) |
//! ```
//!
//! padded so the total is a multiple of 48, then slices it into cells; the
//! final cell is marked via the AUU bit of the PT field. There is no per-cell
//! overhead, which is why AAL5 (rather than AAL3/4) became the data AAL —
//! the `ncs-bench` overhead comparison quantifies exactly that.

use crate::cell::{AtmCell, CellHeader, CELL_PAYLOAD};
use crate::crc::crc32_aal5;
use bytes::Bytes;

/// Trailer length in bytes.
pub const TRAILER_BYTES: usize = 8;

/// Maximum CS-PDU payload (16-bit length field).
pub const MAX_PDU: usize = 65_535;

/// Segments `payload` into AAL5 cells on circuit (`vpi`, `vci`).
///
/// Zero-copy: the padded CS-PDU (payload + pad + trailer) is materialized
/// exactly once, and every cell holds a [`Bytes`] slice into it — no
/// per-cell payload copy. Returns [`Aal5Error::PduTooLarge`] when `payload`
/// exceeds [`MAX_PDU`] (the NCS I/O-buffer layer chunks larger transfers,
/// so it never hands AAL5 more than one buffer at once, but direct users
/// get a typed error rather than an abort).
pub fn segment(payload: &[u8], vpi: u8, vci: u16) -> Result<Vec<AtmCell>, Aal5Error> {
    if payload.len() > MAX_PDU {
        return Err(Aal5Error::PduTooLarge {
            len: payload.len(),
            max: MAX_PDU,
        });
    }
    let total = (payload.len() + TRAILER_BYTES).div_ceil(CELL_PAYLOAD) * CELL_PAYLOAD;
    let mut pdu = Vec::with_capacity(total);
    pdu.extend_from_slice(payload);
    pdu.resize(total - TRAILER_BYTES, 0);
    pdu.push(0); // CPCS-UU
    pdu.push(0); // CPI
    pdu.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    let crc = crc32_aal5(&pdu);
    pdu.extend_from_slice(&crc.to_be_bytes());
    debug_assert_eq!(pdu.len() % CELL_PAYLOAD, 0);

    let pdu = Bytes::from(pdu);
    let n_cells = pdu.len() / CELL_PAYLOAD;
    let mut cells = Vec::with_capacity(n_cells);
    for i in 0..n_cells {
        let header = CellHeader::data(vpi, vci).with_end_of_pdu(i == n_cells - 1);
        cells.push(AtmCell::new(
            header,
            pdu.slice(i * CELL_PAYLOAD..(i + 1) * CELL_PAYLOAD),
        ));
    }
    Ok(cells)
}

/// Number of cells AAL5 needs for a payload of `bytes` (used by the timing
/// models without materializing cells).
pub fn cells_for_pdu(bytes: usize) -> usize {
    (bytes + TRAILER_BYTES).div_ceil(CELL_PAYLOAD)
}

/// Segmentation or reassembly failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Aal5Error {
    /// Payload exceeds the 16-bit AAL5 length field.
    PduTooLarge {
        /// Offending payload length.
        len: usize,
        /// The [`MAX_PDU`] limit.
        max: usize,
    },
    /// No cells supplied.
    Empty,
    /// Final cell lacks the end-of-PDU mark, or a mark appears early.
    Framing,
    /// Cells from more than one circuit were interleaved.
    MixedCircuit,
    /// CRC-32 mismatch over the reassembled CS-PDU.
    BadCrc,
    /// Length field inconsistent with the cell count.
    BadLength,
}

impl std::fmt::Display for Aal5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Aal5Error::PduTooLarge { len, max } => {
                write!(f, "CS-PDU of {len} bytes exceeds the AAL5 maximum of {max}")
            }
            Aal5Error::Empty => write!(f, "no cells"),
            Aal5Error::Framing => write!(f, "end-of-PDU framing violation"),
            Aal5Error::MixedCircuit => write!(f, "cells from multiple circuits"),
            Aal5Error::BadCrc => write!(f, "CS-PDU CRC-32 mismatch"),
            Aal5Error::BadLength => write!(f, "length field inconsistent"),
        }
    }
}

impl std::error::Error for Aal5Error {}

/// Reassembles one CS-PDU from its cells, verifying framing, circuit
/// consistency, CRC and length.
pub fn reassemble(cells: &[AtmCell]) -> Result<Vec<u8>, Aal5Error> {
    if cells.is_empty() {
        return Err(Aal5Error::Empty);
    }
    let circuit = (cells[0].header.vpi, cells[0].header.vci);
    for (i, c) in cells.iter().enumerate() {
        if (c.header.vpi, c.header.vci) != circuit {
            return Err(Aal5Error::MixedCircuit);
        }
        let last = i == cells.len() - 1;
        if c.header.end_of_pdu() != last {
            return Err(Aal5Error::Framing);
        }
    }
    let mut pdu = Vec::with_capacity(cells.len() * CELL_PAYLOAD);
    for c in cells {
        pdu.extend_from_slice(&c.payload);
    }
    let crc_given = u32::from_be_bytes(pdu[pdu.len() - 4..].try_into().unwrap());
    let crc_calc = crc32_aal5(&pdu[..pdu.len() - 4]);
    if crc_given != crc_calc {
        return Err(Aal5Error::BadCrc);
    }
    let len = u16::from_be_bytes(pdu[pdu.len() - 6..pdu.len() - 4].try_into().unwrap()) as usize;
    if len + TRAILER_BYTES > pdu.len() || pdu.len() - (len + TRAILER_BYTES) >= CELL_PAYLOAD {
        return Err(Aal5Error::BadLength);
    }
    pdu.truncate(len);
    Ok(pdu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 3) as u8).collect()
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [0, 1, 39, 40, 41, 47, 48, 88, 89, 96, 1000, 65_535] {
            let p = payload(n);
            let cells = segment(&p, 2, 99).expect("segment");
            assert_eq!(cells.len(), cells_for_pdu(n), "cell count for {n}");
            let back = reassemble(&cells).expect("reassemble");
            assert_eq!(back, p, "payload {n}");
        }
    }

    #[test]
    fn zero_length_pdu_roundtrips() {
        // A zero-byte payload is a legal CS-PDU: one cell of pure pad +
        // trailer, end-of-PDU marked, LEN = 0.
        let cells = segment(&[], 7, 40).expect("segment");
        assert_eq!(cells.len(), 1);
        assert!(cells[0].header.end_of_pdu());
        let back = reassemble(&cells).expect("reassemble");
        assert!(back.is_empty());
    }

    #[test]
    fn oversize_pdu_is_typed_error() {
        let p = vec![0u8; MAX_PDU + 1];
        assert_eq!(
            segment(&p, 0, 1),
            Err(Aal5Error::PduTooLarge {
                len: MAX_PDU + 1,
                max: MAX_PDU
            })
        );
    }

    #[test]
    fn segmentation_is_zero_copy() {
        // All cells of one PDU view the same backing allocation: slicing
        // the PDU must not copy payload bytes.
        let p = payload(500);
        let cells = segment(&p, 0, 1).unwrap();
        let base = cells[0].payload.as_ptr() as usize;
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.payload.as_ptr() as usize, base + i * CELL_PAYLOAD);
        }
    }

    #[test]
    fn only_last_cell_marked() {
        let cells = segment(&payload(200), 1, 5).unwrap();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.header.end_of_pdu(), i == cells.len() - 1);
        }
    }

    #[test]
    fn forty_bytes_fit_one_cell() {
        // 40 + 8 trailer = 48: exactly one cell; 41 needs two.
        assert_eq!(segment(&payload(40), 0, 1).unwrap().len(), 1);
        assert_eq!(segment(&payload(41), 0, 1).unwrap().len(), 2);
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut cells = segment(&payload(500), 0, 1).unwrap();
        // Copy-on-write: the payload slice shares the PDU, so damage goes
        // through an owned copy.
        let mut damaged = cells[3].payload.to_vec();
        damaged[10] ^= 0x01;
        cells[3].payload = Bytes::from(damaged);
        assert_eq!(reassemble(&cells), Err(Aal5Error::BadCrc));
    }

    #[test]
    fn missing_last_cell_detected() {
        let mut cells = segment(&payload(500), 0, 1).unwrap();
        cells.pop();
        assert_eq!(reassemble(&cells), Err(Aal5Error::Framing));
    }

    #[test]
    fn dropped_middle_cell_detected() {
        let mut cells = segment(&payload(500), 0, 1).unwrap();
        cells.remove(2);
        // Framing still looks fine (only last cell marked) but CRC catches it.
        assert_eq!(reassemble(&cells), Err(Aal5Error::BadCrc));
    }

    #[test]
    fn interleaved_circuits_detected() {
        let a = segment(&payload(100), 0, 1).unwrap();
        let b = segment(&payload(100), 0, 2).unwrap();
        let mixed: Vec<_> = a[..1].iter().chain(b[1..].iter()).cloned().collect();
        assert_eq!(reassemble(&mixed), Err(Aal5Error::MixedCircuit));
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(reassemble(&[]), Err(Aal5Error::Empty));
    }
}
