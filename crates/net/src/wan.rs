//! Multi-switch WAN-scale fabrics: a campus fat-tree and a wide-area ring
//! with DS-3/OC-48 long-haul segments — plus deterministic VBR cross-traffic
//! generators that contend with application traffic on the same links.
//!
//! Both fabrics follow the conventions of [`crate::atm`]: chunks ride as
//! AAL5 cell streams ([`crate::atm::atm_wire_bytes`]), every hop is a
//! FIFO-queued [`LinkState`] with payload-effective rates and per-link
//! propagation, switching is output-buffered with a fixed per-chunk switch
//! latency, and finite output buffers drop whole chunks on overflow. Routes
//! are deterministic (a pure function of the endpoint pair), so
//! [`Fabric::path_down`] can answer partition queries over exactly the
//! links a chunk would traverse.

use ncs_sim::{Dur, Sim, SimRng, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::atm::atm_wire_bytes;
use crate::cell::CELL_BYTES;
use crate::fabric::{Fabric, NodeId, SwitchedFabric, TransferTiming};
use crate::link::{LinkSpec, LinkState};

/// Does a chunk arriving at `link`'s output port at `at` find the buffer
/// already full? Same cut-through semantics as the [`crate::atm`] fabrics.
fn output_buffer_full(link: &LinkState, at: SimTime, cap: Option<usize>) -> bool {
    match cap {
        Some(cells) => link.backlog_bytes(at) as usize / CELL_BYTES >= cells,
        None => false,
    }
}

/// Parameters of a two-level fat-tree (edge switches × core switches).
#[derive(Clone, Debug)]
pub struct FatTreeParams {
    /// Total attached hosts.
    pub nodes: usize,
    /// Hosts per edge switch.
    pub hosts_per_edge: usize,
    /// Number of core switches (each edge has an up/down link pair to every
    /// core).
    pub cores: usize,
    /// Host access link (both directions).
    pub access: LinkSpec,
    /// Edge↔core trunk link.
    pub trunk: LinkSpec,
    /// Fixed per-chunk latency through each switch.
    pub switch_latency: Dur,
    /// Output-port buffer capacity in cells at every switch output;
    /// `None` = infinite.
    pub output_buffer_cells: Option<usize>,
}

impl FatTreeParams {
    /// A campus-scale build-out of the paper's FORE LAN: TAXI access into
    /// edge switches, OC-3 trunks up to two cores.
    pub fn campus(nodes: usize) -> FatTreeParams {
        FatTreeParams {
            nodes,
            hosts_per_edge: 8,
            cores: 2,
            access: LinkSpec::taxi_140(),
            trunk: LinkSpec::oc3(Dur::from_micros(20)),
            switch_latency: Dur::from_micros(20),
            output_buffer_cells: None,
        }
    }

    /// Caps every switch output port at `cells` cells of buffering.
    pub fn with_output_buffer(mut self, cells: usize) -> FatTreeParams {
        self.output_buffer_cells = Some(cells);
        self
    }

    /// Which edge switch a host hangs off.
    pub fn edge_of(&self, node: NodeId) -> usize {
        node.idx() / self.hosts_per_edge
    }

    /// Number of edge switches.
    pub fn edges(&self) -> usize {
        self.nodes.div_ceil(self.hosts_per_edge)
    }

    /// Deterministic core pick for a host pair: a pure function of the
    /// endpoints, so repeated chunks of one conversation share a path (no
    /// reordering) and [`Fabric::path_down`] can reason about the exact
    /// route.
    pub fn core_for(&self, src: NodeId, dst: NodeId) -> usize {
        (src.idx() + dst.idx()) % self.cores
    }
}

/// The two-level fat-tree fabric.
pub struct FatTreeFabric {
    params: FatTreeParams,
    uplinks: Vec<Arc<LinkState>>,
    downlinks: Vec<Arc<LinkState>>,
    /// `edge_up[e][c]`: edge `e` → core `c`.
    edge_up: Vec<Vec<Arc<LinkState>>>,
    /// `edge_down[e][c]`: core `c` → edge `e`.
    edge_down: Vec<Vec<Arc<LinkState>>>,
    overflow_drops: AtomicU64,
}

impl FatTreeFabric {
    /// Builds the fat-tree.
    pub fn new(params: FatTreeParams) -> FatTreeFabric {
        assert!(params.nodes >= 2, "a fabric needs at least two hosts");
        assert!(params.hosts_per_edge >= 1 && params.cores >= 1);
        let edges = params.edges();
        FatTreeFabric {
            uplinks: (0..params.nodes)
                .map(|_| LinkState::new(params.access.clone()))
                .collect(),
            downlinks: (0..params.nodes)
                .map(|_| LinkState::new(params.access.clone()))
                .collect(),
            edge_up: (0..edges)
                .map(|_| {
                    (0..params.cores)
                        .map(|_| LinkState::new(params.trunk.clone()))
                        .collect()
                })
                .collect(),
            edge_down: (0..edges)
                .map(|_| {
                    (0..params.cores)
                        .map(|_| LinkState::new(params.trunk.clone()))
                        .collect()
                })
                .collect(),
            overflow_drops: AtomicU64::new(0),
            params,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &FatTreeParams {
        &self.params
    }

    /// The host→edge-switch link of `node`.
    pub fn uplink(&self, node: NodeId) -> &Arc<LinkState> {
        &self.uplinks[node.idx()]
    }

    /// The edge-switch→host link of `node`.
    pub fn downlink(&self, node: NodeId) -> &Arc<LinkState> {
        &self.downlinks[node.idx()]
    }

    /// Chunks dropped to switch output-buffer overflow.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops.load(Ordering::Relaxed)
    }

    /// Chunks lost to scheduled link outages, across all links.
    pub fn flap_losses(&self) -> u64 {
        self.uplinks
            .iter()
            .chain(self.downlinks.iter())
            .chain(self.edge_up.iter().flatten())
            .chain(self.edge_down.iter().flatten())
            .map(|l| l.flap_losses())
            .sum()
    }

    /// The links (beyond the access pair) a chunk from `src` to `dst`
    /// traverses, in hop order.
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<&Arc<LinkState>> {
        let e_src = self.params.edge_of(src);
        let e_dst = self.params.edge_of(dst);
        let mut hops = Vec::with_capacity(3);
        if e_src != e_dst {
            let c = self.params.core_for(src, dst);
            hops.push(&self.edge_up[e_src][c]);
            hops.push(&self.edge_down[e_dst][c]);
        }
        hops.push(&self.downlinks[dst.idx()]);
        hops
    }
}

impl Fabric for FatTreeFabric {
    fn nodes(&self) -> usize {
        self.params.nodes
    }

    fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        depart: SimTime,
    ) -> TransferTiming {
        assert!(src.idx() < self.params.nodes && dst.idx() < self.params.nodes);
        assert_ne!(src, dst, "loopback does not touch the fabric");
        let wire = atm_wire_bytes(payload_bytes);
        let lat = self.params.switch_latency;
        let cap = self.params.output_buffer_cells;
        let up = self.uplinks[src.idx()].enqueue(depart, wire, Dur::ZERO);
        let mut lost = up.lost;
        let mut at = up.arrival + lat;
        for link in self.route(src, dst) {
            if output_buffer_full(link, at, cap) {
                self.overflow_drops.fetch_add(1, Ordering::Relaxed);
                return TransferTiming {
                    first_hop_done: up.end,
                    arrival: at,
                    dropped: true,
                };
            }
            let slot = link.enqueue(at, wire, Dur::ZERO);
            lost |= slot.lost;
            at = slot.arrival + lat;
        }
        // The final hop ends at the host, not another switch.
        TransferTiming {
            first_hop_done: up.end,
            arrival: at - lat,
            dropped: lost,
        }
    }

    fn access_rate(&self, _src: NodeId) -> u64 {
        self.params.access.rate_bps
    }

    fn output_backlog(&self, node: NodeId, now: SimTime) -> Option<u64> {
        Some(self.downlink(node).backlog_bytes(now))
    }

    fn path_down(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        if self.uplinks[src.idx()].is_down(at) {
            return true;
        }
        self.route(src, dst).iter().any(|l| l.is_down(at))
    }

    fn description(&self) -> String {
        format!(
            "fat-tree: {} hosts, {} edges x {} cores, {} access, {} trunks",
            self.params.nodes,
            self.params.edges(),
            self.params.cores,
            self.params.access.name,
            self.params.trunk.name
        )
    }
}

impl SwitchedFabric for FatTreeFabric {
    fn uplink_of(&self, node: NodeId) -> &Arc<LinkState> {
        self.uplink(node)
    }

    fn downlink_of(&self, node: NodeId) -> &Arc<LinkState> {
        self.downlink(node)
    }

    fn trunk_links(&self) -> Vec<Arc<LinkState>> {
        let mut v: Vec<Arc<LinkState>> = Vec::new();
        v.extend(self.edge_up.iter().flatten().cloned());
        v.extend(self.edge_down.iter().flatten().cloned());
        v
    }

    fn overflow_drop_count(&self) -> u64 {
        self.overflow_drops()
    }

    fn flap_loss_count(&self) -> u64 {
        self.flap_losses()
    }
}

/// Parameters of a wide-area ring: `sites` single-switch islands joined by
/// unidirectional long-haul segment pairs, shortest-direction routed.
#[derive(Clone, Debug)]
pub struct WanRingParams {
    /// Total hosts, split evenly across sites (first chunk at site 0, …).
    pub nodes: usize,
    /// Ring sites.
    pub sites: usize,
    /// Host access link within a site.
    pub access: LinkSpec,
    /// Long-haul segment specs, one per ring position: `segments[i]` is the
    /// pair of links between site `i` and site `(i + 1) % sites`.
    pub segments: Vec<LinkSpec>,
    /// Per-chunk switch latency at every site switch.
    pub switch_latency: Dur,
    /// Output-port buffer capacity in cells; `None` = infinite.
    pub output_buffer_cells: Option<usize>,
}

impl WanRingParams {
    fn ring(nodes: usize, sites: usize, segment: LinkSpec) -> WanRingParams {
        WanRingParams {
            nodes,
            sites,
            access: LinkSpec::taxi_140(),
            segments: vec![segment; sites],
            switch_latency: Dur::from_micros(20),
            output_buffer_cells: None,
        }
    }

    /// All-OC-48 ring with 2 ms per-segment propagation (regional WAN).
    pub fn oc48_ring(nodes: usize, sites: usize) -> WanRingParams {
        WanRingParams::ring(nodes, sites, LinkSpec::oc48(Dur::from_millis(2)))
    }

    /// All-DS-3 ring with 2 ms per-segment propagation.
    pub fn ds3_ring(nodes: usize, sites: usize) -> WanRingParams {
        WanRingParams::ring(nodes, sites, LinkSpec::ds3(Dur::from_millis(2)))
    }

    /// NYNET-flavoured ring: OC-48 segments with every other segment a
    /// DS-3 — the upstate–downstate mix of backbone grades.
    pub fn mixed_ring(nodes: usize, sites: usize) -> WanRingParams {
        let mut p = WanRingParams::oc48_ring(nodes, sites);
        for (i, seg) in p.segments.iter_mut().enumerate() {
            if i % 2 == 1 {
                *seg = LinkSpec::ds3(Dur::from_millis(2));
            }
        }
        p
    }

    /// Caps every switch output port at `cells` cells of buffering.
    pub fn with_output_buffer(mut self, cells: usize) -> WanRingParams {
        self.output_buffer_cells = Some(cells);
        self
    }

    /// Which site a node lives at.
    pub fn site_of(&self, node: NodeId) -> usize {
        let per = self.nodes.div_ceil(self.sites);
        (node.idx() / per).min(self.sites - 1)
    }
}

/// The wide-area ring fabric.
pub struct WanRingFabric {
    params: WanRingParams,
    uplinks: Vec<Arc<LinkState>>,
    downlinks: Vec<Arc<LinkState>>,
    /// `cw[i]`: site `i` → site `(i + 1) % sites` (clockwise).
    cw: Vec<Arc<LinkState>>,
    /// `ccw[i]`: site `(i + 1) % sites` → site `i` (counter-clockwise).
    ccw: Vec<Arc<LinkState>>,
    overflow_drops: AtomicU64,
}

impl WanRingFabric {
    /// Builds the ring.
    pub fn new(params: WanRingParams) -> WanRingFabric {
        assert!(params.nodes >= 2 && params.sites >= 2);
        assert_eq!(
            params.segments.len(),
            params.sites,
            "one long-haul segment per ring position"
        );
        WanRingFabric {
            uplinks: (0..params.nodes)
                .map(|_| LinkState::new(params.access.clone()))
                .collect(),
            downlinks: (0..params.nodes)
                .map(|_| LinkState::new(params.access.clone()))
                .collect(),
            cw: params
                .segments
                .iter()
                .map(|s| LinkState::new(s.clone()))
                .collect(),
            ccw: params
                .segments
                .iter()
                .map(|s| LinkState::new(s.clone()))
                .collect(),
            overflow_drops: AtomicU64::new(0),
            params,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &WanRingParams {
        &self.params
    }

    /// The host→site-switch link of `node`.
    pub fn uplink(&self, node: NodeId) -> &Arc<LinkState> {
        &self.uplinks[node.idx()]
    }

    /// The site-switch→host link of `node`.
    pub fn downlink(&self, node: NodeId) -> &Arc<LinkState> {
        &self.downlinks[node.idx()]
    }

    /// The clockwise segment leaving site `i` (toward site `i + 1`).
    pub fn segment_cw(&self, i: usize) -> &Arc<LinkState> {
        &self.cw[i]
    }

    /// The counter-clockwise segment entering site `i` (from site `i + 1`).
    pub fn segment_ccw(&self, i: usize) -> &Arc<LinkState> {
        &self.ccw[i]
    }

    /// Chunks dropped to switch output-buffer overflow.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops.load(Ordering::Relaxed)
    }

    /// Chunks lost to scheduled link outages, across all links.
    pub fn flap_losses(&self) -> u64 {
        self.uplinks
            .iter()
            .chain(self.downlinks.iter())
            .chain(self.cw.iter())
            .chain(self.ccw.iter())
            .map(|l| l.flap_losses())
            .sum()
    }

    /// Ring hops (beyond the access pair) for `src` → `dst`, shortest
    /// direction, clockwise on ties — a pure function of the site pair.
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<&Arc<LinkState>> {
        let s = self.params.sites;
        let s_src = self.params.site_of(src);
        let s_dst = self.params.site_of(dst);
        let d_cw = (s_dst + s - s_src) % s;
        let d_ccw = (s_src + s - s_dst) % s;
        let mut hops = Vec::with_capacity(d_cw.min(d_ccw) + 1);
        if d_cw <= d_ccw {
            for k in 0..d_cw {
                hops.push(&self.cw[(s_src + k) % s]);
            }
        } else {
            for k in 0..d_ccw {
                hops.push(&self.ccw[(s_src + s - 1 - k) % s]);
            }
        }
        hops.push(&self.downlinks[dst.idx()]);
        hops
    }
}

impl Fabric for WanRingFabric {
    fn nodes(&self) -> usize {
        self.params.nodes
    }

    fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        depart: SimTime,
    ) -> TransferTiming {
        assert!(src.idx() < self.params.nodes && dst.idx() < self.params.nodes);
        assert_ne!(src, dst, "loopback does not touch the fabric");
        let wire = atm_wire_bytes(payload_bytes);
        let lat = self.params.switch_latency;
        let cap = self.params.output_buffer_cells;
        let up = self.uplinks[src.idx()].enqueue(depart, wire, Dur::ZERO);
        let mut lost = up.lost;
        let mut at = up.arrival + lat;
        for link in self.route(src, dst) {
            if output_buffer_full(link, at, cap) {
                self.overflow_drops.fetch_add(1, Ordering::Relaxed);
                return TransferTiming {
                    first_hop_done: up.end,
                    arrival: at,
                    dropped: true,
                };
            }
            let slot = link.enqueue(at, wire, Dur::ZERO);
            lost |= slot.lost;
            at = slot.arrival + lat;
        }
        TransferTiming {
            first_hop_done: up.end,
            arrival: at - lat,
            dropped: lost,
        }
    }

    fn access_rate(&self, _src: NodeId) -> u64 {
        self.params.access.rate_bps
    }

    fn output_backlog(&self, node: NodeId, now: SimTime) -> Option<u64> {
        Some(self.downlink(node).backlog_bytes(now))
    }

    fn path_down(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        if self.uplinks[src.idx()].is_down(at) {
            return true;
        }
        self.route(src, dst).iter().any(|l| l.is_down(at))
    }

    fn description(&self) -> String {
        let grades: Vec<&str> = self.params.segments.iter().map(|s| s.name).collect();
        format!(
            "WAN ring: {} hosts over {} sites, {} access, segments [{}]",
            self.params.nodes,
            self.params.sites,
            self.params.access.name,
            grades.join(", ")
        )
    }
}

impl SwitchedFabric for WanRingFabric {
    fn uplink_of(&self, node: NodeId) -> &Arc<LinkState> {
        self.uplink(node)
    }

    fn downlink_of(&self, node: NodeId) -> &Arc<LinkState> {
        self.downlink(node)
    }

    fn trunk_links(&self) -> Vec<Arc<LinkState>> {
        let mut v: Vec<Arc<LinkState>> = Vec::new();
        v.extend(self.cw.iter().cloned());
        v.extend(self.ccw.iter().cloned());
        v
    }

    fn overflow_drop_count(&self) -> u64 {
        self.overflow_drops()
    }

    fn flap_loss_count(&self) -> u64 {
        self.flap_losses()
    }
}

/// One deterministic VBR cross-traffic flow: seeded on/off bursts of AAL5
/// chunks booked straight onto the fabric between two (typically extra,
/// non-application) hosts. The generator contends for the same FIFO links
/// as application traffic without producing deliveries, modeling the
/// background video/bulk load the paper's WAN shares its trunks with.
#[derive(Clone, Debug)]
pub struct VbrConfig {
    /// Source host of the flow.
    pub src: NodeId,
    /// Destination host of the flow.
    pub dst: NodeId,
    /// Bytes per booked chunk (one CS-PDU's worth).
    pub chunk_bytes: usize,
    /// Mean ON-period length (actual periods jitter 0.5×–1.5×, seeded).
    pub mean_on: Dur,
    /// Mean OFF-period length (same jitter law).
    pub mean_off: Dur,
    /// The generator stops at this virtual instant; without a horizon an
    /// always-on daemon would keep feeding the event queue forever.
    pub horizon: Dur,
    /// RNG seed; same seed, same burst schedule.
    pub seed: u64,
}

/// Counters for a spawned VBR flow (shared with the running daemon).
pub struct VbrHandle {
    bytes: Arc<AtomicU64>,
    chunks: Arc<AtomicU64>,
}

impl VbrHandle {
    /// Payload bytes booked onto the fabric so far.
    pub fn bytes_offered(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Chunks booked so far.
    pub fn chunks_offered(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }
}

/// Jittered period: uniform 0.5×–1.5× of `mean`.
fn jittered(mean: Dur, rng: &mut SimRng) -> Dur {
    let f = 0.5 + rng.gen_f64();
    Dur::from_ps((mean.as_ps() as f64 * f) as u64)
}

/// Spawns a VBR flow as a sim daemon. During ON periods it books chunks
/// back to back, pacing on the first hop's drain time; during OFF periods
/// it sleeps. All randomness comes from the config's seed, so runs are
/// bit-reproducible.
pub fn spawn_vbr(sim: &Sim, fabric: Arc<dyn Fabric>, cfg: VbrConfig) -> VbrHandle {
    assert_ne!(cfg.src, cfg.dst, "a VBR flow needs two distinct hosts");
    assert!(cfg.chunk_bytes > 0);
    let bytes = Arc::new(AtomicU64::new(0));
    let chunks = Arc::new(AtomicU64::new(0));
    let handle = VbrHandle {
        bytes: Arc::clone(&bytes),
        chunks: Arc::clone(&chunks),
    };
    let name = format!("vbr-{}-{}", cfg.src, cfg.dst);
    sim.spawn_daemon(name, move |ctx| {
        let mut rng = SimRng::new(cfg.seed);
        let end = SimTime::ZERO + cfg.horizon;
        loop {
            if ctx.now() >= end {
                return;
            }
            let on_until = (ctx.now() + jittered(cfg.mean_on, &mut rng)).min(end);
            while ctx.now() < on_until {
                let t = fabric.transfer(cfg.src, cfg.dst, cfg.chunk_bytes, ctx.now());
                bytes.fetch_add(cfg.chunk_bytes as u64, Ordering::Relaxed);
                chunks.fetch_add(1, Ordering::Relaxed);
                ctx.sim().with_tracer(|tr| {
                    tr.count("vbr.chunks", 1);
                    tr.count("vbr.bytes", cfg.chunk_bytes as u64);
                });
                let pace = t.first_hop_done.saturating_since(ctx.now());
                ctx.sleep(if pace.is_zero() {
                    Dur::from_micros(1)
                } else {
                    pace
                });
            }
            if ctx.now() >= end {
                return;
            }
            ctx.sleep(jittered(cfg.mean_off, &mut rng));
        }
    });
    handle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn fat_tree_same_edge_skips_the_core() {
        let f = FatTreeFabric::new(FatTreeParams::campus(16));
        // Hosts 0 and 1 share edge 0: two access hops plus one switch.
        let local = f.transfer(NodeId(0), NodeId(1), 1000, t(0));
        // Hosts 0 and 9 cross edges: two extra trunk hops and switches.
        let remote = f.transfer(NodeId(0), NodeId(9), 1000, t(0));
        assert!(!local.dropped && !remote.dropped);
        assert!(remote.arrival > local.arrival);
    }

    #[test]
    fn fat_tree_core_pick_is_deterministic() {
        let p = FatTreeParams::campus(32);
        assert_eq!(p.core_for(NodeId(0), NodeId(9)), p.core_for(NodeId(0), NodeId(9)));
        assert_eq!(p.core_for(NodeId(0), NodeId(9)), p.core_for(NodeId(9), NodeId(0)));
        assert!(p.core_for(NodeId(0), NodeId(9)) < p.cores);
    }

    #[test]
    fn fat_tree_path_down_follows_the_chosen_core() {
        let f = FatTreeFabric::new(FatTreeParams::campus(32));
        let (src, dst) = (NodeId(0), NodeId(9));
        let c = f.params().core_for(src, dst);
        let e_src = f.params().edge_of(src);
        f.edge_up[e_src][c].schedule_flap(t(0), t(1_000_000));
        assert!(f.path_down(src, dst, t(500)));
        // The other core's links are untouched: a pair routed through it
        // is unaffected.
        let other = NodeId(10); // 0 + 10 picks the other core than 0 + 9
        assert_ne!(f.params().core_for(src, other), c);
        assert!(!f.path_down(src, other, t(500)));
        // Same-edge traffic never touches the cores.
        assert!(!f.path_down(NodeId(0), NodeId(1), t(500)));
    }

    #[test]
    fn ring_routes_shortest_direction() {
        // 4 sites, 2 hosts each. Site 0 → site 1 is one clockwise hop;
        // site 0 → site 3 is one counter-clockwise hop; both beat the
        // 3-hop detour.
        let f = WanRingFabric::new(WanRingParams::oc48_ring(8, 4));
        let one_hop = f.transfer(NodeId(0), NodeId(2), 1000, t(0)); // site 0 → 1
        let back_hop = f.transfer(NodeId(0), NodeId(6), 1000, t(0)); // site 0 → 3
        let two_hop = f.transfer(NodeId(0), NodeId(4), 1000, t(0)); // site 0 → 2
        assert!(!one_hop.dropped && !back_hop.dropped && !two_hop.dropped);
        // Each ring segment adds 2 ms of propagation: the 2-hop path is
        // visibly slower than either 1-hop path.
        assert!(two_hop.arrival > one_hop.arrival + Dur::from_millis(1));
        assert!(two_hop.arrival > back_hop.arrival + Dur::from_millis(1));
    }

    #[test]
    fn ring_path_down_tracks_the_route() {
        let f = WanRingFabric::new(WanRingParams::mixed_ring(8, 4));
        // Sever the clockwise segment out of site 0: site 0 → site 1
        // traffic is partitioned, site 0 → site 3 (counter-clockwise)
        // is not.
        f.segment_cw(0).schedule_flap(t(0), t(10_000_000));
        assert!(f.path_down(NodeId(0), NodeId(2), t(100)));
        assert!(!f.path_down(NodeId(0), NodeId(6), t(100)));
        // Intra-site traffic never rides the ring.
        assert!(!f.path_down(NodeId(0), NodeId(1), t(100)));
    }

    #[test]
    fn finite_ring_buffers_drop_on_overflow() {
        // A DS-3 segment fed from a TAXI access link at full blast with a
        // tiny output buffer must shed chunks.
        let f = WanRingFabric::new(WanRingParams::ds3_ring(8, 4).with_output_buffer(32));
        let mut dropped = 0;
        for i in 0..200 {
            let tt = f.transfer(NodeId(0), NodeId(2), 9180, t(i * 10));
            if tt.dropped {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "no overflow under sustained overload");
        assert_eq!(f.overflow_drops(), dropped);
    }

    #[test]
    fn vbr_flow_is_deterministic_and_contends() {
        let run = || {
            let sim = Sim::new();
            let fabric = Arc::new(FatTreeFabric::new(FatTreeParams::campus(16)));
            let vbr = spawn_vbr(
                &sim,
                Arc::<FatTreeFabric>::clone(&fabric) as Arc<dyn Fabric>,
                VbrConfig {
                    src: NodeId(14),
                    dst: NodeId(15),
                    chunk_bytes: 4096,
                    mean_on: Dur::from_millis(2),
                    mean_off: Dur::from_millis(1),
                    horizon: Dur::from_millis(20),
                    seed: 7,
                },
            );
            // A non-daemon thread keeps the sim alive through the horizon.
            sim.spawn("app", move |ctx| ctx.sleep(Dur::from_millis(25)));
            sim.run().assert_clean();
            // The flow really occupied host 14's uplink: the link carried
            // at least the AAL5 wire size of every chunk offered.
            let carried = fabric.uplink(NodeId(14)).bytes_carried();
            assert!(
                carried >= vbr.chunks_offered() * atm_wire_bytes(4096) as u64,
                "uplink carried {carried} B for {} chunks",
                vbr.chunks_offered()
            );
            (vbr.chunks_offered(), vbr.bytes_offered())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same burst schedule");
        assert!(a.0 > 0, "the flow must actually offer traffic");
        assert_eq!(a.1, a.0 * 4096);
    }
}
