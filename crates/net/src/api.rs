//! The "ATM API" surface (paper Figures 6/12): the connection-oriented
//! interface NCS's High Speed Mode is written against, in the style of
//! FORE's circa-1994 host API — open a virtual circuit to a peer, send and
//! receive whole AAL5 PDUs on it, close it.
//!
//! [`VcTable`] owns VPI/VCI allocation (VCIs 0–31 are reserved by ITU-T
//! I.361 for signaling and OAM); [`AtmApi`] binds a table to a node's
//! transport endpoint and performs the actual circuit-filtered sends and
//! receives over any [`Network`] (normally an
//! [`crate::stack::AtmApiNet`]).

use bytes::Bytes;
use ncs_sim::{Ctx, SimChannel};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::fabric::NodeId;
use crate::stack::{BlockingWait, Delivery, Network};

/// First VCI available to user circuits (below this: reserved).
pub const FIRST_USER_VCI: u16 = 32;

/// Traffic class requested at circuit setup (descriptive: the simulation's
/// fabrics serve FIFO, but the class rides in the handle for QOS-aware
/// layers like NCS's flow-control threads).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficClass {
    /// Constant bit rate (the VOD class of the paper's Figure 5).
    Cbr,
    /// Variable bit rate.
    Vbr,
    /// Unspecified / best effort (bulk data).
    Ubr,
}

/// An open virtual circuit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vc {
    /// Local endpoint.
    pub local: NodeId,
    /// Remote endpoint.
    pub remote: NodeId,
    /// Circuit identifier (shared by both directions in this API).
    pub vci: u16,
}

/// Errors from the circuit layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AtmApiError {
    /// All VCIs toward that destination are in use.
    NoVcisLeft,
    /// Operation on a circuit that is not open.
    NotOpen,
    /// PDU exceeds what one AAL5 CS-PDU can carry; callers must chunk
    /// (NCS's I/O-buffer pool does this above the API).
    PduTooLarge,
}

impl std::fmt::Display for AtmApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AtmApiError::NoVcisLeft => write!(f, "no VCIs left"),
            AtmApiError::NotOpen => write!(f, "circuit not open"),
            AtmApiError::PduTooLarge => write!(
                f,
                "PDU exceeds the AAL5 maximum of {} bytes",
                crate::aal5::MAX_PDU
            ),
        }
    }
}

impl std::error::Error for AtmApiError {}

/// Per-node VCI allocation state.
#[derive(Default)]
pub struct VcTable {
    /// Next candidate VCI per remote node.
    next: BTreeMap<NodeId, u16>,
    /// Open circuits and their traffic class.
    open: BTreeMap<Vc, TrafficClass>,
}

impl VcTable {
    /// Creates an empty table.
    pub fn new() -> VcTable {
        VcTable::default()
    }

    /// Allocates a VCI toward `remote`.
    pub fn allocate(
        &mut self,
        local: NodeId,
        remote: NodeId,
        class: TrafficClass,
    ) -> Result<Vc, AtmApiError> {
        let next = self.next.entry(remote).or_insert(FIRST_USER_VCI);
        let start = *next;
        loop {
            let vci = *next;
            *next = next.checked_add(1).unwrap_or(FIRST_USER_VCI);
            if *next == 0 {
                *next = FIRST_USER_VCI;
            }
            let vc = Vc { local, remote, vci };
            if let std::collections::btree_map::Entry::Vacant(e) = self.open.entry(vc) {
                e.insert(class);
                return Ok(vc);
            }
            if *next == start {
                return Err(AtmApiError::NoVcisLeft);
            }
        }
    }

    /// Releases a circuit.
    pub fn release(&mut self, vc: Vc) -> Result<(), AtmApiError> {
        self.open
            .remove(&vc)
            .map(|_| ())
            .ok_or(AtmApiError::NotOpen)
    }

    /// Traffic class of an open circuit.
    pub fn class_of(&self, vc: Vc) -> Option<TrafficClass> {
        self.open.get(&vc).copied()
    }

    /// Number of open circuits.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

/// One node's ATM API endpoint.
pub struct AtmApi {
    node: NodeId,
    net: Arc<dyn Network>,
    table: Mutex<VcTable>,
    inbox: SimChannel<Delivery>,
    /// PDUs received for circuits other than the one currently asked for.
    stash: Mutex<VecDeque<(u16, NodeId, Bytes)>>,
}

impl AtmApi {
    /// Binds the API to `node` on `net`.
    pub fn bind(node: NodeId, net: Arc<dyn Network>) -> AtmApi {
        AtmApi {
            node,
            net: Arc::clone(&net),
            table: Mutex::new(VcTable::new()),
            inbox: net.inbox(node),
            stash: Mutex::new(VecDeque::new()),
        }
    }

    /// Opens a circuit to `remote` (`atm_open`). Both peers must open the
    /// same VCI to converse; allocation order is deterministic, so
    /// symmetric code gets matching circuits.
    pub fn open(&self, remote: NodeId, class: TrafficClass) -> Result<Vc, AtmApiError> {
        self.table.lock().allocate(self.node, remote, class)
    }

    /// Closes a circuit (`atm_close`).
    pub fn close(&self, vc: Vc) -> Result<(), AtmApiError> {
        self.table.lock().release(vc)
    }

    /// Sends one PDU on a circuit (`atm_send`). Blocks the calling green
    /// thread for the sender-side costs of the underlying stack.
    pub fn send(&self, ctx: &Ctx, vc: Vc, pdu: Bytes) -> Result<(), AtmApiError> {
        if pdu.len() > crate::aal5::MAX_PDU {
            return Err(AtmApiError::PduTooLarge);
        }
        if self.table.lock().class_of(vc).is_none() {
            return Err(AtmApiError::NotOpen);
        }
        self.net.send(
            ctx,
            &BlockingWait,
            self.node,
            vc.remote,
            u64::from(vc.vci),
            pdu,
        );
        Ok(())
    }

    /// Receives the next PDU on a circuit (`atm_recv`), blocking until one
    /// arrives. PDUs for other circuits are buffered meanwhile.
    pub fn recv(&self, ctx: &Ctx, vc: Vc) -> Result<Bytes, AtmApiError> {
        if self.table.lock().class_of(vc).is_none() {
            return Err(AtmApiError::NotOpen);
        }
        loop {
            {
                let mut stash = self.stash.lock();
                if let Some(pos) = stash
                    .iter()
                    .position(|(vci, from, _)| *vci == vc.vci && *from == vc.remote)
                {
                    return Ok(stash.remove(pos).unwrap().2);
                }
            }
            let d = self.inbox.recv(ctx).expect("ATM inbox closed");
            ctx.sleep(self.net.recv_pickup_cost(self.node, d.payload.len()));
            self.stash
                .lock()
                .push_back((d.tag as u16, d.src, d.payload));
        }
    }

    /// Open circuit count (diagnostics).
    pub fn open_count(&self) -> usize {
        self.table.lock().open_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::IdealFabric;
    use crate::host::HostParams;
    use crate::stack::{AtmApiNet, AtmApiParams};
    use ncs_sim::{Dur, Sim};

    fn api_pair() -> (Arc<AtmApi>, Arc<AtmApi>) {
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(5)));
        let hosts = vec![HostParams::test_fast(); 2];
        let net: Arc<dyn Network> =
            Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()));
        (
            Arc::new(AtmApi::bind(NodeId(0), Arc::clone(&net))),
            Arc::new(AtmApi::bind(NodeId(1), net)),
        )
    }

    #[test]
    fn vci_allocation_skips_reserved_range() {
        let mut t = VcTable::new();
        let vc = t.allocate(NodeId(0), NodeId(1), TrafficClass::Ubr).unwrap();
        assert!(vc.vci >= FIRST_USER_VCI);
        let vc2 = t.allocate(NodeId(0), NodeId(1), TrafficClass::Cbr).unwrap();
        assert_ne!(vc.vci, vc2.vci);
        assert_eq!(t.class_of(vc2), Some(TrafficClass::Cbr));
        assert_eq!(t.open_count(), 2);
    }

    #[test]
    fn release_frees_and_double_release_errors() {
        let mut t = VcTable::new();
        let vc = t.allocate(NodeId(0), NodeId(1), TrafficClass::Vbr).unwrap();
        assert_eq!(t.release(vc), Ok(()));
        assert_eq!(t.release(vc), Err(AtmApiError::NotOpen));
    }

    #[test]
    fn pdu_roundtrip_over_circuit() {
        let sim = Sim::new();
        let (a, b) = api_pair();
        let a2 = Arc::clone(&a);
        sim.spawn("a", move |ctx| {
            let vc = a2.open(NodeId(1), TrafficClass::Ubr).unwrap();
            a2.send(ctx, vc, Bytes::from_static(b"over the circuit"))
                .unwrap();
            let reply = a2.recv(ctx, vc).unwrap();
            assert_eq!(&reply[..], b"ack");
            a2.close(vc).unwrap();
            assert_eq!(a2.open_count(), 0);
        });
        sim.spawn("b", move |ctx| {
            let vc = b.open(NodeId(0), TrafficClass::Ubr).unwrap();
            let pdu = b.recv(ctx, vc).unwrap();
            assert_eq!(&pdu[..], b"over the circuit");
            b.send(ctx, vc, Bytes::from_static(b"ack")).unwrap();
        });
        sim.run().assert_clean();
    }

    #[test]
    fn circuits_demultiplex() {
        // Two circuits between the same pair: PDUs never cross streams.
        let sim = Sim::new();
        let (a, b) = api_pair();
        let a2 = Arc::clone(&a);
        sim.spawn("a", move |ctx| {
            let vc1 = a2.open(NodeId(1), TrafficClass::Cbr).unwrap();
            let vc2 = a2.open(NodeId(1), TrafficClass::Ubr).unwrap();
            // Interleave sends on both circuits.
            for i in 0..5u8 {
                a2.send(ctx, vc2, Bytes::from(vec![100 + i])).unwrap();
                a2.send(ctx, vc1, Bytes::from(vec![i])).unwrap();
            }
        });
        sim.spawn("b", move |ctx| {
            let vc1 = b.open(NodeId(0), TrafficClass::Cbr).unwrap();
            let vc2 = b.open(NodeId(0), TrafficClass::Ubr).unwrap();
            // Drain vc1 first even though vc2 traffic arrives interleaved.
            for i in 0..5u8 {
                assert_eq!(b.recv(ctx, vc1).unwrap()[0], i);
            }
            for i in 0..5u8 {
                assert_eq!(b.recv(ctx, vc2).unwrap()[0], 100 + i);
            }
        });
        sim.run().assert_clean();
    }

    #[test]
    fn oversize_pdu_rejected_at_api() {
        let sim = Sim::new();
        let (a, _b) = api_pair();
        sim.spawn("a", move |ctx| {
            let vc = a.open(NodeId(1), TrafficClass::Ubr).unwrap();
            let too_big = Bytes::from(vec![0u8; crate::aal5::MAX_PDU + 1]);
            assert_eq!(a.send(ctx, vc, too_big), Err(AtmApiError::PduTooLarge));
        });
        sim.run().assert_clean();
    }

    #[test]
    fn send_on_closed_circuit_rejected() {
        let sim = Sim::new();
        let (a, _b) = api_pair();
        sim.spawn("a", move |ctx| {
            let vc = a.open(NodeId(1), TrafficClass::Ubr).unwrap();
            a.close(vc).unwrap();
            assert_eq!(a.send(ctx, vc, Bytes::new()), Err(AtmApiError::NotOpen));
        });
        sim.run().assert_clean();
    }
}
