//! CRC algorithms used by the ATM protocol stack.
//!
//! * **CRC-8 HEC** — ITU-T I.432 header error control: polynomial
//!   `x^8 + x^2 + x + 1` (0x07), with the 0x55 coset added to the remainder.
//! * **CRC-10** — AAL3/4 per-cell payload check: polynomial
//!   `x^10 + x^9 + x^5 + x^4 + x + 1` (0x233 in 10-bit notation).
//! * **CRC-32** — AAL5 CS-PDU trailer check: the IEEE 802.3 polynomial in
//!   MSB-first (non-reflected) form with init/xorout all-ones, i.e. the
//!   "CRC-32/BZIP2" parameterization, which is what I.363.5 specifies.
//!
//! All three are implemented bit-serially from the defining polynomial (no
//! tables): they run at simulation-setup rates only, and the transparent
//! form is easy to check against published vectors.

/// Computes the ATM Header Error Control byte over the first four header
/// bytes (ITU-T I.432: CRC-8 remainder plus the 0x55 coset).
pub fn hec(header4: &[u8; 4]) -> u8 {
    let mut crc: u8 = 0;
    for &byte in header4 {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc ^ 0x55
}

/// Verifies a 5-byte cell header's HEC field.
pub fn hec_ok(header5: &[u8; 5]) -> bool {
    hec(&[header5[0], header5[1], header5[2], header5[3]]) == header5[4]
}

/// CRC-10 over `data` (AAL3/4 SAR-PDU check), MSB-first, init 0, no final
/// XOR.
pub fn crc10(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &byte in data {
        crc ^= u16::from(byte) << 2; // align byte to the top of 10 bits
        for _ in 0..8 {
            crc = if crc & 0x200 != 0 {
                ((crc << 1) ^ 0x233) & 0x3FF
            } else {
                (crc << 1) & 0x3FF
            };
        }
    }
    crc
}

/// CRC-32 as used by AAL5 (MSB-first, poly 0x04C11DB7, init 0xFFFF_FFFF,
/// final complement).
pub fn crc32_aal5(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte) << 24;
        for _ in 0..8 {
            crc = if crc & 0x8000_0000 != 0 {
                (crc << 1) ^ 0x04C1_1DB7
            } else {
                crc << 1
            };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: &[u8] = b"123456789";

    #[test]
    fn hec_of_zero_header_is_coset() {
        // CRC-8 of all-zero input is 0; the transmitted HEC is the 0x55 coset.
        assert_eq!(hec(&[0, 0, 0, 0]), 0x55);
    }

    #[test]
    fn hec_roundtrip_and_detection() {
        let hdr4 = [0x12, 0x34, 0x56, 0x78];
        let h = hec(&hdr4);
        let full = [hdr4[0], hdr4[1], hdr4[2], hdr4[3], h];
        assert!(hec_ok(&full));
        // Any single-bit flip in the protected bytes must be detected
        // (CRC-8 detects all single-bit errors).
        for byte in 0..4 {
            for bit in 0..8 {
                let mut bad = full;
                bad[byte] ^= 1 << bit;
                assert!(!hec_ok(&bad), "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn crc10_check_vector() {
        // CRC-10/ATM catalogue value for "123456789".
        assert_eq!(crc10(CHECK), 0x199);
    }

    #[test]
    fn crc10_detects_single_bit_errors() {
        let mut data = *b"hello atm world, 44 byte sar payload....xyz";
        let good = crc10(&data);
        for i in 0..data.len() {
            data[i] ^= 0x10;
            assert_ne!(crc10(&data), good, "flip at byte {i} undetected");
            data[i] ^= 0x10;
        }
    }

    #[test]
    fn crc32_check_vector() {
        // CRC-32/BZIP2 catalogue value for "123456789".
        assert_eq!(crc32_aal5(CHECK), 0xFC89_1918);
    }

    #[test]
    fn crc32_empty_input() {
        // init ^ final-complement with no data: !0xFFFFFFFF = 0.
        assert_eq!(crc32_aal5(&[]), 0);
    }

    #[test]
    fn crc32_detects_swaps() {
        let a = crc32_aal5(b"abcd");
        let b = crc32_aal5(b"abdc");
        assert_ne!(a, b);
    }
}
