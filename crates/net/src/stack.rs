//! Transport stacks: how a process's bytes become wire traffic.
//!
//! Two stacks implement the same [`Network`] interface over any [`Fabric`]:
//!
//! * [`TcpNet`] — the Normal Speed Mode / baseline path: Unix sockets and
//!   TCP/IP. Syscall entry, per-segment protocol processing, the 5-access
//!   datapath of Figure 3, MSS segmentation, and send-socket-buffer pacing.
//! * [`AtmApiNet`] — NCS High Speed Mode (the paper's "second approach"):
//!   traps instead of syscalls, the 3-access mmap'ed-buffer datapath, and
//!   the multiple-I/O-buffer pipeline of Figure 2 in which the host fills
//!   buffer *k+1* while the SBA-200 drains buffer *k*.
//!
//! How *wait* time (wire pacing, buffer availability) is spent is the
//! caller's policy: a Unix process blocks in the kernel ([`BlockingWait`]),
//! while NCS's user-level runtime can hand the CPU to a sibling thread
//! (ncs-mts provides that policy). CPU time (copies, protocol processing)
//! is always charged to the calling thread — no runtime can overlap it.

use bytes::Bytes;
use ncs_sim::{Ctx, Dur, SimChannel, SimTime};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::aal5;
use crate::fabric::{Fabric, NodeId};
use crate::host::{DatapathKind, HostParams};

/// How a transport spends non-CPU wait time.
pub trait WaitPolicy: Send + Sync {
    /// Waits `d` of virtual time on behalf of the calling thread.
    fn wait(&self, ctx: &Ctx, d: Dur);
}

/// Unix semantics: the wait blocks the whole process (plain sleep).
pub struct BlockingWait;

impl WaitPolicy for BlockingWait {
    fn wait(&self, ctx: &Ctx, d: Dur) {
        ctx.sleep(d);
    }
}

/// A message as it lands in a destination inbox.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Caller-defined tag (message type, thread routing, …).
    pub tag: u64,
    /// The actual payload bytes.
    pub payload: Bytes,
    /// When the sender entered the transport.
    pub sent_at: SimTime,
    /// When the last bit (plus receive-side NIC work) arrived.
    pub arrived_at: SimTime,
}

/// A transport stack bound to a fabric: the interface message-passing
/// layers (p4, NCS_MPS) build on.
pub trait Network: Send + Sync + 'static {
    /// Number of hosts.
    fn nodes(&self) -> usize;

    /// Host model of `node`.
    fn host(&self, node: NodeId) -> &HostParams;

    /// Transfers `payload` from `src` to `dst`. Blocks the calling green
    /// thread for all sender-side CPU work; non-CPU waits go through
    /// `policy`. Delivery into `dst`'s inbox happens asynchronously at the
    /// modeled arrival time.
    fn send(
        &self,
        ctx: &Ctx,
        policy: &dyn WaitPolicy,
        src: NodeId,
        dst: NodeId,
        tag: u64,
        payload: Bytes,
    );

    /// The arrival queue for `node`.
    fn inbox(&self, node: NodeId) -> SimChannel<Delivery>;

    /// Receiver-side CPU cost to move an arrived message of `bytes` into
    /// the application (charged by the caller when it picks the message up).
    fn recv_pickup_cost(&self, node: NodeId, bytes: usize) -> Dur;

    /// Additional receiver-side latency paid only by *blocking* receivers:
    /// the message layer's large-message protocol hands data over in
    /// fragments, and a process that sleeps in the kernel between fragments
    /// eats a scheduler wakeup for each one. A polling receiver (NCS's
    /// receive system thread) avoids this entirely — the "reduce operating
    /// system overhead" claim of the paper's Section 1. Defaults to zero.
    fn recv_reaction_cost(&self, node: NodeId, bytes: usize) -> Dur {
        let _ = (node, bytes);
        Dur::ZERO
    }

    /// Whether every route from `src` to `dst` is severed at `now` (see
    /// [`Fabric::path_down`]). Error-control layers use this to distinguish
    /// a partition (fail fast with an exception) from ordinary loss (retry).
    /// Default: never partitioned.
    fn peer_unreachable(&self, src: NodeId, dst: NodeId, now: SimTime) -> bool {
        let _ = (src, dst, now);
        false
    }

    /// Human-readable summary.
    fn description(&self) -> String;
}

/// TCP/IP header bytes per segment.
pub const TCP_IP_HEADERS: usize = 40;

/// Parameters of the socket/TCP/IP stack.
#[derive(Clone, Debug)]
pub struct TcpParams {
    /// Maximum segment size (application bytes per packet).
    pub mss: usize,
    /// Send socket buffer: how far the CPU may run ahead of the first-hop
    /// wire before `write` blocks.
    pub sockbuf: usize,
    /// Message-passing-layer CPU cost per byte, in cycles, charged on both
    /// sides in addition to the kernel datapath copies. This models the p4
    /// layer's per-byte work — XDR data conversion, user-level buffering
    /// and bookkeeping — and is the dominant term on 1990s hosts. Fitted
    /// against the paper's measured p4 columns (see `EXPERIMENTS.md`
    /// §Calibration); the HSM stack has no analogue, which is precisely
    /// the paper's motivation for NCS's second MPS implementation.
    pub marshal_cycles_per_byte: u64,
    /// Sender-side *blocking wait* per byte: TCP window/ack stalls and
    /// shared-medium congestion, during which the sending process sits in
    /// the kernel rather than burning CPU. A single-threaded p4 process
    /// loses this time outright; NCS spends it through its MTS-aware wait
    /// policy, so sibling threads compute through it — this is the
    /// mechanically hideable share of the paper's communication overhead.
    /// Fitted per testbed (see `EXPERIMENTS.md` §Calibration).
    pub stall_per_byte: Dur,
    /// Per-byte receiver reaction latency charged to blocking receivers
    /// (see [`Network::recv_reaction_cost`]): p4's fragment-at-a-time
    /// big-message protocol multiplied by select()-wakeup latency. Fitted
    /// per testbed.
    pub blocking_reaction_per_byte: Dur,
    /// Messages at or below this size travel in one fragment and pay no
    /// blocking-receiver reaction (p4's big-message protocol only engages
    /// beyond its internal fragment size).
    pub reaction_threshold: usize,
    /// At most this many bytes are liable for reaction latency per message:
    /// once the protocol window opens, bulk data streams without further
    /// blocking round trips.
    pub reaction_cap: usize,
    /// Fixed end-to-end delivery latency added to every message's arrival
    /// (select / queue traversal / time-shared scheduling on a 1990s
    /// workstation). Both runtimes experience it; it is hidden only where
    /// the application has independent work. Fitted against the
    /// small-message workload (Table 3).
    pub per_message_latency: Dur,
}

impl TcpParams {
    /// Classic Ethernet: 1460-byte MSS, 16 KB send buffer (SunOS-era), p4
    /// overheads fitted to Table 1's Ethernet column.
    pub fn ethernet() -> TcpParams {
        TcpParams {
            mss: 1460,
            sockbuf: 16 * 1024,
            marshal_cycles_per_byte: 20,
            stall_per_byte: Dur::from_nanos(1200),
            blocking_reaction_per_byte: Dur::from_nanos(15000),
            reaction_threshold: 8 * 1024,
            reaction_cap: 64 * 1024,
            per_message_latency: Dur::from_millis(55),
        }
    }

    /// IP over ATM (RFC 1577 era): 9180-byte MTU, larger send buffer,
    /// overheads fitted to Table 1's NYNET column.
    pub fn ip_over_atm() -> TcpParams {
        TcpParams {
            mss: 9140,
            sockbuf: 48 * 1024,
            marshal_cycles_per_byte: 10,
            stall_per_byte: Dur::from_nanos(400),
            blocking_reaction_per_byte: Dur::from_nanos(11000),
            reaction_threshold: 8 * 1024,
            reaction_cap: 64 * 1024,
            per_message_latency: Dur::from_millis(30),
        }
    }

    /// PVM-style transport over IP-over-ATM: PVM's default route relays
    /// every message through the local and remote pvmd daemons, adding an
    /// extra store-and-forward hop (double the delivery latency) and an
    /// extra user-level copy on each side. The paper's conclusion names
    /// "NCS_MTS/p4 ... with p4 replaced by PVM" as work in progress; this
    /// profile lets the experiments answer it.
    pub fn pvm_ip_over_atm() -> TcpParams {
        let base = TcpParams::ip_over_atm();
        TcpParams {
            marshal_cycles_per_byte: base.marshal_cycles_per_byte * 2,
            per_message_latency: base.per_message_latency.times(2),
            ..base
        }
    }

    /// PVM-style transport over Ethernet (see
    /// [`TcpParams::pvm_ip_over_atm`]).
    pub fn pvm_ethernet() -> TcpParams {
        let base = TcpParams::ethernet();
        TcpParams {
            marshal_cycles_per_byte: base.marshal_cycles_per_byte * 2,
            per_message_latency: base.per_message_latency.times(2),
            ..base
        }
    }

    /// A stack with no message-layer per-byte tax (unit tests that want
    /// kernel-datapath-dominated behaviour).
    pub fn raw(mss: usize, sockbuf: usize) -> TcpParams {
        TcpParams {
            mss,
            sockbuf,
            marshal_cycles_per_byte: 0,
            stall_per_byte: Dur::ZERO,
            blocking_reaction_per_byte: Dur::ZERO,
            reaction_threshold: usize::MAX,
            reaction_cap: 0,
            per_message_latency: Dur::ZERO,
        }
    }
}

/// The Normal Speed Mode stack.
pub struct TcpNet<F: Fabric> {
    fabric: Arc<F>,
    hosts: Vec<HostParams>,
    params: TcpParams,
    inboxes: Vec<SimChannel<Delivery>>,
}

impl<F: Fabric> TcpNet<F> {
    /// Binds a TCP stack with per-node `hosts` onto `fabric`.
    pub fn new(fabric: Arc<F>, hosts: Vec<HostParams>, params: TcpParams) -> TcpNet<F> {
        assert_eq!(hosts.len(), fabric.nodes(), "one host model per node");
        assert!(params.mss > 0 && params.sockbuf >= params.mss);
        let inboxes = (0..hosts.len())
            .map(|i| SimChannel::unbounded(format!("tcp-inbox-{i}")))
            .collect();
        TcpNet {
            fabric,
            hosts,
            params,
            inboxes,
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &F {
        &self.fabric
    }

    /// Segments needed for `bytes` of payload.
    pub fn segments(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.params.mss).max(1)
    }
}

impl<F: Fabric> Network for TcpNet<F> {
    fn nodes(&self) -> usize {
        self.hosts.len()
    }

    fn host(&self, node: NodeId) -> &HostParams {
        &self.hosts[node.idx()]
    }

    fn send(
        &self,
        ctx: &Ctx,
        policy: &dyn WaitPolicy,
        src: NodeId,
        dst: NodeId,
        tag: u64,
        payload: Bytes,
    ) {
        let h = &self.hosts[src.idx()];
        let sent_at = ctx.now();
        ctx.sleep(h.syscall);
        let len = payload.len();
        let nseg = self.segments(len);
        let drain_budget = Dur::for_bytes(self.params.sockbuf, self.fabric.access_rate(src));
        let mut last_arrival = ctx.now();
        let mut lost = false;
        for i in 0..nseg {
            let lo = i * self.params.mss;
            let seg = len.saturating_sub(lo).min(self.params.mss);
            // Data-touching costs: message-layer marshalling, the 5-access
            // kernel datapath copy (incl. checksum), and fixed per-packet
            // protocol work.
            ctx.sleep(
                h.cycles(seg as u64 * self.params.marshal_cycles_per_byte)
                    + h.copy_time(seg, DatapathKind::SocketTcp)
                    + h.tcp_per_packet,
            );
            // Window/ack stalls: blocking wait, hideable by an MTS-aware
            // wait policy.
            if !self.params.stall_per_byte.is_zero() {
                policy.wait(ctx, self.params.stall_per_byte.times(seg.max(1) as u64));
            }
            let timing = self
                .fabric
                .transfer(src, dst, seg + TCP_IP_HEADERS, ctx.now());
            lost |= timing.dropped;
            last_arrival = last_arrival.max(timing.arrival);
            // Observability: depth of the switch output port feeding dst,
            // sampled right after this segment was booked onto it.
            if let Some(b) = self.fabric.output_backlog(dst, ctx.now()) {
                ctx.sim().with_metrics(|m| {
                    m.gauge_set("switch.out_bytes", dst.0, ctx.now(), b as i64)
                });
            }
            // Send-buffer pacing: the process may queue at most `sockbuf`
            // bytes ahead of the wire; beyond that, write() blocks.
            let ahead = timing.first_hop_done.saturating_since(ctx.now());
            if ahead > drain_budget {
                policy.wait(ctx, ahead - drain_budget);
            }
        }
        let last_arrival = last_arrival + self.params.per_message_latency;
        ctx.sim().with_tracer(|tr| {
            tr.count("tcp.msgs", 1);
            tr.count("tcp.bytes", len as u64);
            tr.count("tcp.segments", nseg as u64);
        });
        // A fabric-level loss (link flap, switch-buffer overflow) kills the
        // message in flight: the wire time was spent but nothing arrives.
        // Recovery is the error-control layer's job.
        if lost {
            ctx.sim().with_tracer(|tr| tr.count("tcp.fabric_drops", 1));
            return;
        }
        let inbox = self.inboxes[dst.idx()].clone();
        let msg = Delivery {
            src,
            dst,
            tag,
            payload,
            sent_at,
            arrived_at: last_arrival,
        };
        ctx.sim().schedule_at(last_arrival, move |sim| {
            // Destinations that have shut down simply drop late traffic,
            // like a closed socket.
            let _ = inbox.offer(sim, msg);
        });
    }

    fn inbox(&self, node: NodeId) -> SimChannel<Delivery> {
        self.inboxes[node.idx()].clone()
    }

    fn recv_pickup_cost(&self, node: NodeId, bytes: usize) -> Dur {
        let h = &self.hosts[node.idx()];
        let nseg = self.segments(bytes) as u64;
        h.syscall
            + h.interrupt.times(nseg)
            + h.cycles(bytes as u64 * self.params.marshal_cycles_per_byte)
            + h.copy_time(bytes, DatapathKind::SocketTcp)
    }

    fn recv_reaction_cost(&self, node: NodeId, bytes: usize) -> Dur {
        let _ = node;
        let liable = bytes
            .saturating_sub(self.params.reaction_threshold)
            .min(self.params.reaction_cap);
        self.params.blocking_reaction_per_byte.times(liable as u64)
    }

    fn peer_unreachable(&self, src: NodeId, dst: NodeId, now: SimTime) -> bool {
        self.fabric.path_down(src, dst, now)
    }

    fn description(&self) -> String {
        format!(
            "TCP/IP (mss {}, sockbuf {}) over {}",
            self.params.mss,
            self.params.sockbuf,
            self.fabric.description()
        )
    }
}

/// How the receive side turns arriving cells into kernel events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellEventMode {
    /// One kernel event per arriving cell — the naive Approach-1 receiver
    /// in which every cell raises its own interrupt/event. Timestamps come
    /// from the same arithmetic [`crate::fabric::TrainTiming`] geometry, so
    /// the two modes agree on *when* data lands; this one just makes the
    /// kernel pay per cell. Kept as the measurable baseline for
    /// `xp_pipeline`.
    PerCell,
    /// One kernel event per cell *train* (one buffer's worth of cells):
    /// the Approach-2 pipeline. Per-cell instants still exist arithmetically
    /// but the event queue sees a single entry per train.
    Train,
}

/// Parameters of the High Speed Mode (ATM API) stack.
#[derive(Clone, Debug)]
pub struct AtmApiParams {
    /// Size of each mapped kernel I/O buffer.
    pub buffer_bytes: usize,
    /// Number of I/O buffers per direction (Figure 2's pipeline depth).
    pub num_buffers: usize,
    /// SBA-200 (25 MHz i960) segmentation/reassembly work per cell.
    pub sar_per_cell: Dur,
    /// DMA descriptor setup per buffer handed to the adapter.
    pub dma_setup: Dur,
    /// Receive-side event granularity (default: one event per train).
    pub cell_events: CellEventMode,
}

impl Default for AtmApiParams {
    fn default() -> AtmApiParams {
        AtmApiParams {
            buffer_bytes: 8 * 1024,
            num_buffers: 2,
            sar_per_cell: Dur::from_nanos(800),
            dma_setup: Dur::from_micros(40),
            cell_events: CellEventMode::Train,
        }
    }
}

/// Per-node adapter state: when each I/O buffer frees up and when the SAR
/// engine is next idle. All bookkeeping is arithmetic, so waits have known
/// durations and can go through the caller's [`WaitPolicy`].
struct AdapterState {
    /// Completion times of buffers currently in flight (oldest first).
    tx_busy: VecDeque<SimTime>,
    /// When the outbound SAR engine frees up.
    tx_sar_free: SimTime,
    /// When the inbound SAR engine frees up.
    rx_sar_free: SimTime,
}

/// The High Speed Mode stack.
pub struct AtmApiNet<F: Fabric> {
    fabric: Arc<F>,
    hosts: Vec<HostParams>,
    params: AtmApiParams,
    adapters: Vec<Mutex<AdapterState>>,
    inboxes: Vec<SimChannel<Delivery>>,
}

impl<F: Fabric> AtmApiNet<F> {
    /// Binds the ATM API stack onto `fabric`.
    pub fn new(fabric: Arc<F>, hosts: Vec<HostParams>, params: AtmApiParams) -> AtmApiNet<F> {
        assert_eq!(hosts.len(), fabric.nodes(), "one host model per node");
        assert!(params.buffer_bytes > 0 && params.num_buffers > 0);
        assert!(
            params.buffer_bytes + aal5::TRAILER_BYTES <= aal5::MAX_PDU,
            "I/O buffer must fit one AAL5 PDU"
        );
        let adapters = (0..hosts.len())
            .map(|_| {
                Mutex::new(AdapterState {
                    tx_busy: VecDeque::new(),
                    tx_sar_free: SimTime::ZERO,
                    rx_sar_free: SimTime::ZERO,
                })
            })
            .collect();
        let inboxes = (0..hosts.len())
            .map(|i| SimChannel::unbounded(format!("atm-inbox-{i}")))
            .collect();
        AtmApiNet {
            fabric,
            hosts,
            params,
            adapters,
            inboxes,
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &F {
        &self.fabric
    }

    /// The stack parameters.
    pub fn params(&self) -> &AtmApiParams {
        &self.params
    }
}

impl<F: Fabric> Network for AtmApiNet<F> {
    fn nodes(&self) -> usize {
        self.hosts.len()
    }

    fn host(&self, node: NodeId) -> &HostParams {
        &self.hosts[node.idx()]
    }

    fn send(
        &self,
        ctx: &Ctx,
        policy: &dyn WaitPolicy,
        src: NodeId,
        dst: NodeId,
        tag: u64,
        payload: Bytes,
    ) {
        let h = &self.hosts[src.idx()];
        let sent_at = ctx.now();
        // Control transfer into NCS's mapped-buffer path: a trap, not a
        // read/write syscall.
        ctx.sleep(h.trap);
        let len = payload.len();
        let n_chunks = len.div_ceil(self.params.buffer_bytes).max(1);
        let mut last_arrival = ctx.now();
        let mut lost = false;
        for i in 0..n_chunks {
            let lo = i * self.params.buffer_bytes;
            let chunk = len.saturating_sub(lo).min(self.params.buffer_bytes);
            // Wait for a free I/O buffer (pipeline depth = num_buffers).
            let buffer_free = {
                let mut a = self.adapters[src.idx()].lock();
                while a.tx_busy.front().is_some_and(|&t| t <= ctx.now()) {
                    a.tx_busy.pop_front();
                }
                if a.tx_busy.len() >= self.params.num_buffers {
                    a.tx_busy.pop_front()
                } else {
                    None
                }
            };
            if let Some(free_at) = buffer_free {
                let wait = free_at.saturating_since(ctx.now());
                if !wait.is_zero() {
                    policy.wait(ctx, wait);
                }
            }
            // Host fills the mapped buffer: the 3-access datapath.
            ctx.sleep(h.copy_time(chunk, DatapathKind::NcsMapped));
            // The adapter SARs and DMAs the buffer, then the cells ride the
            // fabric. The buffer is reusable once its cells cleared the
            // first hop.
            let cells = aal5::cells_for_pdu(chunk) as u64;
            ctx.sim().with_tracer(|tr| tr.count("atm.cells", cells));
            let (timing, train, depth) = {
                let mut a = self.adapters[src.idx()].lock();
                let start = ctx.now().max(a.tx_sar_free);
                let nic_done =
                    start + self.params.dma_setup + self.params.sar_per_cell.times(cells);
                a.tx_sar_free = nic_done;
                let (timing, train) = match self.params.cell_events {
                    CellEventMode::Train => {
                        (self.fabric.transfer(src, dst, chunk, nic_done), None)
                    }
                    CellEventMode::PerCell => {
                        let train = self.fabric.transfer_train(
                            src,
                            dst,
                            chunk,
                            cells as usize,
                            crate::cell::CELL_BYTES,
                            nic_done,
                        );
                        (train.whole, Some(train))
                    }
                };
                a.tx_busy.push_back(timing.first_hop_done);
                let depth = a.tx_busy.len();
                (timing, train, depth)
            };
            // Observability: adapter pipeline occupancy (buffers in flight)
            // and switch output-port depth for this destination.
            ctx.sim().with_metrics(|m| {
                m.gauge_set("hsm.tx_busy", src.0, ctx.now(), depth as i64);
            });
            if let Some(b) = self.fabric.output_backlog(dst, ctx.now()) {
                ctx.sim().with_metrics(|m| {
                    m.gauge_set("switch.out_bytes", dst.0, ctx.now(), b as i64)
                });
            }
            lost |= timing.dropped;
            if let Some(train) = train {
                if !timing.dropped {
                    // Approach-1 receiver: each cell raises its own kernel
                    // event at its arithmetic arrival instant. One pooled
                    // self-rearming record carries the whole train — same
                    // per-cell event count, none of the per-cell closures.
                    ctx.sim().schedule_count_train(
                        train.first_arrival(),
                        u32::try_from(train.cells).expect("train too long"),
                        train.cell_gap,
                        "atm.cell_events",
                    );
                }
            }
            // Receive-side reassembly on dst's adapter.
            let rx_done = {
                let mut a = self.adapters[dst.idx()].lock();
                let start = timing.arrival.max(a.rx_sar_free);
                let done = start + self.params.sar_per_cell.times(cells);
                a.rx_sar_free = done;
                done
            };
            last_arrival = last_arrival.max(rx_done);
        }
        ctx.sim().with_tracer(|tr| {
            tr.count("atm.msgs", 1);
            tr.count("atm.bytes", len as u64);
        });
        // Fabric-level loss: the cells never reassemble at the far side.
        if lost {
            ctx.sim().with_tracer(|tr| tr.count("atm.fabric_drops", 1));
            return;
        }
        let inbox = self.inboxes[dst.idx()].clone();
        let msg = Delivery {
            src,
            dst,
            tag,
            payload,
            sent_at,
            arrived_at: last_arrival,
        };
        ctx.sim().schedule_at(last_arrival, move |sim| {
            inbox
                .offer(sim, msg)
                .unwrap_or_else(|_| panic!("unbounded inbox cannot be full"));
        });
    }

    fn inbox(&self, node: NodeId) -> SimChannel<Delivery> {
        self.inboxes[node.idx()].clone()
    }

    fn recv_pickup_cost(&self, node: NodeId, bytes: usize) -> Dur {
        let h = &self.hosts[node.idx()];
        h.trap + h.copy_time(bytes, DatapathKind::NcsMapped)
    }

    fn peer_unreachable(&self, src: NodeId, dst: NodeId, now: SimTime) -> bool {
        self.fabric.path_down(src, dst, now)
    }

    fn description(&self) -> String {
        format!(
            "NCS ATM API ({} x {} B I/O buffers) over {}",
            self.params.num_buffers,
            self.params.buffer_bytes,
            self.fabric.description()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::IdealFabric;
    use ncs_sim::Sim;

    fn fast_hosts(n: usize) -> Vec<HostParams> {
        (0..n).map(|_| HostParams::test_fast()).collect()
    }

    fn run_transfer<N: Network>(net: Arc<N>, bytes: usize) -> (Dur, Dur) {
        // Returns (sender busy time, end-to-end delivery latency).
        let sim = Sim::new();
        let sender_busy = Arc::new(Mutex::new(Dur::ZERO));
        let latency = Arc::new(Mutex::new(Dur::ZERO));
        let sb = Arc::clone(&sender_busy);
        let n2 = Arc::clone(&net);
        sim.spawn("sender", move |ctx| {
            let t0 = ctx.now();
            n2.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                7,
                Bytes::from(vec![0u8; bytes]),
            );
            *sb.lock() = ctx.now().since(t0);
        });
        let lt = Arc::clone(&latency);
        sim.spawn("receiver", move |ctx| {
            let inbox = net.inbox(NodeId(1));
            let msg = inbox.recv(ctx).unwrap();
            assert_eq!(msg.payload.len(), bytes);
            assert_eq!(msg.tag, 7);
            ctx.sleep(net.recv_pickup_cost(NodeId(1), bytes));
            *lt.lock() = ctx.now().since(msg.sent_at);
        });
        sim.run().assert_clean();
        let a = *sender_busy.lock();
        let b = *latency.lock();
        (a, b)
    }

    #[test]
    fn tcp_delivers_payload() {
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(10)));
        let net = Arc::new(TcpNet::new(fabric, fast_hosts(2), TcpParams::ethernet()));
        let (busy, latency) = run_transfer(net, 10_000);
        assert!(busy > Dur::ZERO);
        assert!(latency >= busy);
    }

    #[test]
    fn tcp_segment_count() {
        let fabric = Arc::new(IdealFabric::new(2, Dur::ZERO));
        let net = TcpNet::new(fabric, fast_hosts(2), TcpParams::ethernet());
        assert_eq!(net.segments(0), 1);
        assert_eq!(net.segments(1460), 1);
        assert_eq!(net.segments(1461), 2);
        assert_eq!(net.segments(14_600), 10);
    }

    #[test]
    fn hsm_faster_than_nsm_on_same_fabric() {
        // The Figure-3 + Figure-2 claim: for the same wire, the mapped-buffer
        // path beats the socket path in sender CPU time and latency.
        let hosts = vec![HostParams::sparc_ipx(), HostParams::sparc_ipx()];
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(10)));
        let tcp = Arc::new(TcpNet::new(
            Arc::clone(&fabric),
            hosts.clone(),
            TcpParams::ip_over_atm(),
        ));
        let atm = Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()));
        let (tcp_busy, tcp_lat) = run_transfer(tcp, 64 * 1024);
        let (atm_busy, atm_lat) = run_transfer(atm, 64 * 1024);
        assert!(
            atm_busy < tcp_busy,
            "HSM sender busy {atm_busy} !< NSM {tcp_busy}"
        );
        assert!(atm_lat < tcp_lat, "HSM latency {atm_lat} !< NSM {tcp_lat}");
    }

    #[test]
    fn more_buffers_pipeline_better() {
        // Figure 2: two I/O buffers beat one; the gain saturates.
        let hosts = vec![HostParams::sparc_ipx(), HostParams::sparc_ipx()];
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(5)));
        let mut latencies = Vec::new();
        for num_buffers in [1, 2, 4] {
            let params = AtmApiParams {
                num_buffers,
                ..AtmApiParams::default()
            };
            let net = Arc::new(AtmApiNet::new(Arc::clone(&fabric), hosts.clone(), params));
            let (_, lat) = run_transfer(net, 128 * 1024);
            latencies.push(lat);
        }
        assert!(
            latencies[1] < latencies[0],
            "2 buffers {} !< 1 buffer {}",
            latencies[1],
            latencies[0]
        );
        assert!(latencies[2] <= latencies[1]);
    }

    #[test]
    fn per_cell_mode_pays_one_event_per_cell() {
        // Same payload through both event modes: identical delivery, but
        // the per-cell receiver charges the kernel one event per cell while
        // the train receiver collapses each buffer into a single event.
        let mut events = Vec::new();
        for mode in [CellEventMode::Train, CellEventMode::PerCell] {
            let sim = Sim::new();
            let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(5)));
            let params = AtmApiParams {
                cell_events: mode,
                ..AtmApiParams::default()
            };
            let net = Arc::new(AtmApiNet::new(fabric, fast_hosts(2), params));
            let n2 = Arc::clone(&net);
            sim.spawn("tx", move |ctx| {
                n2.send(
                    ctx,
                    &BlockingWait,
                    NodeId(0),
                    NodeId(1),
                    0,
                    Bytes::from(vec![7u8; 24_000]),
                );
            });
            sim.spawn("rx", move |ctx| {
                let msg = net.inbox(NodeId(1)).recv(ctx).unwrap();
                assert_eq!(msg.payload.len(), 24_000);
                assert!(msg.payload.iter().all(|&b| b == 7));
            });
            let out = sim.run();
            out.assert_clean();
            sim.with_tracer(|tr| {
                let cells = tr.counter("atm.cells");
                let cell_events = tr.counter("atm.cell_events");
                match mode {
                    CellEventMode::Train => assert_eq!(cell_events, 0),
                    CellEventMode::PerCell => assert_eq!(cell_events, cells),
                }
            });
            events.push(out.events);
        }
        // 24 KB ≈ 501 cells: the train path must be far leaner than 1
        // event per cell — the ≥2× Approach-2 bar with huge margin.
        assert!(
            events[0] * 2 <= events[1],
            "train events {} !≤ half of per-cell events {}",
            events[0],
            events[1]
        );
    }

    #[test]
    fn empty_message_still_delivered() {
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(1)));
        let net = Arc::new(TcpNet::new(fabric, fast_hosts(2), TcpParams::ethernet()));
        let (_, latency) = run_transfer(net, 0);
        assert!(latency > Dur::ZERO);
    }

    #[test]
    fn deliveries_keep_payload_content() {
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(1)));
        let net = Arc::new(AtmApiNet::new(
            fabric,
            fast_hosts(2),
            AtmApiParams::default(),
        ));
        let sim = Sim::new();
        let data: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let n2 = Arc::clone(&net);
        sim.spawn("sender", move |ctx| {
            n2.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                1,
                Bytes::from(data),
            );
        });
        sim.spawn("receiver", move |ctx| {
            let msg = net.inbox(NodeId(1)).recv(ctx).unwrap();
            assert_eq!(&msg.payload[..], &expect[..]);
        });
        sim.run().assert_clean();
    }
}

#[cfg(test)]
mod pacing_tests {
    use super::*;
    use crate::ethernet::{EthernetFabric, EthernetParams};
    use ncs_sim::Sim;

    #[test]
    fn send_buffer_paces_cpu_ahead_of_slow_wire() {
        // A fast CPU writing a large message onto slow Ethernet must block
        // in the transport: by completion, the sender can be at most
        // sockbuf ahead of the wire.
        let fabric = Arc::new(EthernetFabric::new(EthernetParams::new(2)));
        let hosts = vec![HostParams::test_fast(); 2];
        let params = TcpParams {
            sockbuf: 8 * 1024,
            ..TcpParams::raw(1460, 8 * 1024)
        };
        let net = Arc::new(TcpNet::new(Arc::clone(&fabric), hosts, params));
        let sim = Sim::new();
        let bytes = 200 * 1024;
        let n2 = Arc::clone(&net);
        let sender_done = Arc::new(Mutex::new(SimTime::ZERO));
        let sd = Arc::clone(&sender_done);
        sim.spawn("tx", move |ctx| {
            n2.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                0,
                Bytes::from(vec![0u8; bytes]),
            );
            *sd.lock() = ctx.now();
        });
        sim.spawn("rx", move |ctx| {
            let _ = net.inbox(NodeId(1)).recv(ctx).unwrap();
        });
        sim.run().assert_clean();
        let done = *sender_done.lock();
        // Wire time for 200 KB ≈ 168 ms at ~9.7 Mb/s effective; the sender
        // must have been paced to within a socket buffer of that.
        let wire_floor = Dur::for_bytes(bytes - 8 * 1024, 10_000_000);
        assert!(
            done.since(SimTime::ZERO) >= wire_floor,
            "sender finished at {done}, ran ahead of the wire"
        );
    }

    #[test]
    fn raw_profile_has_no_message_layer_costs() {
        let p = TcpParams::raw(1460, 16 * 1024);
        assert_eq!(p.marshal_cycles_per_byte, 0);
        assert!(p.stall_per_byte.is_zero());
        assert!(p.per_message_latency.is_zero());
        assert_eq!(p.reaction_cap, 0);
    }

    #[test]
    fn reaction_cost_thresholds_and_caps() {
        let fabric = Arc::new(crate::fabric::IdealFabric::new(2, Dur::ZERO));
        let hosts = vec![HostParams::test_fast(); 2];
        let net = TcpNet::new(fabric, hosts, TcpParams::ethernet());
        let small = net.recv_reaction_cost(NodeId(0), 4 * 1024);
        assert!(small.is_zero(), "below threshold: {small}");
        let medium = net.recv_reaction_cost(NodeId(0), 40 * 1024);
        let large = net.recv_reaction_cost(NodeId(0), 10 << 20);
        assert!(!medium.is_zero());
        assert!(large > medium);
        // Cap: liable bytes never exceed reaction_cap.
        let capped = Dur::from_nanos(15_000).times(64 * 1024);
        assert_eq!(large, capped);
    }
}

#[cfg(test)]
mod counter_tests {
    use super::*;
    use crate::fabric::IdealFabric;
    use ncs_sim::Sim;

    #[test]
    fn transport_counters_track_traffic() {
        let sim = Sim::new();
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(1)));
        let hosts = vec![HostParams::test_fast(); 2];
        let tcp = Arc::new(TcpNet::new(
            Arc::clone(&fabric),
            hosts.clone(),
            TcpParams::raw(1460, 16 * 1024),
        ));
        let atm = Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()));
        let t2 = Arc::clone(&tcp);
        let a2 = Arc::clone(&atm);
        sim.spawn("tx", move |ctx| {
            t2.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                0,
                Bytes::from(vec![0; 3000]),
            );
            a2.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                0,
                Bytes::from(vec![0; 100]),
            );
        });
        sim.run().assert_clean();
        sim.with_tracer(|tr| {
            assert_eq!(tr.counter("tcp.msgs"), 1);
            assert_eq!(tr.counter("tcp.bytes"), 3000);
            assert_eq!(tr.counter("tcp.segments"), 3); // ceil(3000/1460)
            assert_eq!(tr.counter("atm.msgs"), 1);
            assert_eq!(tr.counter("atm.bytes"), 100);
            assert_eq!(tr.counter("atm.cells"), 3); // ceil((100+8)/48)
        });
    }
}
