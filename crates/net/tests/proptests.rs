//! Property tests of the network models' invariants: adaptation-layer
//! roundtrips over arbitrary payloads, link FIFO monotonicity, fabric
//! timing sanity, and end-to-end payload integrity through each stack.

use bytes::Bytes;
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::ethernet::{EthernetFabric, EthernetParams};
use ncs_net::fabric::{Fabric, NodeId};
use ncs_net::link::{LinkSpec, LinkState};
use ncs_net::stack::{AtmApiNet, BlockingWait, Network, TcpNet, TcpParams};
use ncs_net::{aal34, aal5, AtmApiParams, HostParams};
use ncs_sim::{Dur, Sim, SimRng, SimTime};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// AAL5 segmentation/reassembly is lossless for any payload.
    #[test]
    fn aal5_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let cells = aal5::segment(&payload, 3, 77).unwrap();
        prop_assert_eq!(cells.len(), aal5::cells_for_pdu(payload.len()));
        let back = aal5::reassemble(&cells).unwrap();
        prop_assert_eq!(back, payload);
    }

    /// AAL3/4 likewise, and always needs at least as many cells as AAL5.
    #[test]
    fn aal34_roundtrip_and_overhead(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let cells = aal34::segment(&payload, 0, 5, 9);
        let back = aal34::reassemble(&cells).unwrap();
        prop_assert_eq!(&back, &payload);
        prop_assert!(cells.len() >= aal5::cells_for_pdu(payload.len()).max(1) - 1);
    }

    /// Any single corrupted payload byte in an AAL5 PDU is detected.
    #[test]
    fn aal5_detects_any_single_corruption(
        len in 1usize..600,
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
        let mut cells = aal5::segment(&payload, 0, 1).unwrap();
        let cell_idx = flip_byte % cells.len();
        let byte_idx = (flip_byte / cells.len()) % 48;
        let mut damaged = cells[cell_idx].payload.to_vec();
        damaged[byte_idx] ^= 1 << flip_bit;
        cells[cell_idx].payload = Bytes::from(damaged);
        // Either the CRC or (if padding/trailer got hit) length/framing
        // checks must reject it; silent acceptance of different data is
        // the only failure.
        match aal5::reassemble(&cells) {
            Err(_) => {}
            Ok(back) => prop_assert_eq!(back, payload, "corruption silently altered data"),
        }
    }

    /// Link bookings never overlap and never go backwards (FIFO invariant),
    /// for arbitrary arrival patterns.
    #[test]
    fn link_fifo_monotone(arrivals in proptest::collection::vec((0u64..10_000, 1usize..3000), 1..40)) {
        let link = LinkState::new(LinkSpec::ethernet10());
        let mut last_end = SimTime::ZERO;
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|&(t, _)| t);
        for (t, bytes) in sorted {
            let slot = link.enqueue(SimTime::from_ps(t * 1000), bytes, Dur::ZERO);
            prop_assert!(slot.start >= last_end, "overlapping transmissions");
            prop_assert!(slot.end > slot.start);
            prop_assert_eq!(slot.arrival, slot.end + link.spec.propagation);
            last_end = slot.end;
        }
    }

    /// Fabric transfers: arrival strictly after departure, and first-hop
    /// completion never after arrival.
    #[test]
    fn fabric_timing_sanity(
        bytes in 1usize..20_000,
        depart_ns in 0u64..1_000_000,
        eth in any::<bool>(),
    ) {
        let depart = SimTime::ZERO + Dur::from_nanos(depart_ns);
        let timing = if eth {
            let f = EthernetFabric::new(EthernetParams::new(3));
            let b = bytes.min(1460);
            f.transfer(NodeId(0), NodeId(1), b, depart)
        } else {
            let f = AtmLanFabric::new(AtmLanParams::fore_lan(3));
            f.transfer(NodeId(0), NodeId(2), bytes, depart)
        };
        prop_assert!(timing.first_hop_done > depart);
        prop_assert!(timing.arrival >= timing.first_hop_done);
    }
}

// End-to-end payload integrity through both transport stacks with random
// payload sizes (covers segmentation boundaries and the HSM chunking).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn stacks_deliver_arbitrary_payloads(seed in 0u64..1000, len in 0usize..60_000, hsm in any::<bool>()) {
        let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(2)));
        let hosts = vec![HostParams::test_fast(); 2];
        let net: Arc<dyn Network> = if hsm {
            Arc::new(AtmApiNet::new(fabric, hosts, AtmApiParams::default()))
        } else {
            Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
        };
        let mut rng = SimRng::new(seed);
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let expect = payload.clone();
        let sim = Sim::new();
        let n2 = Arc::clone(&net);
        sim.spawn("tx", move |ctx| {
            n2.send(ctx, &BlockingWait, NodeId(0), NodeId(1), 9, Bytes::from(payload));
        });
        let ok = Arc::new(Mutex::new(false));
        let ok2 = Arc::clone(&ok);
        sim.spawn("rx", move |ctx| {
            let m = net.inbox(NodeId(1)).recv(ctx).unwrap();
            assert_eq!(m.tag, 9);
            *ok2.lock() = m.payload[..] == expect[..];
        });
        sim.run().assert_clean();
        prop_assert!(*ok.lock(), "payload corrupted in transit");
    }
}
