//! Regression tests for the nondeterministic map iteration the analysis
//! layer's `hash-collection` lint flagged: the VC table and the fault
//! injector now use ordered maps, so two identical seeded runs must
//! produce bit-identical traces.

use bytes::Bytes;
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::fabric::NodeId;
use ncs_net::faults::{ChaosNet, ChaosParams};
use ncs_net::stack::{BlockingWait, Network, TcpNet, TcpParams};
use ncs_net::{api::AtmApi, api::TrafficClass, api::VcTable, HostParams};
use ncs_sim::{Sim, SimTime};
use std::sync::Arc;

/// One seeded run over a faulty stack: three nodes exchange tagged
/// messages through a ChaosNet (exercising the crash schedule and the
/// cell bit-flip map) and the run's event digest is returned.
fn chaotic_run() -> u64 {
    let sim = Sim::new();
    let nodes = 3;
    let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(nodes)));
    let tcp: Arc<dyn Network> = Arc::new(TcpNet::new(
        fabric,
        vec![HostParams::sparc_ipx(); nodes],
        TcpParams::ip_over_atm(),
    ));
    // Clean cell-level parameters: this test is about replay determinism,
    // not survival — a damaged PDU would be dropped below the retransmit
    // layer and deterministically hang a receiver.
    let chaos = ChaosNet::new(tcp, ChaosParams::clean(0xDE7));
    // A crash far past the traffic keeps the schedule map populated (the
    // converted BTreeMap) without killing the exchange.
    chaos.crash_at(NodeId(2), SimTime::from_ps(u64::MAX / 2));
    let net: Arc<dyn Network> = chaos;
    for src in 0..nodes as u32 {
        let net = Arc::clone(&net);
        sim.spawn(format!("sender{src}"), move |ctx| {
            for dst in 0..3u32 {
                if dst == src {
                    continue;
                }
                let payload = Bytes::from(vec![src as u8; 600]);
                net.send(
                    ctx,
                    &BlockingWait,
                    NodeId(src),
                    NodeId(dst),
                    (src * 10 + dst) as u64,
                    payload,
                );
            }
        });
    }
    for dst in 0..nodes as u32 {
        let net = Arc::clone(&net);
        sim.spawn(format!("receiver{dst}"), move |ctx| {
            let inbox = net.inbox(NodeId(dst));
            for _ in 0..2 {
                let d = inbox.recv(ctx).expect("inbox closed early");
                assert_eq!(d.dst, NodeId(dst));
            }
        });
    }
    let out = sim.run();
    out.assert_clean();
    sim.trace_hash()
}

#[test]
fn identical_seeded_runs_have_identical_traces() {
    assert_eq!(
        chaotic_run(),
        chaotic_run(),
        "seeded runs over the faulty stack must replay bit-exactly"
    );
}

#[test]
fn vc_table_iterates_in_circuit_order() {
    // Allocation across many peers, then release of every other circuit:
    // the table's behaviour (and thus anything iterating it) must not
    // depend on hash order.
    let mk = || {
        let mut t = VcTable::new();
        let mut vcs = Vec::new();
        for peer in (1..8).rev() {
            vcs.push(
                t.allocate(NodeId(0), NodeId(peer), TrafficClass::Ubr)
                    .unwrap(),
            );
        }
        for vc in vcs.iter().step_by(2) {
            t.release(*vc).unwrap();
        }
        (t.open_count(), vcs)
    };
    assert_eq!(mk(), mk());
}

#[test]
fn atm_api_roundtrip_is_replayable() {
    let run = || {
        let sim = Sim::new();
        let nodes = 2;
        let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(nodes)));
        let tcp: Arc<dyn Network> = Arc::new(TcpNet::new(
            fabric,
            vec![HostParams::sparc_ipx(); nodes],
            TcpParams::ip_over_atm(),
        ));
        let a = Arc::new(AtmApi::bind(NodeId(0), Arc::clone(&tcp)));
        let b = Arc::new(AtmApi::bind(NodeId(1), tcp));
        sim.spawn("a", move |ctx| {
            let vc = a.open(NodeId(1), TrafficClass::Ubr).unwrap();
            a.send(ctx, vc, Bytes::from_static(b"determinism probe"))
                .unwrap();
            let echo = a.recv(ctx, vc).unwrap();
            assert_eq!(&echo[..], b"determinism probe");
        });
        sim.spawn("b", move |ctx| {
            let vc = b.open(NodeId(0), TrafficClass::Ubr).unwrap();
            let pdu = b.recv(ctx, vc).unwrap();
            b.send(ctx, vc, pdu).unwrap();
        });
        sim.run().assert_clean();
        sim.trace_hash()
    };
    assert_eq!(run(), run());
}
