//! Property tests of the simulation kernel's core guarantees:
//! determinism, time monotonicity, resource capacity, channel FIFO order,
//! and timer-wheel/binary-heap pop-order equivalence.

use ncs_sim::wheel::TimerWheel;
use ncs_sim::{Dur, FifoResource, Sim, SimChannel, SimRng, SimTime};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Builds a pseudo-random program of sleeping/waking/channel-passing
/// threads from a seed, runs it, and returns (end time, trace hash).
fn run_random_program(seed: u64, n_threads: usize, n_ops: usize) -> (SimTime, u64) {
    let sim = Sim::new();
    let ch: SimChannel<u64> = SimChannel::unbounded("bus");
    for t in 0..n_threads {
        let mut rng = SimRng::new(seed).split(t as u64);
        let ch = ch.clone();
        sim.spawn(format!("t{t}"), move |ctx| {
            for _ in 0..n_ops {
                match rng.gen_index(3) {
                    0 => ctx.sleep(Dur::from_nanos(rng.gen_range(1_000) + 1)),
                    1 => {
                        let _ = ch.send(ctx, rng.next_u64());
                    }
                    _ => {
                        if let Some(v) = ch.try_recv(ctx.sim()) {
                            // Mix received value into timing.
                            ctx.sleep(Dur::from_ps(v % 977 + 1));
                        } else {
                            ctx.yield_now();
                        }
                    }
                }
            }
        });
    }
    let out = sim.run();
    assert!(out.panics.is_empty(), "{:?}", out.panics);
    (out.end_time, sim.trace_hash())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any program replays bit-identically: same seed, same end time, same
    /// event digest.
    #[test]
    fn deterministic_replay(seed in 0u64..10_000, threads in 1usize..8, ops in 1usize..40) {
        let a = run_random_program(seed, threads, ops);
        let b = run_random_program(seed, threads, ops);
        prop_assert_eq!(a, b);
    }

    /// Observed virtual time never decreases within a thread.
    #[test]
    fn time_monotone_per_thread(seed in 0u64..10_000, ops in 1usize..50) {
        let sim = Sim::new();
        let violations = Arc::new(Mutex::new(0usize));
        for t in 0..3 {
            let mut rng = SimRng::new(seed).split(t);
            let violations = Arc::clone(&violations);
            sim.spawn(format!("t{t}"), move |ctx| {
                let mut last = ctx.now();
                for _ in 0..ops {
                    ctx.sleep(Dur::from_nanos(rng.gen_range(100)));
                    let now = ctx.now();
                    if now < last {
                        *violations.lock() += 1;
                    }
                    last = now;
                }
            });
        }
        sim.run().assert_clean();
        prop_assert_eq!(*violations.lock(), 0);
    }

    /// A FIFO resource never admits more holders than its capacity, under
    /// arbitrary acquire/hold patterns.
    #[test]
    fn resource_capacity_invariant(
        seed in 0u64..10_000,
        capacity in 1usize..5,
        users in 1usize..12,
    ) {
        let sim = Sim::new();
        let res = FifoResource::new("r", capacity);
        let active = Arc::new(Mutex::new((0usize, 0usize))); // (current, peak)
        for u in 0..users {
            let res = res.clone();
            let active = Arc::clone(&active);
            let mut rng = SimRng::new(seed).split(u as u64);
            sim.spawn(format!("u{u}"), move |ctx| {
                for _ in 0..3 {
                    ctx.sleep(Dur::from_nanos(rng.gen_range(500)));
                    res.acquire(ctx);
                    {
                        let mut a = active.lock();
                        a.0 += 1;
                        a.1 = a.1.max(a.0);
                    }
                    ctx.sleep(Dur::from_nanos(rng.gen_range(500) + 1));
                    active.lock().0 -= 1;
                    res.release(ctx.sim());
                }
            });
        }
        sim.run().assert_clean();
        let (_, peak) = *active.lock();
        prop_assert!(peak <= capacity, "peak {peak} > capacity {capacity}");
    }

    /// Channel deliveries preserve per-sender FIFO order.
    #[test]
    fn channel_fifo_per_sender(seed in 0u64..10_000, msgs in 1usize..30) {
        let sim = Sim::new();
        let ch: SimChannel<(usize, usize)> = SimChannel::unbounded("c");
        for s in 0..3usize {
            let ch = ch.clone();
            let mut rng = SimRng::new(seed).split(s as u64);
            sim.spawn(format!("s{s}"), move |ctx| {
                for i in 0..msgs {
                    ctx.sleep(Dur::from_nanos(rng.gen_range(200)));
                    ch.send(ctx, (s, i)).unwrap();
                }
            });
        }
        let ch2 = ch.clone();
        let seen = Arc::new(Mutex::new(vec![0usize; 3]));
        let seen2 = Arc::clone(&seen);
        sim.spawn("rx", move |ctx| {
            for _ in 0..3 * msgs {
                let (s, i) = ch2.recv(ctx).unwrap();
                let mut v = seen2.lock();
                assert_eq!(v[s], i, "sender {s} out of order");
                v[s] += 1;
            }
        });
        sim.run().assert_clean();
        prop_assert!(seen.lock().iter().all(|&c| c == msgs));
    }

    /// The timer wheel pops in exactly the `(time, seq)` order a reference
    /// `BinaryHeap` model produces, under random interleavings of
    /// schedule / cancel / pop with heavy same-timestamp collisions and
    /// horizons spanning many wheel epochs (the 1024-slot ring wraps
    /// dozens of times).
    #[test]
    fn wheel_pop_order_matches_heap_model(
        seed in 0u64..10_000,
        tick_shift in 0u32..12,
        ops in 2_000usize..12_000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut wheel: TimerWheel<u64> = TimerWheel::with_tick_shift(tick_shift);
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        // Live events by (time, seq) -> token, for random cancellation.
        let mut live = Vec::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        // Span ~40 epochs of the wheel's window regardless of tick size.
        let window = 1u64 << (tick_shift + 10);
        for _ in 0..ops {
            match rng.gen_index(10) {
                // 60% schedule: same-instant, same-tick, in-window, far.
                0..=5 => {
                    let dt = match rng.gen_index(4) {
                        0 => 0,
                        1 => rng.gen_range(1u64 << tick_shift) + 1,
                        2 => rng.gen_range(window),
                        _ => rng.gen_range(window * 40),
                    };
                    let t = now + dt;
                    let tok = wheel.push(t, seq, seq);
                    model.push(Reverse((t, seq)));
                    live.push(((t, seq), tok));
                    seq += 1;
                }
                // 20% pop.
                6 | 7 => {
                    let got = wheel.pop().map(|(t, s, _)| (t, s));
                    let want = model.pop().map(|Reverse(p)| p);
                    prop_assert_eq!(got, want);
                    if let Some((t, s)) = want {
                        now = now.max(t);
                        live.retain(|&(k, _)| k != (t, s));
                    }
                }
                // 20% cancel a random live event in both structures.
                _ => {
                    if !live.is_empty() {
                        let i = rng.gen_index(live.len());
                        let ((t, s), tok) = live.swap_remove(i);
                        prop_assert_eq!(wheel.cancel(tok), Some(s));
                        let kept: Vec<_> =
                            model.drain().filter(|&Reverse(p)| p != (t, s)).collect();
                        model.extend(kept);
                    }
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
        }
        // Drain both completely: every remaining event agrees.
        while let Some(Reverse(want)) = model.pop() {
            prop_assert_eq!(wheel.pop().map(|(t, s, _)| (t, s)), Some(want));
        }
        prop_assert!(wheel.pop().is_none());
        prop_assert!(wheel.is_empty());
    }
}
