//! Span tracing for timeline ("Gantt") reconstruction.
//!
//! The paper's Figures 4 and 16 show per-thread compute / communication /
//! idle timelines with and without multithreading. Runtime components record
//! [`Span`]s here; the bench harness renders them as ASCII Gantt charts and
//! computes per-actor utilization.

use std::collections::BTreeMap;

use crate::time::{Dur, SimTime};

/// What an actor was doing during a span.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// Useful application computation.
    Compute,
    /// Moving data (protocol processing, copying, wire time).
    Comm,
    /// Blocked waiting for a message or event.
    Idle,
    /// Runtime bookkeeping (context switches, queue management).
    Overhead,
}

impl SpanKind {
    /// One-character glyph used in rendered timelines.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Compute => '#',
            SpanKind::Comm => '~',
            SpanKind::Idle => '.',
            SpanKind::Overhead => 'o',
        }
    }
}

/// A closed interval of activity by one actor.
#[derive(Clone, Debug)]
pub struct Span {
    /// Actor name, conventionally `"<node>/<thread>"`.
    pub actor: String,
    /// Activity class.
    pub kind: SpanKind,
    /// Free-form label (message tag, phase name).
    pub label: String,
    /// Start instant.
    pub t0: SimTime,
    /// End instant.
    pub t1: SimTime,
}

/// Collected spans plus named counters.
#[derive(Default)]
pub struct Tracer {
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
    enabled: bool,
}

impl Tracer {
    /// Creates a tracer. Span recording starts disabled (counters always
    /// work); call [`Tracer::enable`] when reconstructing timelines.
    pub fn new() -> Tracer {
        Tracer {
            spans: Vec::new(),
            counters: BTreeMap::new(),
            enabled: false,
        }
    }

    /// Enables span recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether span recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a span if recording is enabled and the span is non-empty.
    pub fn span(&mut self, actor: &str, kind: SpanKind, label: &str, t0: SimTime, t1: SimTime) {
        if self.enabled && t1 > t0 {
            self.spans.push(Span {
                actor: actor.to_string(),
                kind,
                label: label.to_string(),
                t0,
                t1,
            });
        }
    }

    /// Adds to a named counter (always recorded).
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a named counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total time each actor spent in each kind, over `[t_begin, t_end]`.
    pub fn utilization(&self) -> BTreeMap<String, BTreeMap<SpanKind, Dur>> {
        let mut out: BTreeMap<String, BTreeMap<SpanKind, Dur>> = BTreeMap::new();
        for s in &self.spans {
            let e = out
                .entry(s.actor.clone())
                .or_default()
                .entry(s.kind)
                .or_insert(Dur::ZERO);
            *e += s.t1.since(s.t0);
        }
        out
    }

    /// Renders an ASCII Gantt chart: one row per actor, `width` time buckets.
    /// Later spans overwrite earlier ones within a bucket; idle gaps show as
    /// spaces.
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width >= 10, "gantt width too small");
        if self.spans.is_empty() {
            return String::from("(no spans recorded)\n");
        }
        let t0 = self.spans.iter().map(|s| s.t0).min().unwrap();
        let t1 = self.spans.iter().map(|s| s.t1).max().unwrap();
        let total = t1.since(t0).as_ps().max(1);
        let mut actors: Vec<&str> = self.spans.iter().map(|s| s.actor.as_str()).collect();
        actors.sort_unstable();
        actors.dedup();
        let name_w = actors.iter().map(|a| a.len()).max().unwrap_or(0).max(8);
        let mut out = String::new();
        out.push_str(&format!(
            "{:name_w$} |{}|  span {} .. {}\n",
            "actor",
            "-".repeat(width),
            t0,
            t1,
        ));
        for actor in actors {
            let mut row = vec![' '; width];
            for s in self.spans.iter().filter(|s| s.actor == actor) {
                let b0 =
                    ((s.t0.since(t0).as_ps() as u128 * width as u128) / total as u128) as usize;
                let b1 =
                    ((s.t1.since(t0).as_ps() as u128 * width as u128) / total as u128) as usize;
                let b1 = b1.clamp(b0 + 1, width).min(width);
                for cell in row.iter_mut().take(b1).skip(b0.min(width - 1)) {
                    *cell = s.kind.glyph();
                }
            }
            out.push_str(&format!(
                "{:name_w$} |{}|\n",
                actor,
                row.into_iter().collect::<String>()
            ));
        }
        out.push_str("legend: # compute   ~ comm   . idle   o overhead\n");
        out
    }

    /// Clears spans and counters.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn spans_only_recorded_when_enabled() {
        let mut tr = Tracer::new();
        tr.span("n0/t0", SpanKind::Compute, "x", t(0), t(5));
        assert!(tr.spans().is_empty());
        tr.enable();
        tr.span("n0/t0", SpanKind::Compute, "x", t(0), t(5));
        assert_eq!(tr.spans().len(), 1);
    }

    #[test]
    fn empty_spans_dropped() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.span("a", SpanKind::Idle, "", t(3), t(3));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut tr = Tracer::new();
        tr.count("cells", 3);
        tr.count("cells", 4);
        assert_eq!(tr.counter("cells"), 7);
        assert_eq!(tr.counter("missing"), 0);
    }

    #[test]
    fn utilization_sums_per_kind() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.span("a", SpanKind::Compute, "", t(0), t(4));
        tr.span("a", SpanKind::Compute, "", t(6), t(8));
        tr.span("a", SpanKind::Idle, "", t(4), t(6));
        let u = tr.utilization();
        assert_eq!(u["a"][&SpanKind::Compute], Dur::from_micros(6));
        assert_eq!(u["a"][&SpanKind::Idle], Dur::from_micros(2));
    }

    #[test]
    fn gantt_renders_all_actors() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.span("n0/t0", SpanKind::Compute, "", t(0), t(50));
        tr.span("n1/t0", SpanKind::Comm, "", t(25), t(100));
        let g = tr.render_gantt(40);
        assert!(g.contains("n0/t0"));
        assert!(g.contains("n1/t0"));
        assert!(g.contains('#'));
        assert!(g.contains('~'));
    }

    #[test]
    fn gantt_handles_empty() {
        let tr = Tracer::new();
        assert!(tr.render_gantt(40).contains("no spans"));
    }
}
