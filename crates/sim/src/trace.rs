//! Span tracing for timeline ("Gantt") reconstruction.
//!
//! The paper's Figures 4 and 16 show per-thread compute / communication /
//! idle timelines with and without multithreading. Runtime components record
//! [`Span`]s here; the bench harness renders them as ASCII Gantt charts,
//! computes per-actor utilization, and exports Chrome `trace_event` JSON
//! (see [`crate::chrome`]).
//!
//! Recording is allocation-free on the hot path: actor names are interned
//! once into small [`ActorId`]s (components intern at construction and
//! record with [`Tracer::span_on`]), and labels are `&'static str`. Spans
//! optionally carry a parent link ([`SpanId`]) and a per-message causal id,
//! so one `NCS_send` decomposes into its queue-wait / segmentation / wire /
//! reassembly / wakeup children across threads and processes.
//!
//! Two recording levels: [`Tracer::enable`] turns on application-level spans
//! (compute, send, recv — the timeline figures); [`Tracer::enable_detail`]
//! additionally records high-rate scheduler timelines (per-thread run /
//! runnable / blocked transitions from the MTS runtime), which the
//! observability harness exports but the standard figures omit.

use std::collections::BTreeMap;

use crate::time::{Dur, SimTime};

/// What an actor was doing during a span.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// Useful application computation.
    Compute,
    /// Moving data (protocol processing, copying, wire time).
    Comm,
    /// Blocked waiting for a message or event.
    Idle,
    /// Runtime bookkeeping (context switches, queue management).
    Overhead,
    /// Runnable but not dispatched (waiting for the CPU; detail level).
    Runnable,
}

impl SpanKind {
    /// One-character glyph used in rendered timelines.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Compute => '#',
            SpanKind::Comm => '~',
            SpanKind::Idle => '.',
            SpanKind::Overhead => 'o',
            SpanKind::Runnable => '+',
        }
    }

    /// Short category name (Chrome-trace `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Comm => "comm",
            SpanKind::Idle => "idle",
            SpanKind::Overhead => "overhead",
            SpanKind::Runnable => "runnable",
        }
    }
}

/// An interned actor name (conventionally `"<node>/<thread>"`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(u32);

impl ActorId {
    /// Dense index of this actor in [`Tracer::actors`] order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a recorded span (index into [`Tracer::spans`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanId(u32);

impl SpanId {
    /// Dense index of this span in [`Tracer::spans`] order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A closed interval of activity by one actor.
#[derive(Clone, Debug)]
pub struct Span {
    /// Who (interned; resolve via [`Tracer::actor_name`]).
    pub actor: ActorId,
    /// Activity class.
    pub kind: SpanKind,
    /// Static label (phase name, component name).
    pub label: &'static str,
    /// Start instant.
    pub t0: SimTime,
    /// End instant.
    pub t1: SimTime,
    /// Enclosing span, when recorded as a child.
    pub parent: Option<SpanId>,
    /// Per-message causal id linking spans across threads (0 = none).
    pub causal: u64,
}

/// Collected spans plus named counters.
#[derive(Default)]
pub struct Tracer {
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
    actors: Vec<String>,
    actor_ids: BTreeMap<String, u32>,
    enabled: bool,
    detail: bool,
}

impl Tracer {
    /// Creates a tracer. Span recording starts disabled (counters always
    /// work); call [`Tracer::enable`] when reconstructing timelines.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Enables span recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Enables span recording *including* high-rate scheduler detail
    /// (run/runnable transitions recorded via [`Tracer::detail_enabled`]
    /// guards in the MTS runtime).
    pub fn enable_detail(&mut self) {
        self.enabled = true;
        self.detail = true;
    }

    /// Whether span recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether scheduler-detail spans should be recorded.
    pub fn detail_enabled(&self) -> bool {
        self.enabled && self.detail
    }

    /// Interns an actor name, returning a stable id. Idempotent; ids are
    /// assigned in first-intern order (deterministic under the sim).
    pub fn intern(&mut self, name: &str) -> ActorId {
        if let Some(&id) = self.actor_ids.get(name) {
            return ActorId(id);
        }
        let id = u32::try_from(self.actors.len()).expect("actor intern overflow");
        self.actors.push(name.to_string());
        self.actor_ids.insert(name.to_string(), id);
        ActorId(id)
    }

    /// Resolves an interned actor id back to its name.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.actors[id.index()]
    }

    /// All interned actor names, in id order.
    pub fn actors(&self) -> &[String] {
        &self.actors
    }

    /// Records a span by actor name (interning it) if recording is enabled
    /// and the span is non-empty. Hot paths should intern once and use
    /// [`Tracer::span_on`] instead.
    pub fn span(&mut self, actor: &str, kind: SpanKind, label: &'static str, t0: SimTime, t1: SimTime) {
        if self.enabled && t1 > t0 {
            let actor = self.intern(actor);
            self.push(actor, kind, label, t0, t1, None, 0);
        }
    }

    /// Records a span on a pre-interned actor. Allocation-free.
    pub fn span_on(
        &mut self,
        actor: ActorId,
        kind: SpanKind,
        label: &'static str,
        t0: SimTime,
        t1: SimTime,
    ) -> Option<SpanId> {
        if self.enabled && t1 > t0 {
            Some(self.push(actor, kind, label, t0, t1, None, 0))
        } else {
            None
        }
    }

    /// Records a span with an explicit parent link and causal id.
    #[allow(clippy::too_many_arguments)]
    pub fn span_full(
        &mut self,
        actor: ActorId,
        kind: SpanKind,
        label: &'static str,
        t0: SimTime,
        t1: SimTime,
        parent: Option<SpanId>,
        causal: u64,
    ) -> Option<SpanId> {
        if self.enabled && t1 > t0 {
            Some(self.push(actor, kind, label, t0, t1, parent, causal))
        } else {
            None
        }
    }

    /// Opens a span at `t0` whose end is not yet known, returning its id so
    /// children can link to it before it closes. Close with
    /// [`Tracer::close_span`]; an unclosed span stays zero-length and is
    /// ignored by the timeline renderers.
    pub fn open_span(
        &mut self,
        actor: ActorId,
        kind: SpanKind,
        label: &'static str,
        t0: SimTime,
        causal: u64,
    ) -> Option<SpanId> {
        if self.enabled {
            Some(self.push(actor, kind, label, t0, t0, None, causal))
        } else {
            None
        }
    }

    /// Closes a span previously opened with [`Tracer::open_span`].
    pub fn close_span(&mut self, id: SpanId, t1: SimTime) {
        let s = &mut self.spans[id.0 as usize];
        debug_assert!(t1 >= s.t0, "span closed before it opened");
        s.t1 = t1;
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        actor: ActorId,
        kind: SpanKind,
        label: &'static str,
        t0: SimTime,
        t1: SimTime,
        parent: Option<SpanId>,
        causal: u64,
    ) -> SpanId {
        let id = SpanId(u32::try_from(self.spans.len()).expect("span count overflow"));
        self.spans.push(Span {
            actor,
            kind,
            label,
            t0,
            t1,
            parent,
            causal,
        });
        id
    }

    /// Adds to a named counter (always recorded).
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a named counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total time each actor spent in each kind, over `[t_begin, t_end]`.
    pub fn utilization(&self) -> BTreeMap<String, BTreeMap<SpanKind, Dur>> {
        let mut out: BTreeMap<String, BTreeMap<SpanKind, Dur>> = BTreeMap::new();
        for s in self.spans.iter().filter(|s| s.t1 > s.t0) {
            let e = out
                .entry(self.actor_name(s.actor).to_string())
                .or_default()
                .entry(s.kind)
                .or_insert(Dur::ZERO);
            *e += s.t1.since(s.t0);
        }
        out
    }

    /// Renders an ASCII Gantt chart: one row per actor, `width` time buckets.
    /// Later spans overwrite earlier ones within a bucket; idle gaps show as
    /// spaces.
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width >= 10, "gantt width too small");
        let drawn: Vec<&Span> = self.spans.iter().filter(|s| s.t1 > s.t0).collect();
        if drawn.is_empty() {
            return String::from("(no spans recorded)\n");
        }
        let t0 = drawn.iter().map(|s| s.t0).min().unwrap();
        let t1 = drawn.iter().map(|s| s.t1).max().unwrap();
        let total = t1.since(t0).as_ps().max(1);
        let mut actors: Vec<&str> = drawn.iter().map(|s| self.actor_name(s.actor)).collect();
        actors.sort_unstable();
        actors.dedup();
        let name_w = actors.iter().map(|a| a.len()).max().unwrap_or(0).max(8);
        let mut out = String::new();
        out.push_str(&format!(
            "{:name_w$} |{}|  span {} .. {}\n",
            "actor",
            "-".repeat(width),
            t0,
            t1,
        ));
        for actor in actors {
            let mut row = vec![' '; width];
            for s in drawn.iter().filter(|s| self.actor_name(s.actor) == actor) {
                let b0 =
                    ((s.t0.since(t0).as_ps() as u128 * width as u128) / total as u128) as usize;
                let b1 =
                    ((s.t1.since(t0).as_ps() as u128 * width as u128) / total as u128) as usize;
                let b1 = b1.clamp(b0 + 1, width).min(width);
                for cell in row.iter_mut().take(b1).skip(b0.min(width - 1)) {
                    *cell = s.kind.glyph();
                }
            }
            out.push_str(&format!(
                "{:name_w$} |{}|\n",
                actor,
                row.into_iter().collect::<String>()
            ));
        }
        out.push_str("legend: # compute   ~ comm   . idle   o overhead   + runnable\n");
        out
    }

    /// Clears spans and counters (interned actors stay valid).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn spans_only_recorded_when_enabled() {
        let mut tr = Tracer::new();
        tr.span("n0/t0", SpanKind::Compute, "x", t(0), t(5));
        assert!(tr.spans().is_empty());
        tr.enable();
        tr.span("n0/t0", SpanKind::Compute, "x", t(0), t(5));
        assert_eq!(tr.spans().len(), 1);
    }

    #[test]
    fn empty_spans_dropped() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.span("a", SpanKind::Idle, "", t(3), t(3));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut tr = Tracer::new();
        tr.count("cells", 3);
        tr.count("cells", 4);
        assert_eq!(tr.counter("cells"), 7);
        assert_eq!(tr.counter("missing"), 0);
    }

    #[test]
    fn interning_is_stable_and_idempotent() {
        let mut tr = Tracer::new();
        let a = tr.intern("n0/t0");
        let b = tr.intern("n0/t1");
        assert_eq!(tr.intern("n0/t0"), a);
        assert_ne!(a, b);
        assert_eq!(tr.actor_name(a), "n0/t0");
        assert_eq!(tr.actors(), &["n0/t0".to_string(), "n0/t1".to_string()]);
    }

    #[test]
    fn span_on_records_without_interning_again() {
        let mut tr = Tracer::new();
        tr.enable();
        let a = tr.intern("n0/t0");
        let id = tr.span_on(a, SpanKind::Comm, "send", t(1), t(4)).unwrap();
        assert_eq!(tr.spans()[0].actor, a);
        let child = tr
            .span_full(a, SpanKind::Comm, "wire", t(2), t(3), Some(id), 42)
            .unwrap();
        assert_eq!(tr.spans()[child.0 as usize].parent, Some(id));
        assert_eq!(tr.spans()[child.0 as usize].causal, 42);
    }

    #[test]
    fn open_close_span_brackets_children() {
        let mut tr = Tracer::new();
        tr.enable();
        let a = tr.intern("n0/send");
        let root = tr.open_span(a, SpanKind::Comm, "send", t(0), 7).unwrap();
        tr.span_full(a, SpanKind::Comm, "queue-wait", t(0), t(2), Some(root), 7);
        tr.close_span(root, t(5));
        let spans = tr.spans();
        assert_eq!(spans[0].t1, t(5));
        assert_eq!(spans[1].parent, Some(root));
        // Disabled tracer: open_span returns None, close is never reached.
        let mut off = Tracer::new();
        let a = off.intern("x");
        assert!(off.open_span(a, SpanKind::Comm, "send", t(0), 0).is_none());
    }

    #[test]
    fn detail_level_gates_scheduler_spans() {
        let mut tr = Tracer::new();
        tr.enable();
        assert!(!tr.detail_enabled());
        tr.enable_detail();
        assert!(tr.detail_enabled());
    }

    #[test]
    fn utilization_sums_per_kind() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.span("a", SpanKind::Compute, "", t(0), t(4));
        tr.span("a", SpanKind::Compute, "", t(6), t(8));
        tr.span("a", SpanKind::Idle, "", t(4), t(6));
        let u = tr.utilization();
        assert_eq!(u["a"][&SpanKind::Compute], Dur::from_micros(6));
        assert_eq!(u["a"][&SpanKind::Idle], Dur::from_micros(2));
    }

    #[test]
    fn gantt_renders_all_actors() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.span("n0/t0", SpanKind::Compute, "", t(0), t(50));
        tr.span("n1/t0", SpanKind::Comm, "", t(25), t(100));
        let g = tr.render_gantt(40);
        assert!(g.contains("n0/t0"));
        assert!(g.contains("n1/t0"));
        assert!(g.contains('#'));
        assert!(g.contains('~'));
    }

    #[test]
    fn gantt_handles_empty() {
        let tr = Tracer::new();
        assert!(tr.render_gantt(40).contains("no spans"));
    }
}
