//! Virtual time for the simulation.
//!
//! Instants ([`SimTime`]) and durations ([`Dur`]) are integer picosecond
//! counts. Picosecond resolution keeps cell-level ATM arithmetic exact enough
//! for determinism: a 53-byte cell on an OC-48 (2.4 Gb/s) link lasts
//! 176,666 ps, and a `u64` of picoseconds still covers ~213 days of virtual
//! time — far beyond any experiment in this repository.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Creates a duration from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Dur {
        Dur(ps)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Dur { // ncs-lint: allow(float-time)
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Dur((s * 1e12).round() as u64)
    }

    /// The time it takes to serialize `bytes` bytes onto a link running at
    /// `bits_per_sec`, rounded up to the next picosecond so that modeled
    /// transmission never takes zero time. Zero-byte frames (pure-header
    /// artifacts of fragmentation edge cases) still cost 1 ps: a
    /// zero-duration wire event could reorder against its own enqueue.
    pub fn for_bytes(bytes: usize, bits_per_sec: u64) -> Dur {
        assert!(bits_per_sec > 0, "zero-rate link");
        let bits = bytes as u128 * 8;
        let ps = (bits * 1_000_000_000_000)
            .div_ceil(bits_per_sec as u128)
            .max(1);
        Dur(u64::try_from(ps).expect("duration overflow"))
    }

    /// Duration of `cycles` CPU cycles on a clock running at `hz`.
    pub fn for_cycles(cycles: u64, hz: u64) -> Dur {
        assert!(hz > 0, "zero clock rate");
        let ps = (cycles as u128 * 1_000_000_000_000).div_ceil(hz as u128);
        Dur(u64::try_from(ps).expect("duration overflow"))
    }

    /// This duration in picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration in (truncated) nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration in (truncated) microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 { // ncs-lint: allow(float-time)
        self.0 as f64 / 1e12 // ncs-lint: allow(float-time)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Dur) -> Option<Dur> {
        self.0.checked_add(rhs.0).map(Dur)
    }

    /// Returns `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a dimensionless integer factor.
    #[inline]
    pub const fn times(self, n: u64) -> Dur {
        Dur(self.0 * n)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3) // ncs-lint: allow(float-time)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6) // ncs-lint: allow(float-time)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9) // ncs-lint: allow(float-time)
        } else {
            write!(f, "{:.6}s", ps as f64 / 1e12) // ncs-lint: allow(float-time)
        }
    }
}

/// An instant of virtual time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ps` picoseconds after the epoch.
    #[inline]
    pub const fn from_ps(ps: u64) -> SimTime {
        SimTime(ps)
    }

    /// Picoseconds since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 { // ncs-lint: allow(float-time)
        self.0 as f64 / 1e12 // ncs-lint: allow(float-time)
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.checked_sub(earlier.0).expect("time went backwards"))
    }

    /// Saturating version of [`SimTime::since`].
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Dur) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Dur(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Dur(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Dur::from_nanos(1), Dur::from_ps(1_000));
        assert_eq!(Dur::from_micros(1), Dur::from_nanos(1_000));
        assert_eq!(Dur::from_millis(1), Dur::from_micros(1_000));
        assert_eq!(Dur::from_secs(1), Dur::from_millis(1_000));
    }

    #[test]
    fn secs_f64_roundtrip() {
        let d = Dur::from_secs_f64(1.5);
        assert_eq!(d.as_ps(), 1_500_000_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn for_bytes_matches_hand_math() {
        // 53-byte ATM cell at 2.4 Gb/s: 53*8 / 2.4e9 s = 176.666..ns
        let d = Dur::for_bytes(53, 2_400_000_000);
        assert_eq!(d.as_ps(), 176_667); // rounded up
                                        // 1 KB at 1 Gb/s = 8.192 us? no: 1024*8/1e9 = 8.192us
        let d = Dur::for_bytes(1024, 1_000_000_000);
        assert_eq!(d.as_ps(), 8_192_000_000 / 1000);
    }

    #[test]
    fn for_bytes_never_zero() {
        assert!(Dur::for_bytes(1, u64::MAX).as_ps() > 0);
    }

    #[test]
    fn for_bytes_zero_length_still_costs_a_picosecond() {
        // The boundary the old `div_ceil` missed: 0 bits ceil-divides to 0.
        assert_eq!(Dur::for_bytes(0, 1).as_ps(), 1);
        assert_eq!(Dur::for_bytes(0, 155_520_000).as_ps(), 1);
        assert_eq!(Dur::for_bytes(0, u64::MAX).as_ps(), 1);
    }

    #[test]
    fn for_bytes_rounding_boundaries() {
        // Exact division is untouched by the ≥1 ps clamp: 1 byte at 8 Gb/s
        // is exactly 1000 ps.
        assert_eq!(Dur::for_bytes(1, 8_000_000_000).as_ps(), 1_000);
        // One bit over exact: must round up, not down.
        assert_eq!(Dur::for_bytes(1, 8_000_000_001).as_ps(), 1_000);
        assert_eq!(Dur::for_bytes(1, u64::MAX).as_ps(), 1);
    }

    #[test]
    fn for_cycles_matches() {
        // 40 MHz clock: 1 cycle = 25 ns
        assert_eq!(Dur::for_cycles(1, 40_000_000), Dur::from_nanos(25));
        assert_eq!(Dur::for_cycles(1_000_000, 40_000_000), Dur::from_millis(25));
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Dur::from_micros(5);
        assert_eq!(t1.since(t0), Dur::from_micros(5));
        assert_eq!(t1.saturating_since(t1 + Dur::from_ps(1)), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_backwards() {
        let t0 = SimTime::from_ps(10);
        let _ = SimTime::from_ps(5).since(t0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dur::from_ps(7).to_string(), "7ps");
        assert_eq!(Dur::from_nanos(1).to_string(), "1.000ns");
        assert_eq!(Dur::from_micros(3).to_string(), "3.000us");
        assert_eq!(Dur::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Dur::from_secs(2).to_string(), "2.000000s");
    }

    #[test]
    fn sum_and_scale() {
        let total: Dur = [Dur::from_nanos(1), Dur::from_nanos(2)].into_iter().sum();
        assert_eq!(total, Dur::from_nanos(3));
        assert_eq!(Dur::from_nanos(2) * 3, Dur::from_nanos(6));
        assert_eq!(Dur::from_nanos(6) / 2, Dur::from_nanos(3));
        assert_eq!(Dur::from_nanos(2).times(4), Dur::from_nanos(8));
    }
}
