//! The discrete-event simulation kernel and its cooperative green threads.
//!
//! # Execution model
//!
//! A [`Sim`] owns a virtual clock and an event queue. Simulated activities
//! come in two forms:
//!
//! * **callbacks** — `FnOnce(&Sim)` closures scheduled at an instant, used by
//!   the network models to deliver cells, free links, fire timers;
//! * **green threads** — ordinary Rust closures suspended and resumed under
//!   a *strict baton protocol*: at any moment either the kernel loop or
//!   exactly one green thread is runnable. A green thread only advances
//!   virtual time by calling [`Ctx::sleep`], and only relinquishes control
//!   through [`Ctx`] methods. This gives sequential, deterministic semantics
//!   while letting application code be written in a natural blocking style —
//!   exactly how the paper's NCS_MTS threads behave. The *mechanism* behind
//!   suspend/resume is pluggable (see [`crate::engine`]): in-process
//!   stackful coroutines by default, with the original one-OS-thread-per-
//!   green-thread engine as a fallback for differential testing. The
//!   executed event sequence is identical under either engine.
//!
//! Events are ordered by `(time, sequence-number)`; sequence numbers are
//! assigned in program order, so a simulation is a pure function of its
//! inputs. [`Sim::trace_hash`] exposes a digest of the executed event
//! sequence that tests use to assert bit-identical replay.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::analysis::AnalysisConfig;
use crate::engine::coro::Coroutine;
use crate::engine::os_thread::{Baton, BatonMsg, KernelGate, OsThread};
use crate::engine::{EngineKind, GreenThread, ResumeHandle};
use crate::metrics::MetricsRegistry;
use crate::sched::{ChoicePoint, SchedulePolicy};
use crate::time::{Dur, SimTime};
use crate::trace::Tracer;
use crate::wheel::{TimerWheel, Token};

/// Identifier of a green thread within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub u32);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Why [`Sim::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The event queue drained: nothing can ever happen again.
    Completed,
    /// The configured virtual-time horizon was reached.
    TimeLimit,
    /// The configured event-count guard tripped (runaway simulation). The
    /// queue is left untouched past the cap — calling a `run_*` method again
    /// resumes exactly where this run stopped, even mid-timestamp.
    EventLimit,
}

/// Summary of one simulation run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Names of green threads still blocked when the run stopped. A clean
    /// experiment finishes with this empty; a non-empty list usually means a
    /// communication deadlock in the modeled protocol.
    pub blocked: Vec<String>,
    /// Panic messages captured from green threads.
    pub panics: Vec<String>,
}

impl RunOutcome {
    /// Asserts that the run drained completely, with no blocked threads and
    /// no panics. Used pervasively by tests.
    #[track_caller]
    pub fn assert_clean(&self) {
        assert!(
            self.panics.is_empty(),
            "green thread panics: {:?}",
            self.panics
        );
        assert_eq!(self.reason, StopReason::Completed, "run did not complete");
        assert!(
            self.blocked.is_empty(),
            "threads still blocked at end of run: {:?}",
            self.blocked
        );
    }
}

/// Scheduling state of a green thread slot.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum ThreadState {
    /// Waiting for its baton with a Resume event already queued.
    Scheduled,
    /// Waiting for its baton with no queued resume; must be woken.
    Parked,
    /// Currently holds the baton.
    Running,
    /// Finished (normally, by cancellation, or by panic).
    Exited,
}

struct ThreadSlot {
    name: String,
    state: ThreadState,
    /// The suspend/resume mechanism backing this thread (see
    /// [`crate::engine`]): a stackful coroutine or a parked OS thread.
    green: GreenThread,
    /// Green threads waiting in [`Ctx::join`] for this one to exit.
    exit_waiters: Vec<ThreadId>,
    /// Daemon threads (NIC models, switch ports) are expected to be parked
    /// forever; they are excluded from the blocked-thread report.
    daemon: bool,
}

enum EventKind {
    Resume(ThreadId),
    Call(Box<dyn FnOnce(&Sim) + Send>),
    /// Increment a tracer counter. Unlike `Call`, carries no closure, so
    /// scheduling one is allocation-free (the record is pooled).
    Count { name: &'static str, n: u64 },
    /// A self-rearming counter train: fires `remaining` times, `gap_ps`
    /// apart, incrementing `name` by one each firing. Models per-cell
    /// arrival events with ONE pooled record for the whole cell train.
    CountTrain {
        name: &'static str,
        remaining: u32,
        gap_ps: u64,
    },
}

/// Handle to a cancellable scheduled event, returned by
/// [`Sim::schedule_cancellable`] and consumed by [`Sim::cancel_scheduled`].
/// Copyable; using it after the event fired (or was already cancelled) is a
/// harmless no-op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerHandle(Token);

struct Inner {
    engine: EngineKind,
    now_ps: AtomicU64,
    seq: AtomicU64,
    queue: Mutex<TimerWheel<EventKind>>,
    threads: Mutex<Vec<ThreadSlot>>,
    gate: KernelGate,
    tracer: Mutex<Tracer>,
    metrics: Mutex<MetricsRegistry>,
    panics: Mutex<Vec<String>>,
    running: AtomicBool,
    finished: AtomicBool,
    trace_hash: AtomicU64,
    analysis: Mutex<AnalysisConfig>,
    /// Optional schedule-exploration policy (see [`crate::sched`]). The
    /// flag mirrors `policy.is_some()` so the hot path can skip the lock.
    policy: Mutex<Option<Box<dyn SchedulePolicy>>>,
    policy_installed: AtomicBool,
}

/// Handle to a simulation. Cheap to clone; all clones refer to the same
/// virtual world.
///
/// Handles obtained from [`Sim::new`] / [`Sim::with_engine`] (and clones of
/// them) additionally act as the simulation's *lifetime guard*: when the
/// last such handle drops, [`Sim::finish`] runs automatically, cancelling
/// and reaping every green thread of either engine. This holds on panic
/// paths too, so an abandoned or failing run cannot strand parked OS
/// threads or mapped coroutine stacks. The internal handles green threads
/// themselves hold (via [`Ctx`]) are *not* guards — they would otherwise
/// keep the simulation alive circularly.
pub struct Sim {
    inner: Arc<Inner>,
    guard: Option<Arc<SimGuard>>,
}

impl Clone for Sim {
    fn clone(&self) -> Sim {
        Sim {
            inner: Arc::clone(&self.inner),
            guard: self.guard.clone(),
        }
    }
}

/// Reaps a simulation's green threads when the last guarded [`Sim`] handle
/// drops (including mid-panic unwinds — cancellation payloads are caught
/// inside each green thread, so finishing during an unwind is safe).
struct SimGuard {
    inner: std::sync::Weak<Inner>,
}

impl Drop for SimGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.upgrade() {
            Sim { inner, guard: None }.finish();
        }
    }
}

/// Unwind payload used to cancel a green thread at shutdown.
struct CancelToken;

fn install_quiet_cancel_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelToken>().is_none() {
                prev(info);
            }
        }));
    });
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new()
    }
}

impl Sim {
    /// Creates an empty simulation at virtual time zero, on the process
    /// default green-thread engine (see [`crate::engine::default_engine`]).
    pub fn new() -> Sim {
        Sim::with_engine(crate::engine::default_engine())
    }

    /// Creates an empty simulation backed by a specific green-thread
    /// engine. Semantics are identical across engines (same event order,
    /// same trace hash); only dispatch cost differs.
    pub fn with_engine(engine: EngineKind) -> Sim {
        install_quiet_cancel_hook();
        let inner = Arc::new(Inner {
            engine,
            now_ps: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            queue: Mutex::new(TimerWheel::new()),
            threads: Mutex::new(Vec::new()),
            gate: KernelGate::new(),
            tracer: Mutex::new(Tracer::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
            panics: Mutex::new(Vec::new()),
            running: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            trace_hash: AtomicU64::new(0xcbf2_9ce4_8422_2325),
            analysis: Mutex::new(AnalysisConfig::default()),
            policy: Mutex::new(None),
            policy_installed: AtomicBool::new(false),
        });
        let guard = Arc::new(SimGuard {
            inner: Arc::downgrade(&inner),
        });
        Sim {
            inner,
            guard: Some(guard),
        }
    }

    /// A handle without the lifetime guard, for clones the simulation
    /// itself retains (green-thread contexts, queued closures): those must
    /// not keep the guard alive or the drop-reap would never fire.
    fn unguarded_clone(&self) -> Sim {
        Sim {
            inner: Arc::clone(&self.inner),
            guard: None,
        }
    }

    /// The green-thread engine backing this simulation.
    pub fn engine(&self) -> EngineKind {
        self.inner.engine
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_ps(self.inner.now_ps.load(Ordering::SeqCst))
    }

    /// Digest of the event sequence executed so far. Two runs of the same
    /// program with the same seed produce the same hash.
    pub fn trace_hash(&self) -> u64 {
        self.inner.trace_hash.load(Ordering::SeqCst)
    }

    /// Installs the runtime-analysis configuration for this simulation.
    ///
    /// With an active config, a run that drains its event queue while green
    /// threads are still parked reports each of them as a `lost-wakeup`
    /// violation: nothing left in the queue can ever unblock them.
    pub fn set_analysis(&self, cfg: AnalysisConfig) {
        *self.inner.analysis.lock() = cfg;
    }

    /// Installs a schedule-exploration policy, consulted at every legal
    /// scheduling choice point with two or more alternatives (see
    /// [`crate::sched`]). Install it before spawning activities so even
    /// the time-zero resume order is explorable. With no policy installed
    /// the kernel takes the canonical choice on the pre-existing code
    /// path — the golden trace stays byte-identical.
    pub fn set_schedule_policy(&self, policy: Box<dyn SchedulePolicy>) {
        *self.inner.policy.lock() = Some(policy);
        self.inner.policy_installed.store(true, Ordering::SeqCst);
    }

    /// Removes any installed schedule policy, restoring canonical order.
    pub fn clear_schedule_policy(&self) {
        self.inner.policy_installed.store(false, Ordering::SeqCst);
        *self.inner.policy.lock() = None;
    }

    /// True when a schedule-exploration policy is installed.
    pub fn has_schedule_policy(&self) -> bool {
        self.inner.policy_installed.load(Ordering::Relaxed)
    }

    /// Resolves one scheduling choice among `arity` legal alternatives:
    /// index 0 (the canonical choice) when no policy is installed or the
    /// choice is unary, otherwise whatever the installed policy picks.
    /// Layers above the kernel (the MTS scheduler, fault injection) route
    /// their own choice points through this so one policy sees the whole
    /// decision sequence.
    pub fn schedule_choice(&self, point: ChoicePoint, arity: usize) -> usize {
        if arity < 2 || !self.inner.policy_installed.load(Ordering::Relaxed) {
            return 0;
        }
        match self.inner.policy.lock().as_mut() {
            Some(p) => p.choose(point, arity).min(arity - 1),
            None => 0,
        }
    }

    /// Number of events still waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// High-water mark of the event queue's depth over the simulation's
    /// lifetime. Tracked inside the timer wheel at zero per-event cost; the
    /// scaling benches sample it as the `kernel.queue_depth` gauge.
    pub fn peak_queue_depth(&self) -> usize {
        self.inner.queue.lock().peak_len()
    }

    /// Instantaneous queue depth *including the event currently being
    /// dispatched*, if any. This is the quantity comparable to
    /// [`Sim::peak_queue_depth`]: the wheel's high-water mark counts an
    /// event up to the moment it is popped, so a sampler running *inside*
    /// an event that reads only [`Sim::pending_events`] undercounts by
    /// exactly one (the historical 65-vs-64 off-by-one in `xp_scale`).
    /// Outside a run this equals `pending_events()`.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().len() + usize::from(self.inner.running.load(Ordering::SeqCst))
    }

    /// Access to the span/event tracer (used by the timeline figures).
    pub fn with_tracer<R>(&self, f: impl FnOnce(&mut Tracer) -> R) -> R {
        f(&mut self.inner.tracer.lock())
    }

    /// Access to the metrics registry (counters, gauges, latency stats,
    /// per-message causal timelines). Always on; see
    /// [`MetricsRegistry`](crate::MetricsRegistry).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.inner.metrics.lock())
    }

    fn next_seq(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::SeqCst)
    }

    fn push_event(&self, at: SimTime, kind: EventKind) -> Token {
        debug_assert!(
            at >= self.now(),
            "scheduling into the past: {at} < {}",
            self.now()
        );
        // The sequence number is taken *before* the queue lock, in program
        // order — the tie-break that makes every run a pure function of its
        // inputs (and the golden trace byte-stable).
        let seq = self.next_seq();
        self.inner.queue.lock().push(at.as_ps(), seq, kind)
    }

    /// Schedules `f` to run at virtual instant `at`.
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce(&Sim) + Send + 'static) {
        self.push_event(at, EventKind::Call(Box::new(f)));
    }

    /// Schedules `f` to run `after` from now.
    pub fn schedule_in(&self, after: Dur, f: impl FnOnce(&Sim) + Send + 'static) {
        self.schedule_at(self.now() + after, f);
    }

    /// Schedules `f` like [`Sim::schedule_at`], but returns a handle that
    /// [`Sim::cancel_scheduled`] can use to retract the event before it
    /// fires. Used for protocol timers (retransmission, receive timeouts)
    /// that are usually satisfied long before they expire.
    pub fn schedule_cancellable(
        &self,
        at: SimTime,
        f: impl FnOnce(&Sim) + Send + 'static,
    ) -> TimerHandle {
        TimerHandle(self.push_event(at, EventKind::Call(Box::new(f))))
    }

    /// Retracts an event scheduled with [`Sim::schedule_cancellable`].
    /// Returns `true` if the event was still pending (its closure is dropped
    /// without running); `false` if it already fired or was cancelled.
    pub fn cancel_scheduled(&self, handle: TimerHandle) -> bool {
        self.inner.queue.lock().cancel(handle.0).is_some()
    }

    /// Schedules an increment of tracer counter `name` by `n` at `at`,
    /// without allocating a closure (the event record is pooled).
    pub fn schedule_count(&self, at: SimTime, name: &'static str, n: u64) {
        self.push_event(at, EventKind::Count { name, n });
    }

    /// Schedules `cells` unit increments of tracer counter `name`, the first
    /// at `first` and each subsequent one `gap` later — a cell train. Costs
    /// one pooled, self-rearming event record for the whole train instead of
    /// `cells` boxed closures, while still charging one kernel event per
    /// cell (the per-cell fidelity `CellEventMode::PerCell` pays for).
    pub fn schedule_count_train(&self, first: SimTime, cells: u32, gap: Dur, name: &'static str) {
        if cells == 0 {
            return;
        }
        self.push_event(
            first,
            EventKind::CountTrain {
                name,
                remaining: cells,
                gap_ps: gap.as_ps(),
            },
        );
    }

    /// Spawns a green thread. The closure receives a [`Ctx`] for interacting
    /// with virtual time. The thread first runs when the simulation reaches
    /// the current instant's pending events.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ThreadId {
        self.spawn_inner(name.into(), false, f)
    }

    /// Spawns an infrastructure ("daemon") green thread. Daemons typically
    /// loop forever serving a queue; a run that ends while they are parked is
    /// still considered clean, and [`Sim::finish`] cancels them.
    pub fn spawn_daemon(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ThreadId {
        self.spawn_inner(name.into(), true, f)
    }

    fn spawn_inner(
        &self,
        name: String,
        daemon: bool,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ThreadId {
        let tid;
        {
            let mut table = self.inner.threads.lock();
            tid = ThreadId(table.len() as u32);
            table.push(ThreadSlot {
                name: name.clone(),
                state: ThreadState::Scheduled,
                green: GreenThread::Done, // replaced below, before the resume
                exit_waiters: Vec::new(),
                daemon,
            });
        }
        // The engine-independent green-thread body. `started` is false when
        // the thread is cancelled before its first dispatch; the exit
        // bookkeeping still runs so joiners are woken either way.
        let sim = self.unguarded_clone();
        let run = move |started: bool| {
            if started {
                let ctx = Ctx {
                    sim: sim.clone(),
                    tid,
                };
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                if let Err(payload) = result {
                    if payload.downcast_ref::<CancelToken>().is_none() {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        sim.inner
                            .panics
                            .lock()
                            .push(format!("thread '{}': {msg}", sim.thread_name(tid)));
                    }
                }
            }
            sim.mark_exited(tid);
        };
        let green = match self.inner.engine {
            EngineKind::Coroutine => GreenThread::Coro(Coroutine::new(Box::new(run))),
            EngineKind::OsThread => {
                let baton = Baton::new();
                let thread_baton = Arc::clone(&baton);
                let gate_sim = self.unguarded_clone();
                GreenThread::Os(OsThread::spawn(&name, baton, move || {
                    let started = thread_baton.wait();
                    run(started);
                    gate_sim.inner.gate.signal();
                }))
            }
        };
        self.inner.threads.lock()[tid.0 as usize].green = green;
        self.push_event(self.now(), EventKind::Resume(tid));
        tid
    }

    /// Name a thread was spawned with.
    pub fn thread_name(&self, tid: ThreadId) -> String {
        self.inner.threads.lock()[tid.0 as usize].name.clone()
    }

    fn mark_exited(&self, tid: ThreadId) {
        let waiters;
        {
            let mut table = self.inner.threads.lock();
            let slot = &mut table[tid.0 as usize];
            slot.state = ThreadState::Exited;
            waiters = std::mem::take(&mut slot.exit_waiters);
        }
        for w in waiters {
            self.wake(w);
        }
    }

    /// Makes a parked green thread runnable again at the current instant.
    ///
    /// Returns `true` if the thread was parked and is now scheduled, `false`
    /// if it was already scheduled or has exited (both benign no-ops).
    /// Panics if called on the currently running thread.
    pub fn wake(&self, tid: ThreadId) -> bool {
        let mut table = self.inner.threads.lock();
        let slot = &mut table[tid.0 as usize];
        match slot.state {
            ThreadState::Parked => {
                slot.state = ThreadState::Scheduled;
                drop(table);
                self.push_event(self.now(), EventKind::Resume(tid));
                true
            }
            ThreadState::Scheduled | ThreadState::Exited => false,
            ThreadState::Running => panic!("wake() on the running thread {tid}"),
        }
    }

    /// Schedules a parked thread to resume at a future instant (a timed wake,
    /// used for sleeps). Internal building block for [`Ctx::sleep`].
    fn wake_at(&self, tid: ThreadId, at: SimTime) {
        let mut table = self.inner.threads.lock();
        let slot = &mut table[tid.0 as usize];
        debug_assert_eq!(slot.state, ThreadState::Running);
        slot.state = ThreadState::Scheduled;
        drop(table);
        self.push_event(at, EventKind::Resume(tid));
    }

    fn mix_hash(&self, a: u64, b: u64, c: u64) {
        // FNV-1a over the event tuple words.
        let mut h = self.inner.trace_hash.load(Ordering::SeqCst);
        for w in [a, b, c] {
            for byte in w.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        self.inner.trace_hash.store(h, Ordering::SeqCst);
    }

    /// Runs until the event queue drains (no horizon).
    pub fn run(&self) -> RunOutcome {
        self.run_bounded(None, u64::MAX)
    }

    /// Runs until the queue drains or virtual time would exceed `until`.
    pub fn run_until(&self, until: SimTime) -> RunOutcome {
        self.run_bounded(Some(until), u64::MAX)
    }

    /// Runs with both a time horizon and an event-count guard.
    pub fn run_bounded(&self, until: Option<SimTime>, max_events: u64) -> RunOutcome {
        assert!(
            !self.inner.running.swap(true, Ordering::SeqCst),
            "Sim::run re-entered"
        );
        let mut events: u64 = 0;
        let reason = loop {
            let (time, seq, kind) = {
                let mut q = self.inner.queue.lock();
                match q.peek() {
                    None => break StopReason::Completed,
                    Some((t, _)) => {
                        if let Some(limit) = until {
                            if t > limit.as_ps() {
                                break StopReason::TimeLimit;
                            }
                        }
                        // Check the cap BEFORE popping: breaking after the
                        // pop would silently drop the popped event, leaving
                        // a resumed run one event short (and, mid-timestamp,
                        // nondeterministically so).
                        if events >= max_events {
                            break StopReason::EventLimit;
                        }
                    }
                }
                if self.inner.policy_installed.load(Ordering::Relaxed) {
                    // Exploration: let the policy pick among same-timestamp
                    // events. The group scan + mid-heap extraction cost is
                    // paid only on this branch.
                    let group = q.head_seqs();
                    let pick = self.schedule_choice(ChoicePoint::EventTieBreak, group.len());
                    q.pop_seq(group[pick]).expect("head member vanished")
                } else {
                    q.pop().expect("peeked event vanished")
                }
            };
            events += 1;
            self.inner.now_ps.store(time, Ordering::SeqCst);
            match kind {
                EventKind::Call(f) => {
                    self.mix_hash(time, seq, 1);
                    f(self);
                }
                EventKind::Count { name, n } => {
                    self.mix_hash(time, seq, 3 | (n << 8));
                    self.with_tracer(|tr| tr.count(name, n));
                }
                EventKind::CountTrain {
                    name,
                    remaining,
                    gap_ps,
                } => {
                    self.mix_hash(time, seq, 4 | (u64::from(remaining) << 8));
                    self.with_tracer(|tr| tr.count(name, 1));
                    if remaining > 1 {
                        self.push_event(
                            SimTime::from_ps(time + gap_ps),
                            EventKind::CountTrain {
                                name,
                                remaining: remaining - 1,
                                gap_ps,
                            },
                        );
                    }
                }
                EventKind::Resume(tid) => {
                    self.mix_hash(time, seq, 2 | (u64::from(tid.0) << 8));
                    let handle = {
                        let mut table = self.inner.threads.lock();
                        let slot = &mut table[tid.0 as usize];
                        if slot.state != ThreadState::Scheduled {
                            // Stale resume (thread exited in the meantime).
                            continue;
                        }
                        slot.state = ThreadState::Running;
                        slot.green.resume_handle()
                    };
                    self.drive(tid, handle, false);
                }
            }
        };
        if let (StopReason::TimeLimit, Some(limit)) = (reason, until) {
            self.inner.now_ps.store(limit.as_ps(), Ordering::SeqCst);
        }
        self.inner.running.store(false, Ordering::SeqCst);
        let blocked: Vec<String> = {
            let table = self.inner.threads.lock();
            table
                .iter()
                .filter(|s| {
                    !s.daemon && matches!(s.state, ThreadState::Parked | ThreadState::Scheduled)
                })
                .map(|s| s.name.clone())
                .collect()
        };
        if reason == StopReason::Completed && !blocked.is_empty() {
            let analysis = self.inner.analysis.lock().clone();
            if analysis.active() {
                for name in &blocked {
                    analysis.report(
                        "lost-wakeup",
                        name.clone(),
                        "still parked after the event queue drained; no pending \
                         event, timer, or in-flight frame can unblock it",
                    );
                }
            }
        }
        let panics = self.inner.panics.lock().clone();
        RunOutcome {
            end_time: self.now(),
            events,
            reason,
            blocked,
            panics,
        }
    }

    /// Transfers control to a green thread whose slot is already marked
    /// `Running` and blocks until it hands control back. With `cancel`,
    /// the thread's next scheduling point unwinds it instead of returning.
    /// Finished coroutines are reaped on the spot (their 2 MiB stack is
    /// unmapped); OS threads are joined later, in [`Sim::finish`].
    fn drive(&self, tid: ThreadId, handle: ResumeHandle, cancel: bool) {
        match handle {
            ResumeHandle::Coro(tok) => {
                if tok.resume(cancel) {
                    self.inner.threads.lock()[tid.0 as usize].green = GreenThread::Done;
                }
            }
            ResumeHandle::Os(baton) => {
                baton.grant(if cancel { BatonMsg::Cancel } else { BatonMsg::Go });
                self.inner.gate.wait();
            }
        }
    }

    /// Cancels every live green thread and reclaims its backing resources —
    /// coroutine stacks are unmapped, fallback OS threads are joined.
    /// Runs automatically when the last guarded [`Sim`] handle drops
    /// (see [`Sim`]); call it explicitly to reclaim resources earlier.
    pub fn finish(&self) {
        if self.inner.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        loop {
            let (tid, handle) = {
                let mut table = self.inner.threads.lock();
                let slot = table.iter_mut().enumerate().find(|(_, s)| {
                    matches!(s.state, ThreadState::Parked | ThreadState::Scheduled)
                });
                match slot {
                    None => break,
                    Some((i, s)) => {
                        s.state = ThreadState::Running;
                        (ThreadId(i as u32), s.green.resume_handle())
                    }
                }
            };
            self.drive(tid, handle, true);
        }
        let handles: Vec<_> = {
            let mut table = self.inner.threads.lock();
            table
                .iter_mut()
                .filter_map(|s| match &mut s.green {
                    GreenThread::Os(os) => os.take_join_handle(),
                    GreenThread::Coro(_) | GreenThread::Done => None,
                })
                .collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Per-thread context passed to green-thread closures.
///
/// All virtual-time interaction goes through this handle. A green thread
/// must never block on OS primitives directly; doing so would stall the
/// entire simulation.
pub struct Ctx {
    sim: Sim,
    tid: ThreadId,
}

impl Ctx {
    /// The simulation this thread belongs to.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// This thread's id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Relinquishes control and resumes once virtual time has advanced by
    /// `d`. A zero-duration sleep is a yield: other work scheduled at the
    /// same instant runs first.
    pub fn sleep(&self, d: Dur) {
        let at = self.sim.now() + d;
        self.sim.wake_at(self.tid, at);
        self.yield_to_kernel();
    }

    /// Yields to other events pending at the current instant.
    pub fn yield_now(&self) {
        self.sleep(Dur::ZERO);
    }

    /// Parks this thread until some other activity calls [`Sim::wake`] on it.
    ///
    /// The caller must have published (under its own locking discipline) the
    /// state another activity will use to find and wake it — since only one
    /// simulated activity runs at a time, there is no lost-wakeup window.
    pub fn park(&self) {
        {
            let mut table = self.sim.inner.threads.lock();
            let slot = &mut table[self.tid.0 as usize];
            debug_assert_eq!(slot.state, ThreadState::Running);
            slot.state = ThreadState::Parked;
        }
        self.yield_to_kernel();
    }

    /// Wakes another parked thread (at the current instant).
    pub fn wake(&self, tid: ThreadId) -> bool {
        assert_ne!(tid, self.tid, "a thread cannot wake itself");
        self.sim.wake(tid)
    }

    /// Spawns a sibling green thread.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ThreadId {
        self.sim.spawn(name, f)
    }

    /// Spawns a sibling daemon thread (see [`Sim::spawn_daemon`]).
    pub fn spawn_daemon(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ThreadId {
        self.sim.spawn_daemon(name, f)
    }

    /// Blocks until the given thread has exited.
    pub fn join(&self, tid: ThreadId) {
        loop {
            {
                let mut table = self.sim.inner.threads.lock();
                if table[tid.0 as usize].state == ThreadState::Exited {
                    return;
                }
                table[tid.0 as usize].exit_waiters.push(self.tid);
            }
            self.park();
        }
    }

    /// Hands control back to the kernel loop (engine-specific mechanism)
    /// and blocks until the kernel dispatches this thread again. Unwinds
    /// with the cancellation payload when the wake-up is a cancellation.
    fn yield_to_kernel(&self) {
        let handle = {
            let table = self.sim.inner.threads.lock();
            table[self.tid.0 as usize].green.resume_handle()
        };
        let granted = match handle {
            ResumeHandle::Coro(tok) => tok.yield_back(),
            ResumeHandle::Os(baton) => {
                self.sim.inner.gate.signal();
                baton.wait()
            }
        };
        if !granted {
            panic::panic_any(CancelToken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_sim_completes_immediately() {
        let sim = Sim::new();
        let out = sim.run();
        out.assert_clean();
        assert_eq!(out.events, 0);
        assert_eq!(out.end_time, SimTime::ZERO);
    }

    #[test]
    fn callbacks_run_in_time_order() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = Arc::clone(&log);
            sim.schedule_at(SimTime::from_ps(t * 1000), move |_| {
                log.lock().push(tag);
            });
        }
        sim.run().assert_clean();
        assert_eq!(*log.lock(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_in_program_order() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for tag in 0..10 {
            let log = Arc::clone(&log);
            sim.schedule_at(SimTime::from_ps(5), move |_| log.lock().push(tag));
        }
        sim.run().assert_clean();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_sleep_advances_time() {
        let sim = Sim::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        sim.spawn("sleeper", move |ctx| {
            seen2.lock().push(ctx.now());
            ctx.sleep(Dur::from_micros(3));
            seen2.lock().push(ctx.now());
            ctx.sleep(Dur::from_micros(4));
            seen2.lock().push(ctx.now());
        });
        let out = sim.run();
        out.assert_clean();
        assert_eq!(
            *seen.lock(),
            vec![
                SimTime::ZERO,
                SimTime::ZERO + Dur::from_micros(3),
                SimTime::ZERO + Dur::from_micros(7),
            ]
        );
        assert_eq!(out.end_time, SimTime::ZERO + Dur::from_micros(7));
    }

    #[test]
    fn park_and_wake_handshake() {
        let sim = Sim::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let sleeper = sim.spawn("sleeper", move |ctx| {
            ctx.park();
            hits2.fetch_add(1, Ordering::SeqCst);
            assert_eq!(ctx.now(), SimTime::ZERO + Dur::from_millis(1));
        });
        sim.spawn("waker", move |ctx| {
            ctx.sleep(Dur::from_millis(1));
            assert!(ctx.wake(sleeper));
        });
        sim.run().assert_clean();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wake_on_scheduled_thread_is_noop() {
        let sim = Sim::new();
        let target = sim.spawn("t", move |ctx| ctx.sleep(Dur::from_nanos(1)));
        sim.spawn("w", move |ctx| {
            // target is Scheduled (its initial resume is queued): no-op.
            assert!(!ctx.wake(target));
        });
        sim.run().assert_clean();
    }

    #[test]
    fn join_waits_for_exit() {
        let sim = Sim::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let worker = sim.spawn("worker", move |ctx| {
            ctx.sleep(Dur::from_micros(10));
            o1.lock().push("worker-done");
        });
        let o2 = Arc::clone(&order);
        sim.spawn("joiner", move |ctx| {
            ctx.join(worker);
            o2.lock().push("joined");
            assert_eq!(ctx.now(), SimTime::ZERO + Dur::from_micros(10));
        });
        sim.run().assert_clean();
        assert_eq!(*order.lock(), vec!["worker-done", "joined"]);
    }

    #[test]
    fn join_on_already_exited_thread_returns() {
        let sim = Sim::new();
        let worker = sim.spawn("worker", |_| {});
        sim.spawn("joiner", move |ctx| {
            ctx.sleep(Dur::from_millis(5));
            ctx.join(worker); // already exited
        });
        sim.run().assert_clean();
    }

    #[test]
    fn time_limit_stops_run() {
        let sim = Sim::new();
        sim.spawn("long", |ctx| ctx.sleep(Dur::from_secs(100)));
        let out = sim.run_until(SimTime::ZERO + Dur::from_secs(1));
        assert_eq!(out.reason, StopReason::TimeLimit);
        assert_eq!(out.end_time, SimTime::ZERO + Dur::from_secs(1));
        assert_eq!(out.blocked, vec!["long".to_string()]);
        sim.finish();
    }

    #[test]
    fn event_limit_guards_runaway() {
        let sim = Sim::new();
        fn reschedule(sim: &Sim) {
            sim.schedule_in(Dur::from_nanos(1), reschedule);
        }
        sim.schedule_in(Dur::from_nanos(1), reschedule);
        let out = sim.run_bounded(None, 1000);
        assert_eq!(out.reason, StopReason::EventLimit);
        assert_eq!(out.events, 1000);
    }

    #[test]
    fn event_cap_mid_timestamp_is_resumable_without_loss() {
        // Five events at the same instant, capped at three: the pre-fix
        // kernel popped the fourth entry before noticing the cap and dropped
        // it on the floor. Resuming must run events 3 and 4 exactly once.
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for tag in 0..5 {
            let log = Arc::clone(&log);
            sim.schedule_at(SimTime::from_ps(7), move |_| log.lock().push(tag));
        }
        let first = sim.run_bounded(None, 3);
        assert_eq!(first.reason, StopReason::EventLimit);
        assert_eq!(first.events, 3);
        assert_eq!(*log.lock(), vec![0, 1, 2]);
        assert_eq!(sim.pending_events(), 2, "capped events must stay queued");
        let second = sim.run_bounded(None, u64::MAX);
        second.assert_clean();
        assert_eq!(second.events, 2);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn event_cap_equal_to_queue_len_reports_quiescence() {
        // Cap == total events: the run drains the queue, so the outcome is
        // Completed (quiescence), not a cap hit — the two must stay
        // distinguishable.
        let sim = Sim::new();
        for t in 0..4u64 {
            sim.schedule_at(SimTime::from_ps(t), |_| {});
        }
        let out = sim.run_bounded(None, 4);
        assert_eq!(out.reason, StopReason::Completed);
        assert_eq!(out.events, 4);
    }

    #[test]
    fn count_events_accumulate_without_closures() {
        let sim = Sim::new();
        sim.schedule_count(SimTime::from_ps(10), "k.cells", 3);
        sim.schedule_count(SimTime::from_ps(20), "k.cells", 4);
        let out = sim.run();
        out.assert_clean();
        assert_eq!(out.events, 2);
        assert_eq!(sim.with_tracer(|tr| tr.counter("k.cells")), 7);
    }

    #[test]
    fn count_train_fires_once_per_cell() {
        let sim = Sim::new();
        sim.schedule_count_train(SimTime::from_ps(1000), 5, Dur::from_ps(30), "k.train");
        let out = sim.run();
        out.assert_clean();
        assert_eq!(out.events, 5, "one kernel event per cell");
        assert_eq!(sim.with_tracer(|tr| tr.counter("k.train")), 5);
        assert_eq!(out.end_time, SimTime::from_ps(1000 + 4 * 30));
        // Empty trains are a no-op, not a stuck record.
        sim.schedule_count_train(SimTime::from_ps(2000), 0, Dur::from_ps(30), "k.train");
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn cancellable_timer_retracted_before_firing() {
        let sim = Sim::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f1 = Arc::clone(&fired);
        let h = sim.schedule_cancellable(SimTime::from_ps(50), move |_| {
            f1.fetch_add(1, Ordering::SeqCst);
        });
        let f2 = Arc::clone(&fired);
        sim.schedule_at(SimTime::from_ps(60), move |_| {
            f2.fetch_add(10, Ordering::SeqCst);
        });
        assert!(sim.cancel_scheduled(h), "pending timer must cancel");
        assert!(!sim.cancel_scheduled(h), "second cancel is a no-op");
        let out = sim.run();
        out.assert_clean();
        assert_eq!(fired.load(Ordering::SeqCst), 10, "cancelled closure ran");
        assert_eq!(out.events, 1, "cancelled event must not be dispatched");
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let sim = Sim::new();
        let h = sim.schedule_cancellable(SimTime::from_ps(5), |_| {});
        sim.run().assert_clean();
        assert!(!sim.cancel_scheduled(h));
    }

    #[test]
    fn peak_queue_depth_tracks_high_water_mark() {
        let sim = Sim::new();
        for t in 0..32u64 {
            sim.schedule_at(SimTime::from_ps(t), |_| {});
        }
        assert_eq!(sim.pending_events(), 32);
        sim.run().assert_clean();
        assert_eq!(sim.pending_events(), 0);
        // 32 scheduled events plus nothing else in flight.
        assert_eq!(sim.peak_queue_depth(), 32);
    }

    #[test]
    fn panics_are_captured_not_fatal() {
        let sim = Sim::new();
        sim.spawn("bad", |_| panic!("boom-{}", 42));
        let out = sim.run();
        assert_eq!(out.panics.len(), 1);
        assert!(out.panics[0].contains("boom-42"), "{:?}", out.panics);
    }

    #[test]
    fn finish_cancels_parked_threads() {
        let sim = Sim::new();
        sim.spawn("forever", |ctx| {
            ctx.park(); // never woken
            unreachable!("parked thread must not resume normally");
        });
        let out = sim.run();
        assert_eq!(out.blocked, vec!["forever".to_string()]);
        sim.finish(); // must not hang, must not report a panic
        assert!(sim.inner.panics.lock().is_empty());
    }

    #[test]
    fn spawn_from_thread_works() {
        let sim = Sim::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        sim.spawn("parent", move |ctx| {
            let mut children = Vec::new();
            for i in 0..5 {
                let c = Arc::clone(&c);
                children.push(ctx.spawn(format!("child{i}"), move |ctx| {
                    ctx.sleep(Dur::from_micros(i));
                    c.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for ch in children {
                ctx.join(ch);
            }
        });
        sim.run().assert_clean();
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn daemons_not_reported_blocked() {
        let sim = Sim::new();
        sim.spawn_daemon("nic", |ctx| loop {
            ctx.park();
        });
        sim.spawn("app", |ctx| ctx.sleep(Dur::from_micros(1)));
        let out = sim.run();
        out.assert_clean();
        sim.finish();
    }

    #[test]
    fn deterministic_trace_hash() {
        fn build_and_run(seed_threads: u32) -> u64 {
            let sim = Sim::new();
            for i in 0..seed_threads {
                sim.spawn(format!("t{i}"), move |ctx| {
                    for k in 0..10 {
                        ctx.sleep(Dur::from_nanos(u64::from(i) * 7 + k + 1));
                    }
                });
            }
            sim.run().assert_clean();
            sim.trace_hash()
        }
        let h1 = build_and_run(8);
        let h2 = build_and_run(8);
        let h3 = build_and_run(9);
        assert_eq!(h1, h2, "same program must replay identically");
        assert_ne!(h1, h3, "different programs should diverge");
    }

    #[test]
    fn scripted_policy_reorders_same_timestamp_events() {
        use crate::sched::{DecisionLog, ScriptedPolicy};
        let run = |script: Option<Vec<u32>>| {
            let sim = Sim::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            if let Some(s) = script {
                sim.set_schedule_policy(Box::new(ScriptedPolicy::new(s, DecisionLog::new())));
            }
            for tag in 0..4 {
                let log = Arc::clone(&log);
                sim.schedule_at(SimTime::from_ps(5), move |_| log.lock().push(tag));
            }
            sim.run().assert_clean();
            let order = log.lock().clone();
            (order, sim.trace_hash())
        };
        let (default_order, default_hash) = run(None);
        assert_eq!(default_order, vec![0, 1, 2, 3]);
        // An empty script is the canonical schedule: byte-identical hash.
        let (scripted_default, scripted_hash) = run(Some(vec![]));
        assert_eq!(scripted_default, default_order);
        assert_eq!(scripted_hash, default_hash);
        // Script: of 4 pending pick index 3, then of 3 pick 1, then defaults.
        let (reordered, reordered_hash) = run(Some(vec![3, 1]));
        assert_eq!(reordered, vec![3, 1, 0, 2]);
        assert_ne!(reordered_hash, default_hash);
    }

    #[test]
    fn random_walk_policy_records_replayable_decisions() {
        use crate::sched::{DecisionLog, RandomWalkPolicy, ScriptedPolicy};
        let build = |sim: &Sim, log: &Arc<Mutex<Vec<u64>>>| {
            for tag in 0..6u64 {
                let log = Arc::clone(log);
                sim.schedule_at(SimTime::from_ps(9), move |_| log.lock().push(tag));
            }
        };
        let walk_log = DecisionLog::new();
        let sim = Sim::new();
        sim.set_schedule_policy(Box::new(RandomWalkPolicy::new(0xA5, walk_log.clone())));
        let order = Arc::new(Mutex::new(Vec::new()));
        build(&sim, &order);
        sim.run().assert_clean();
        let walked = order.lock().clone();
        // Replaying the recorded decisions must reproduce the exact order.
        let script: Vec<u32> = walk_log.snapshot().iter().map(|d| d.chosen).collect();
        let sim2 = Sim::new();
        sim2.set_schedule_policy(Box::new(ScriptedPolicy::new(script, DecisionLog::new())));
        let order2 = Arc::new(Mutex::new(Vec::new()));
        build(&sim2, &order2);
        sim2.run().assert_clean();
        assert_eq!(*order2.lock(), walked);
        assert_eq!(sim2.trace_hash(), sim.trace_hash());
    }

    #[test]
    fn many_threads_interleave_deterministically() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20u64 {
            let log = Arc::clone(&log);
            sim.spawn(format!("t{i}"), move |ctx| {
                ctx.sleep(Dur::from_nanos(100 - i)); // reverse wake order
                log.lock().push(i);
            });
        }
        sim.run().assert_clean();
        let got = log.lock().clone();
        let want: Vec<u64> = (0..20).rev().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn queue_depth_counts_the_in_flight_event() {
        // `pending_events()` read from inside an event excludes the event
        // being dispatched; `queue_depth()` includes it, which is what makes
        // a sampler agree with `peak_queue_depth` (the xp_scale 65-vs-64
        // off-by-one). The sampler event runs first (program order), so at
        // that moment depth = 32 queued + itself = 33 = the wheel's peak.
        let sim = Sim::new();
        let sampled = Arc::new(Mutex::new((0usize, 0usize)));
        let s2 = Arc::clone(&sampled);
        sim.schedule_at(SimTime::ZERO, move |s| {
            *s2.lock() = (s.pending_events(), s.queue_depth());
        });
        for _ in 0..32 {
            sim.schedule_at(SimTime::ZERO, |_| {});
        }
        assert_eq!(sim.queue_depth(), 33, "outside a run: just the queue");
        sim.run().assert_clean();
        let (pending, depth) = *sampled.lock();
        assert_eq!(pending, 32, "in-flight event invisible to pending_events");
        assert_eq!(depth, 33, "queue_depth counts the in-flight event");
        assert_eq!(
            depth,
            sim.peak_queue_depth(),
            "sampler at the peak instant must agree with the high-water mark"
        );
        assert_eq!(sim.queue_depth(), 0);
    }

    fn run_trace_on(kind: EngineKind) -> (u64, Vec<u64>) {
        let sim = Sim::with_engine(kind);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..6u64 {
            let log = Arc::clone(&log);
            sim.spawn(format!("t{i}"), move |ctx| {
                for k in 0..4 {
                    ctx.sleep(Dur::from_nanos(i * 3 + k + 1));
                    log.lock().push(i * 100 + k);
                }
            });
        }
        sim.run().assert_clean();
        let order = log.lock().clone();
        (sim.trace_hash(), order)
    }

    #[test]
    fn engines_produce_identical_traces() {
        let (h_coro, log_coro) = run_trace_on(EngineKind::Coroutine);
        let (h_os, log_os) = run_trace_on(EngineKind::OsThread);
        assert_eq!(log_coro, log_os, "engines must interleave identically");
        assert_eq!(h_coro, h_os, "engines must hash identically");
    }

    #[cfg(target_os = "linux")]
    fn os_thread_count() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .expect("read /proc/self/status")
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads: line")
            .trim()
            .parse()
            .expect("thread count")
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn dropped_sims_reap_green_threads_on_both_engines() {
        // Regression for the abnormal-shutdown leak: a run abandoned with
        // parked daemons (and a panicked worker) used to strand one parked
        // OS thread (or, now, one mapped coroutine stack) per daemon per
        // simulation, forever. Dropping the creator handle must reap them.
        // Other tests run concurrently, so allow slack far below the 3 *
        // ITERS the leak would add.
        const ITERS: usize = 24;
        const SLACK: usize = 12;
        for kind in [EngineKind::Coroutine, EngineKind::OsThread] {
            let base_threads = os_thread_count();
            let base_stacks = crate::engine::live_coroutine_stacks();
            for _ in 0..ITERS {
                let sim = Sim::with_engine(kind);
                for d in 0..3 {
                    sim.spawn_daemon(format!("nic{d}"), |ctx| loop {
                        ctx.park();
                    });
                }
                sim.spawn("app", |_| std::panic::panic_any("boom"));
                let out = sim.run();
                assert_eq!(out.panics.len(), 1);
                drop(sim); // no explicit finish()
            }
            assert!(
                os_thread_count() <= base_threads + SLACK,
                "OS threads leaked on {kind:?}: {} -> {}",
                base_threads,
                os_thread_count()
            );
            assert!(
                crate::engine::live_coroutine_stacks() <= base_stacks + SLACK,
                "coroutine stacks leaked on {kind:?}: {} -> {}",
                base_stacks,
                crate::engine::live_coroutine_stacks()
            );
        }
    }

    #[test]
    fn guard_survives_internal_clones() {
        // Clones the simulation retains internally (queued closures, green
        // threads) must not keep the drop-reap guard alive; user clones do.
        let sim = Sim::new();
        sim.spawn_daemon("d", |ctx| loop {
            ctx.park();
        });
        let user_clone = sim.clone();
        sim.run().assert_clean();
        drop(sim);
        // The daemon still lives: user_clone holds the guard.
        assert!(!user_clone.inner.finished.load(Ordering::SeqCst));
        drop(user_clone);
        // Guard fired; nothing to assert on the sim itself (it is gone),
        // but a fresh sim proves the global stack count settled.
    }
}
