//! Runtime-analysis primitives shared by every layer above the kernel.
//!
//! The analysis pass is deliberately split in two:
//!
//! * this module holds the *mechanism* — a cheap on/off [`AnalysisConfig`]
//!   flag that travels inside the existing configuration structs, a shared
//!   [`InvariantSink`] collecting structured [`Violation`] reports, and a
//!   [`WaitGraph`] cycle detector over blocked threads;
//! * the `ncs-analysis` crate holds the *policy* — the source-level
//!   determinism lint, post-run classification, and the CI driver.
//!
//! Keeping the mechanism here lets the MTS runtime, the message-passing
//! core, and the kernel itself report violations without any dependency
//! cycles: everything already depends on `ncs-sim`.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Key of one directed application-visible channel: `(src proc, dst proc,
/// tag)`. The delivered-payload sequence per channel is the observable a
/// schedule-exploration run compares across interleavings.
pub type ChannelKey = (usize, usize, u64);

/// FNV-1a digest of a byte string — the compact payload fingerprint kept
/// in the delivery log.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One invariant violation detected by a runtime analysis pass.
///
/// Violations are structured so a failing CI run names the actor (process
/// or thread) and enough detail to act on — wait edges for deadlocks,
/// counter values for conservation checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable check identifier, e.g. `"deadlock"` or `"credit-conservation"`.
    pub check: &'static str,
    /// The process or thread the violation was observed on.
    pub actor: String,
    /// Human-readable specifics (thread ids, wait edges, counter values).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.check, self.actor, self.detail)
    }
}

/// Thread-safe collector for [`Violation`]s.
///
/// One sink is shared (via `Arc`) between every component of a run that
/// was handed the same [`AnalysisConfig`]; the driver drains it once the
/// simulation finishes.
#[derive(Debug, Default)]
pub struct InvariantSink {
    violations: Mutex<Vec<Violation>>,
    /// Per-channel sequence of delivered-payload digests, in delivery
    /// order — the cross-schedule observational-equivalence record.
    deliveries: Mutex<BTreeMap<ChannelKey, Vec<u64>>>,
}

impl InvariantSink {
    /// Creates an empty sink.
    pub fn new() -> InvariantSink {
        InvariantSink::default()
    }

    /// Records one violation.
    pub fn push(&self, v: Violation) {
        self.violations.lock().push(v);
    }

    /// Clones out everything recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.violations.lock().clone()
    }

    /// Drains the sink, returning everything recorded so far.
    pub fn take(&self) -> Vec<Violation> {
        std::mem::take(&mut *self.violations.lock())
    }

    /// Number of violations recorded so far.
    pub fn len(&self) -> usize {
        self.violations.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.violations.lock().is_empty()
    }

    /// Appends one delivered payload digest to channel `(src, dst, tag)`.
    /// Called from the message-passing core at the moment a message is
    /// accepted for the application (never on duplicates or retransmits),
    /// so the per-channel sequence is exactly what the application saw.
    pub fn note_delivery(&self, src: usize, dst: usize, tag: u64, payload_hash: u64) {
        self.deliveries
            .lock()
            .entry((src, dst, tag))
            .or_default()
            .push(payload_hash);
    }

    /// The delivery log: per-channel delivered-payload digest sequences.
    pub fn deliveries(&self) -> BTreeMap<ChannelKey, Vec<u64>> {
        self.deliveries.lock().clone()
    }
}

/// Switch for the runtime analysis pass.
///
/// The default is *off*: a disabled config is a `bool` test on every hook,
/// so production runs pay nothing. [`AnalysisConfig::recording`] returns an
/// enabled config plus the shared sink violations land in.
#[derive(Clone, Debug, Default)]
pub struct AnalysisConfig {
    enabled: bool,
    sink: Option<Arc<InvariantSink>>,
}

impl AnalysisConfig {
    /// A disabled config (the default): every hook is a cheap no-op.
    pub fn off() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    /// An enabled config plus the sink its violations are pushed into.
    pub fn recording() -> (AnalysisConfig, Arc<InvariantSink>) {
        let sink = Arc::new(InvariantSink::new());
        (
            AnalysisConfig {
                enabled: true,
                sink: Some(Arc::clone(&sink)),
            },
            sink,
        )
    }

    /// True when the analysis pass should run its checks.
    pub fn active(&self) -> bool {
        self.enabled
    }

    /// The shared sink, if this config is recording.
    pub fn sink(&self) -> Option<&Arc<InvariantSink>> {
        self.sink.as_ref()
    }

    /// Records a violation (no-op when disabled).
    pub fn report(&self, check: &'static str, actor: impl Into<String>, detail: impl Into<String>) {
        if let Some(sink) = &self.sink {
            sink.push(Violation {
                check,
                actor: actor.into(),
                detail: detail.into(),
            });
        }
    }

    /// Records a delivered payload on channel `(src, dst, tag)` (no-op
    /// when disabled). Only the FNV-1a digest is kept.
    pub fn note_delivery(&self, src: usize, dst: usize, tag: u64, payload: &[u8]) {
        if let Some(sink) = &self.sink {
            sink.note_delivery(src, dst, tag, fnv1a(payload));
        }
    }
}

/// A wait-for graph over dense thread ids.
///
/// Node `t` having an edge to `u` means "thread `t` is blocked until
/// thread `u` acts". A cycle therefore proves a deadlock among the threads
/// on it. Cycle enumeration is Tarjan's strongly-connected-components
/// algorithm; an SCC is a deadlock when it has more than one node, or a
/// single node with a self-loop.
#[derive(Clone, Debug, Default)]
pub struct WaitGraph {
    edges: Vec<Vec<usize>>,
}

impl WaitGraph {
    /// An empty graph with `n` nodes and no edges.
    pub fn new(n: usize) -> WaitGraph {
        WaitGraph {
            edges: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds the wait edge `from -> to`, growing the graph as needed.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        let need = from.max(to) + 1;
        if self.edges.len() < need {
            self.edges.resize(need, Vec::new());
        }
        self.edges[from].push(to);
    }

    /// Every deadlocked group: SCCs of size ≥ 2, plus single nodes with a
    /// self-loop. Each group is sorted by node id; groups are sorted by
    /// their smallest member, so output is deterministic regardless of
    /// insertion order.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.edges.len();
        let mut state = TarjanState {
            edges: &self.edges,
            index: vec![usize::MAX; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            sccs: Vec::new(),
        };
        for v in 0..n {
            if state.index[v] == usize::MAX {
                state.visit(v);
            }
        }
        let mut out: Vec<Vec<usize>> = state
            .sccs
            .into_iter()
            .filter(|scc| scc.len() > 1 || self.edges[scc[0]].contains(&scc[0]))
            .map(|mut scc| {
                scc.sort_unstable();
                scc
            })
            .collect();
        out.sort();
        out
    }
}

struct TarjanState<'a> {
    edges: &'a [Vec<usize>],
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    sccs: Vec<Vec<usize>>,
}

impl TarjanState<'_> {
    /// Iterative Tarjan visit (explicit work stack, so deep chains in
    /// property tests cannot overflow the call stack).
    fn visit(&mut self, root: usize) {
        // (node, next-neighbour-position) frames.
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, pos)) = frames.last() {
            if pos == 0 {
                self.index[v] = self.next_index;
                self.lowlink[v] = self.next_index;
                self.next_index += 1;
                self.stack.push(v);
                self.on_stack[v] = true;
            }
            if let Some(&w) = self.edges[v].get(pos) {
                frames.last_mut().expect("frame present").1 = pos + 1;
                if self.index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if self.on_stack[w] {
                    self.lowlink[v] = self.lowlink[v].min(self.index[w]);
                }
                continue;
            }
            // All neighbours done: close the frame.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
            }
            if self.lowlink[v] == self.index[v] {
                let mut scc = Vec::new();
                loop {
                    let w = self.stack.pop().expect("tarjan stack underflow");
                    self.on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                self.sccs.push(scc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_dag_have_no_cycles() {
        assert!(WaitGraph::new(0).cycles().is_empty());
        let mut g = WaitGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        g.add_edge(3, 2);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn self_loop_and_two_cycle_found() {
        let mut g = WaitGraph::new(5);
        g.add_edge(4, 4);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(0, 1); // tail into the cycle, not part of it
        assert_eq!(g.cycles(), vec![vec![1, 2], vec![4]]);
    }

    #[test]
    fn add_edge_grows_graph() {
        let mut g = WaitGraph::new(0);
        g.add_edge(2, 0);
        g.add_edge(0, 2);
        assert_eq!(g.len(), 3);
        assert_eq!(g.cycles(), vec![vec![0, 2]]);
    }

    #[test]
    fn delivery_log_orders_per_channel() {
        let (cfg, sink) = AnalysisConfig::recording();
        cfg.note_delivery(0, 1, 7, b"first");
        cfg.note_delivery(0, 1, 7, b"second");
        cfg.note_delivery(1, 0, 7, b"first");
        AnalysisConfig::off().note_delivery(0, 1, 7, b"dropped");
        let log = sink.deliveries();
        assert_eq!(log.len(), 2);
        assert_eq!(log[&(0, 1, 7)], vec![fnv1a(b"first"), fnv1a(b"second")]);
        assert_eq!(log[&(1, 0, 7)], vec![fnv1a(b"first")]);
        assert_ne!(fnv1a(b"first"), fnv1a(b"second"));
    }

    #[test]
    fn sink_report_roundtrip() {
        let (cfg, sink) = AnalysisConfig::recording();
        assert!(cfg.active());
        cfg.report("deadlock", "p0", "t1 -> t2 -> t1");
        assert_eq!(sink.len(), 1);
        let v = sink.take();
        assert_eq!(v[0].check, "deadlock");
        assert!(sink.is_empty());
        assert!(!AnalysisConfig::off().active());
    }
}
