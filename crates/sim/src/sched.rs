//! Pluggable schedule policy: the decision-point seam for schedule
//! exploration.
//!
//! The simulator is deterministic, but several of its scheduling decisions
//! are *conventions*, not requirements: which of several same-timestamp
//! kernel events pops first, which runnable thread within an MTS priority
//! level dispatches next, which cell of a multi-cell PDU a rolled fault
//! lands on. Correct protocol code must produce the same observable
//! behaviour under **any** resolution of those choices. This module names
//! each such choice point ([`ChoicePoint`]), routes it through an optional
//! [`SchedulePolicy`], and records every decision taken into a
//! [`DecisionLog`] so a failing schedule replays deterministically.
//!
//! With no policy installed the kernel never consults this module and the
//! canonical choice (index 0 — lowest seq, round-robin head, first cell)
//! is taken on the exact same code path as before, keeping the golden
//! trace byte-identical.
//!
//! The replayable trace format is a whitespace-separated list of
//! `point:arity:chosen` triples (`e`=event tie-break, `r`=runnable
//! rotation, `f`=fault timing), e.g. `e:3:1 r:2:1`. Lines starting with
//! `#` are comments. [`format_trace`] and [`parse_trace`] round-trip it.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::rng::SimRng;

/// A named class of legal scheduling choice.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ChoicePoint {
    /// Which of several same-timestamp kernel events pops next.
    EventTieBreak,
    /// Which runnable thread within the top non-empty MTS priority level
    /// dispatches next (strict priority between levels is a hard rule and
    /// never a choice).
    RunnableRotation,
    /// Which cell of a multi-cell PDU a rolled fault lands on.
    FaultTiming,
}

impl ChoicePoint {
    /// One-letter code used by the trace format.
    pub fn code(self) -> char {
        match self {
            ChoicePoint::EventTieBreak => 'e',
            ChoicePoint::RunnableRotation => 'r',
            ChoicePoint::FaultTiming => 'f',
        }
    }

    /// Inverse of [`ChoicePoint::code`].
    pub fn from_code(c: char) -> Option<ChoicePoint> {
        match c {
            'e' => Some(ChoicePoint::EventTieBreak),
            'r' => Some(ChoicePoint::RunnableRotation),
            'f' => Some(ChoicePoint::FaultTiming),
            _ => None,
        }
    }
}

/// One resolved choice: at a [`ChoicePoint`] with `arity` legal
/// alternatives, alternative `chosen` was taken.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Which class of choice this was.
    pub point: ChoicePoint,
    /// How many legal alternatives existed (always >= 2; unary "choices"
    /// are not consulted or recorded).
    pub arity: u32,
    /// The alternative taken, in `[0, arity)`. 0 is always the canonical
    /// default-schedule choice.
    pub chosen: u32,
}

/// A scheduling policy consulted at every [`ChoicePoint`] with two or
/// more legal alternatives. Implementations must be deterministic given
/// their construction parameters — the whole point is replayability.
pub trait SchedulePolicy: Send {
    /// Picks one of `arity` alternatives (`arity >= 2`). The returned
    /// index must be `< arity`.
    fn choose(&mut self, point: ChoicePoint, arity: usize) -> usize;
}

/// Shared record of every decision a policy took during one run, in
/// consultation order. The exploration engine keeps one side of the
/// [`Arc`] and reads it back after the run to build a replay trace.
#[derive(Default)]
pub struct DecisionLog {
    decisions: Mutex<Vec<Decision>>,
}

impl DecisionLog {
    /// A fresh, empty log.
    pub fn new() -> Arc<DecisionLog> {
        Arc::new(DecisionLog::default())
    }

    /// Appends one decision.
    pub fn record(&self, d: Decision) {
        self.decisions.lock().push(d);
    }

    /// Number of decisions recorded so far.
    pub fn len(&self) -> usize {
        self.decisions.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the decisions recorded so far.
    pub fn snapshot(&self) -> Vec<Decision> {
        self.decisions.lock().clone()
    }
}

/// Seeded random-walk policy: every choice is an independent uniform
/// draw from a [`SimRng`]. Same seed, same walk.
pub struct RandomWalkPolicy {
    rng: SimRng,
    log: Arc<DecisionLog>,
}

impl RandomWalkPolicy {
    /// A walk driven by `seed`, recording into `log`.
    pub fn new(seed: u64, log: Arc<DecisionLog>) -> RandomWalkPolicy {
        RandomWalkPolicy {
            rng: SimRng::new(seed),
            log,
        }
    }
}

impl SchedulePolicy for RandomWalkPolicy {
    fn choose(&mut self, point: ChoicePoint, arity: usize) -> usize {
        debug_assert!(arity >= 2, "unary choices must not be consulted");
        let chosen = self.rng.gen_index(arity);
        self.log.record(Decision {
            point,
            arity: arity as u32,
            chosen: chosen as u32,
        });
        chosen
    }
}

/// Replays a prescribed prefix of choices; past the end of the script
/// every choice falls back to the canonical 0. Out-of-range prescriptions
/// are clamped to `arity - 1` (a schedule drifting from the one that
/// produced the script can legally present a smaller arity).
pub struct ScriptedPolicy {
    script: Vec<u32>,
    cursor: usize,
    log: Arc<DecisionLog>,
}

impl ScriptedPolicy {
    /// A policy following `script`, recording the choices actually taken
    /// (post-clamp, including the trailing defaults) into `log`.
    pub fn new(script: Vec<u32>, log: Arc<DecisionLog>) -> ScriptedPolicy {
        ScriptedPolicy {
            script,
            cursor: 0,
            log,
        }
    }
}

impl SchedulePolicy for ScriptedPolicy {
    fn choose(&mut self, point: ChoicePoint, arity: usize) -> usize {
        debug_assert!(arity >= 2, "unary choices must not be consulted");
        let prescribed = self.script.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        let chosen = (prescribed as usize).min(arity - 1);
        self.log.record(Decision {
            point,
            arity: arity as u32,
            chosen: chosen as u32,
        });
        chosen
    }
}

/// Serializes decisions into the replayable trace format.
pub fn format_trace(decisions: &[Decision]) -> String {
    let mut out = String::from("# ncs schedule trace v1\n");
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            out.push(if i % 16 == 0 { '\n' } else { ' ' });
        }
        out.push_str(&format!("{}:{}:{}", d.point.code(), d.arity, d.chosen));
    }
    out.push('\n');
    out
}

/// Parses the trace format produced by [`format_trace`]. Comment lines
/// (`#`) and blank lines are skipped.
pub fn parse_trace(s: &str) -> Result<Vec<Decision>, String> {
    let mut out = Vec::new();
    for line in s.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        for tok in line.split_whitespace() {
            let mut parts = tok.split(':');
            let (Some(p), Some(a), Some(c), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("malformed decision `{tok}` (want point:arity:chosen)"));
            };
            let point = p
                .chars()
                .next()
                .filter(|_| p.len() == 1)
                .and_then(ChoicePoint::from_code)
                .ok_or_else(|| format!("unknown choice point `{p}` in `{tok}`"))?;
            let arity: u32 = a.parse().map_err(|_| format!("bad arity in `{tok}`"))?;
            let chosen: u32 = c.parse().map_err(|_| format!("bad choice in `{tok}`"))?;
            if arity < 2 || chosen >= arity {
                return Err(format!("inconsistent decision `{tok}`"));
            }
            out.push(Decision {
                point,
                arity,
                chosen,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_walk_is_seed_deterministic_and_in_range() {
        let arities = [2usize, 3, 5, 2, 17, 4];
        let run = |seed| {
            let log = DecisionLog::new();
            let mut p = RandomWalkPolicy::new(seed, log.clone());
            for &a in &arities {
                let c = p.choose(ChoicePoint::EventTieBreak, a);
                assert!(c < a);
            }
            log.snapshot()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7)
                .iter()
                .map(|d| d.chosen)
                .collect::<Vec<_>>(),
            run(8).iter().map(|d| d.chosen).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn scripted_policy_follows_then_defaults() {
        let log = DecisionLog::new();
        let mut p = ScriptedPolicy::new(vec![1, 9, 0], log.clone());
        assert_eq!(p.choose(ChoicePoint::RunnableRotation, 2), 1);
        assert_eq!(p.choose(ChoicePoint::EventTieBreak, 3), 2, "clamped");
        assert_eq!(p.choose(ChoicePoint::EventTieBreak, 4), 0);
        assert_eq!(p.choose(ChoicePoint::FaultTiming, 5), 0, "past end");
        let log = log.snapshot();
        assert_eq!(log.len(), 4);
        assert_eq!(log[1].chosen, 2, "log holds the post-clamp choice");
    }

    #[test]
    fn trace_round_trips() {
        let decisions = vec![
            Decision {
                point: ChoicePoint::EventTieBreak,
                arity: 3,
                chosen: 1,
            },
            Decision {
                point: ChoicePoint::RunnableRotation,
                arity: 2,
                chosen: 1,
            },
            Decision {
                point: ChoicePoint::FaultTiming,
                arity: 5,
                chosen: 4,
            },
        ];
        let text = format_trace(&decisions);
        assert_eq!(parse_trace(&text).unwrap(), decisions);
        // A long trace wraps lines and still round-trips.
        let long: Vec<Decision> = (0..100)
            .map(|i| Decision {
                point: ChoicePoint::EventTieBreak,
                arity: 4,
                chosen: i % 4,
            })
            .collect();
        assert_eq!(parse_trace(&format_trace(&long)).unwrap(), long);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace("e:3").is_err());
        assert!(parse_trace("x:3:1").is_err());
        assert!(parse_trace("e:3:3").is_err(), "chosen out of range");
        assert!(parse_trace("e:1:0").is_err(), "unary arity");
        assert!(parse_trace("# comment only\n\n").unwrap().is_empty());
    }
}
