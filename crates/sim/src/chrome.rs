//! Chrome `trace_event` JSON export (Perfetto / `chrome://tracing`).
//!
//! Serializes a [`Tracer`]'s spans and a [`MetricsRegistry`]'s gauge series
//! into the [Trace Event Format]: every actor becomes a named thread track
//! of complete (`"ph":"X"`) events, every gauge becomes a counter
//! (`"ph":"C"`) track. Span parent links and causal ids ride in `args`, so
//! one message's journey can be followed across thread tracks by its
//! `causal` value.
//!
//! The encoder is hand-rolled (the workspace deliberately has no serde) and
//! fully deterministic: timestamps are emitted as exact decimal microseconds
//! derived from integer picoseconds — no floating point — so a fixed-seed
//! run exports byte-identical JSON, which the golden-trace test pins down.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::metrics::MetricsRegistry;
use crate::time::SimTime;
use crate::trace::Tracer;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exact decimal microseconds from picoseconds (no floating point, so the
/// output is bit-stable): `1_234_567 ps` → `"1.234567"`.
fn us(ps: u64) -> String {
    let whole = ps / 1_000_000;
    let frac = ps % 1_000_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let s = format!("{whole}.{frac:06}");
        s.trim_end_matches('0').to_string()
    }
}

fn ts(t: SimTime) -> String {
    us(t.since(SimTime::ZERO).as_ps())
}

/// Renders the tracer + metrics state as a Chrome trace_event JSON document.
///
/// Load the result in [Perfetto](https://ui.perfetto.dev) (drag-and-drop) or
/// `chrome://tracing`. Thread tracks carry the actor names; counter tracks
/// carry gauge series; span `args` carry `causal` (message id) and `parent`
/// (enclosing span index) when set.
pub fn chrome_trace_json(tr: &Tracer, metrics: &MetricsRegistry) -> String {
    let mut ev: Vec<String> = Vec::new();
    // Process + thread naming metadata. One pid (the sim); one tid per actor.
    ev.push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"ncs-sim\"}}"
            .to_string(),
    );
    for (i, name) in tr.actors().iter().enumerate() {
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{i}}}}}"
        ));
    }
    // Spans as complete events. Zero-length (never-closed) spans are skipped.
    for (idx, s) in tr.spans().iter().enumerate() {
        if s.t1 <= s.t0 {
            continue;
        }
        let mut args = String::new();
        if s.causal != 0 {
            args.push_str(&format!("\"causal\":{}", s.causal));
        }
        if let Some(p) = s.parent {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!("\"parent\":{}", p.index()));
        }
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"span\":{idx}"));
        ev.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            s.actor.index(),
            esc(s.label),
            esc(s.kind.name()),
            ts(s.t0),
            us(s.t1.since(s.t0).as_ps()),
        ));
    }
    // Gauge series as counter tracks.
    for ((name, idx), series) in metrics.gauges() {
        for &(t, v) in series.samples() {
            ev.push(format!(
                "{{\"ph\":\"C\",\"pid\":0,\"name\":\"{}[{idx}]\",\"ts\":{},\
                 \"args\":{{\"value\":{v}}}}}",
                esc(name),
                ts(t),
            ));
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in ev.iter().enumerate() {
        out.push_str(e);
        if i + 1 != ev.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;
    use crate::trace::SpanKind;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn microsecond_encoding_is_exact() {
        assert_eq!(us(0), "0");
        assert_eq!(us(1_000_000), "1");
        assert_eq!(us(1_234_567), "1.234567");
        assert_eq!(us(1_500_000), "1.5");
        assert_eq!(us(800), "0.0008");
    }

    #[test]
    fn export_contains_spans_counters_and_metadata() {
        let mut tr = Tracer::new();
        tr.enable();
        let a = tr.intern("n0/t0");
        let root = tr.open_span(a, SpanKind::Comm, "send", t(0), 5).unwrap();
        tr.span_full(a, SpanKind::Comm, "wire", t(1), t(2), Some(root), 5);
        tr.close_span(root, t(3));
        let mut m = MetricsRegistry::new();
        m.gauge_set("depth", 2, t(1), 4);
        let json = chrome_trace_json(&tr, &m);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"send\""));
        assert!(json.contains("\"causal\":5"));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("depth[2]"));
        // Balanced top-level document.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut tr = Tracer::new();
            tr.enable();
            let a = tr.intern("n1/send");
            tr.span_on(a, SpanKind::Overhead, "ctx-switch", t(2), t(4));
            let mut m = MetricsRegistry::new();
            m.gauge_set("q", 0, t(2), 1);
            chrome_trace_json(&tr, &m)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\ny");
    }

    /// Minimal JSON value for the parse-back test below. Hand-rolled
    /// because the workspace deliberately has no serde: the point is to
    /// prove the export is *well-formed JSON*, not merely
    /// substring-matching.
    #[derive(Debug, PartialEq)]
    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl<'a> Parser<'a> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn eat(&mut self, c: u8) {
            self.ws();
            assert_eq!(self.b.get(self.i), Some(&c), "expected {:?}", c as char);
            self.i += 1;
        }

        fn peek(&mut self) -> u8 {
            self.ws();
            self.b[self.i]
        }

        fn value(&mut self) -> Json {
            match self.peek() {
                b'{' => {
                    self.eat(b'{');
                    let mut kv = Vec::new();
                    if self.peek() != b'}' {
                        loop {
                            let k = self.string();
                            self.eat(b':');
                            kv.push((k, self.value()));
                            if self.peek() != b',' {
                                break;
                            }
                            self.eat(b',');
                        }
                    }
                    self.eat(b'}');
                    Json::Obj(kv)
                }
                b'[' => {
                    self.eat(b'[');
                    let mut items = Vec::new();
                    if self.peek() != b']' {
                        loop {
                            items.push(self.value());
                            if self.peek() != b',' {
                                break;
                            }
                            self.eat(b',');
                        }
                    }
                    self.eat(b']');
                    Json::Arr(items)
                }
                b'"' => Json::Str(self.string()),
                b't' => {
                    self.i += 4;
                    Json::Bool(true)
                }
                b'f' => {
                    self.i += 5;
                    Json::Bool(false)
                }
                b'n' => {
                    self.i += 4;
                    Json::Null
                }
                _ => {
                    let start = self.i;
                    while self.i < self.b.len()
                        && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                    {
                        self.i += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
                    Json::Num(s.parse().expect("bad number"))
                }
            }
        }

        fn string(&mut self) -> String {
            self.eat(b'"');
            let mut out = String::new();
            loop {
                match self.b[self.i] {
                    b'"' => {
                        self.i += 1;
                        return out;
                    }
                    b'\\' => {
                        self.i += 1;
                        match self.b[self.i] {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex =
                                    std::str::from_utf8(&self.b[self.i + 1..self.i + 5]).unwrap();
                                let cp = u32::from_str_radix(hex, 16).unwrap();
                                out.push(char::from_u32(cp).unwrap());
                                self.i += 4;
                            }
                            c => panic!("bad escape \\{}", c as char),
                        }
                        self.i += 1;
                    }
                    _ => {
                        // Multi-byte UTF-8 sequences pass through verbatim.
                        let s = std::str::from_utf8(&self.b[self.i..]).unwrap();
                        let c = s.chars().next().unwrap();
                        assert!((c as u32) >= 0x20, "unescaped control char");
                        out.push(c);
                        self.i += c.len_utf8();
                    }
                }
            }
        }
    }

    fn parse_json(s: &str) -> Json {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        let v = p.value();
        p.ws();
        assert_eq!(p.i, p.b.len(), "trailing garbage after JSON document");
        v
    }

    #[test]
    fn hostile_labels_survive_a_json_round_trip() {
        // Every dynamic string sink: actor (thread_name), span label (name),
        // and gauge name (counter track) — all carrying `"`, `\`, and `\n`.
        let actor_name = "evil \"actor\"\nline2\\end";
        let label = "span \"quoted\"\nnewline\ttab";
        let gauge = "g\"auge\n";
        let mut tr = Tracer::new();
        tr.enable();
        let a = tr.intern(actor_name);
        tr.span_on(a, SpanKind::Comm, label, t(1), t(2));
        let mut m = MetricsRegistry::new();
        m.gauge_set(gauge, 0, t(1), 7);
        let json = chrome_trace_json(&tr, &m);

        let doc = parse_json(&json);
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| {
                if e.get("ph").and_then(Json::as_str) == Some("M") {
                    e.get("args")?.get("name")?.as_str()
                } else {
                    None
                }
            })
            .collect();
        assert!(names.contains(&actor_name), "thread_name mangled: {names:?}");
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("span event missing");
        assert_eq!(span.get("name").and_then(Json::as_str), Some(label));
        assert_eq!(span.get("cat").and_then(Json::as_str), Some("comm"));
        let counter = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .expect("counter event missing");
        assert_eq!(
            counter.get("name").and_then(Json::as_str),
            Some(&*format!("{gauge}[0]"))
        );
    }

    #[test]
    fn golden_shaped_export_parses_clean() {
        // The well-behaved case must also be valid JSON end to end.
        let mut tr = Tracer::new();
        tr.enable();
        let a = tr.intern("n0/t0");
        let root = tr.open_span(a, SpanKind::Comm, "send", t(0), 5).unwrap();
        tr.span_full(a, SpanKind::Comm, "wire", t(1), t(2), Some(root), 5);
        tr.close_span(root, t(3));
        let mut m = MetricsRegistry::new();
        m.gauge_set("depth", 2, t(1), 4);
        parse_json(&chrome_trace_json(&tr, &m));
    }
}
