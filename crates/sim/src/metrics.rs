//! Structured runtime metrics: counters, gauges, duration statistics, and
//! per-message causal timelines.
//!
//! [`MetricsRegistry`] is the always-on companion to the span
//! [`crate::trace::Tracer`]: where spans reconstruct *timelines*, the
//! registry aggregates *quantities* — how many, how deep, how long. It is
//! cheap enough to stay enabled by default (a `BTreeMap` probe keyed by
//! `&'static str` per update, no allocation on the hot path), so every run
//! can answer "where did the time go" without a special build.
//!
//! Four families:
//!
//! - **Counters** (`inc`): monotonic event counts (`"mps.msgs"`).
//! - **Gauges** (`gauge_set`): sampled instantaneous values with the sim
//!   time of each change (`("switch.out_cells", node)`), exportable as
//!   Chrome-trace counter tracks.
//! - **Duration stats** (`observe`): a streaming [`DurSummary`] plus a
//!   log-bucketed [`DurHistogram`] per name, reporting
//!   count/mean/p50/p95/p99/max.
//! - **Timelines** (`next_causal` / `mark` / `timeline`): per-message causal
//!   records. A producer allocates a causal id, then every layer the message
//!   crosses marks a named stage with the current sim time. Consecutive
//!   stages decompose end-to-end latency into contiguous, non-overlapping
//!   components (the paper's send/recv overhead breakdown).
//!
//! Cross-process correlation: a message's causal id is known to the sending
//! process but does not ride on the wire (the transport tag is fully
//! packed). Because all processes share one [`crate::Sim`] — and hence one
//! registry — the sender [`MetricsRegistry::bind_wire`]s the id under the
//! `(dst, tag, depart-time)` triple its transport stamps on the delivery,
//! and the receiver [`MetricsRegistry::resolve_wire`]s the same triple on
//! pickup. This is observer bookkeeping, not simulated shared memory: it
//! never influences protocol behaviour.

use std::collections::BTreeMap;

use crate::stats::{DurHistogram, DurSummary};
use crate::time::{Dur, SimTime};

/// A gauge's sample history: the value is `samples.last()` until the next
/// change; only changes are stored.
#[derive(Clone, Debug, Default)]
pub struct GaugeSeries {
    samples: Vec<(SimTime, i64)>,
}

impl GaugeSeries {
    /// All recorded `(time, value)` change points, in record order.
    pub fn samples(&self) -> &[(SimTime, i64)] {
        &self.samples
    }

    /// The most recent value (None if never set).
    pub fn last(&self) -> Option<i64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// The largest value ever recorded.
    pub fn max(&self) -> Option<i64> {
        self.samples.iter().map(|&(_, v)| v).max()
    }
}

/// Streaming summary plus histogram for one named duration series.
#[derive(Clone, Debug, Default)]
pub struct DurStat {
    summary: DurSummary,
    hist: DurHistogram,
}

impl DurStat {
    /// The streaming count/min/max/mean summary.
    pub fn summary(&self) -> &DurSummary {
        &self.summary
    }

    /// The log-bucketed histogram (conservative p50/p95/p99 upper bounds).
    pub fn hist(&self) -> &DurHistogram {
        &self.hist
    }

    /// One-line report: `n=.. mean=.. p50<=.. p95<=.. p99<=.. max=..`.
    pub fn report(&self) -> String {
        self.hist.report()
    }
}

/// One message's causal timeline: named stage boundaries in record order.
pub type Timeline = Vec<(&'static str, SimTime)>;

/// The registry. One per [`crate::Sim`], reached via `Sim::with_metrics`.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<(&'static str, u32), GaugeSeries>,
    stats: BTreeMap<&'static str, DurStat>,
    next_causal: u64,
    timelines: BTreeMap<u64, Timeline>,
    wire_keys: BTreeMap<(u64, u64, u64), u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to a named counter.
    pub fn inc(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Records gauge `(name, idx)` at value `v` as of time `t`. Consecutive
    /// identical values are coalesced, so an unchanged gauge costs one map
    /// probe and no storage.
    pub fn gauge_set(&mut self, name: &'static str, idx: u32, t: SimTime, v: i64) {
        let series = self.gauges.entry((name, idx)).or_default();
        if series.samples.last().map(|&(_, last)| last) != Some(v) {
            series.samples.push((t, v));
        }
    }

    /// Reads one gauge series.
    pub fn gauge(&self, name: &str, idx: u32) -> Option<&GaugeSeries> {
        self.gauges
            .iter()
            .find(|(&(n, i), _)| n == name && i == idx)
            .map(|(_, g)| g)
    }

    /// All gauge series, sorted by `(name, idx)`.
    pub fn gauges(&self) -> impl Iterator<Item = ((&'static str, u32), &GaugeSeries)> {
        self.gauges.iter().map(|(&k, v)| (k, v))
    }

    /// Adds one duration observation to the named stat.
    pub fn observe(&mut self, name: &'static str, d: Dur) {
        let s = self.stats.entry(name).or_default();
        s.summary.record(d);
        s.hist.record(d);
    }

    /// Reads one duration stat.
    pub fn stat(&self, name: &str) -> Option<&DurStat> {
        self.stats.get(name)
    }

    /// All duration stats, sorted by name.
    pub fn stats(&self) -> impl Iterator<Item = (&'static str, &DurStat)> {
        self.stats.iter().map(|(&k, v)| (k, v))
    }

    /// Allocates a fresh causal id (never 0; 0 means "untracked").
    pub fn next_causal(&mut self) -> u64 {
        self.next_causal += 1;
        self.next_causal
    }

    /// Marks stage `stage` of message `causal` at time `t`. Re-marking a
    /// stage overwrites it (for chunked transfers, the last chunk's
    /// boundary is the message's). `causal == 0` is ignored.
    pub fn mark(&mut self, causal: u64, stage: &'static str, t: SimTime) {
        if causal == 0 {
            return;
        }
        let tl = self.timelines.entry(causal).or_default();
        match tl.iter_mut().find(|(s, _)| *s == stage) {
            Some(slot) => slot.1 = t,
            None => tl.push((stage, t)),
        }
    }

    /// Reads one message's timeline.
    pub fn timeline(&self, causal: u64) -> Option<&Timeline> {
        self.timelines.get(&causal)
    }

    /// All timelines, sorted by causal id.
    pub fn timelines(&self) -> impl Iterator<Item = (u64, &Timeline)> {
        self.timelines.iter().map(|(&k, v)| (k, v))
    }

    /// Associates a wire-level key (conventionally `(dst-node, transport
    /// tag, depart-time ps)`) with a causal id, for the receiving process
    /// to claim on pickup.
    pub fn bind_wire(&mut self, key: (u64, u64, u64), causal: u64) {
        self.wire_keys.insert(key, causal);
    }

    /// Claims (removes) the causal id bound to a wire key, if any.
    pub fn resolve_wire(&mut self, key: (u64, u64, u64)) -> Option<u64> {
        self.wire_keys.remove(&key)
    }

    /// Checks every timeline against an expected stage order: marked stages
    /// must appear as a subsequence of `order` with non-decreasing times.
    /// Returns one description per violating timeline (empty = all clean).
    /// Used by the analysis smoke driver to catch instrumentation drift.
    pub fn validate_timelines(&self, order: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        for (&causal, tl) in &self.timelines {
            let mut cursor = 0usize;
            let mut prev: Option<(&str, SimTime)> = None;
            for &(stage, t) in tl {
                let pos = order[cursor..].iter().position(|&s| s == stage);
                match pos {
                    Some(p) => cursor += p + 1,
                    None => {
                        out.push(format!(
                            "causal {causal}: stage {stage:?} out of order (expected one of {:?})",
                            &order[cursor..]
                        ));
                        break;
                    }
                }
                if let Some((ps, pt)) = prev {
                    if t < pt {
                        out.push(format!(
                            "causal {causal}: stage {stage:?} at {t} precedes {ps:?} at {pt}"
                        ));
                        break;
                    }
                }
                prev = Some((stage, t));
            }
        }
        out
    }

    /// Human-readable summary: counters, gauge peaks, and stat reports.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for (k, v) in &self.counters {
                s.push_str(&format!("  {k:<28} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges (peak):\n");
            for (&(name, idx), g) in &self.gauges {
                s.push_str(&format!(
                    "  {:<28} {}\n",
                    format!("{name}[{idx}]"),
                    g.max().unwrap_or(0)
                ));
            }
        }
        if !self.stats.is_empty() {
            s.push_str("durations:\n");
            for (k, v) in &self.stats {
                s.push_str(&format!("  {k:<28} {}\n", v.report()));
            }
        }
        s
    }

    /// Clears everything (counters, gauges, stats, timelines, keys).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.stats.clear();
        self.timelines.clear();
        self.wire_keys.clear();
        self.next_causal = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn counters_and_stats_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("msgs", 2);
        m.inc("msgs", 3);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter("absent"), 0);
        m.observe("lat", Dur::from_micros(10));
        m.observe("lat", Dur::from_micros(30));
        let s = m.stat("lat").unwrap();
        assert_eq!(s.summary().count(), 2);
        assert_eq!(s.summary().mean(), Some(Dur::from_micros(20)));
        assert!(s.report().contains("p99<="));
    }

    #[test]
    fn gauge_coalesces_unchanged_values() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("depth", 1, t(0), 4);
        m.gauge_set("depth", 1, t(5), 4);
        m.gauge_set("depth", 1, t(9), 7);
        let g = m.gauge("depth", 1).unwrap();
        assert_eq!(g.samples().len(), 2);
        assert_eq!(g.last(), Some(7));
        assert_eq!(g.max(), Some(7));
    }

    #[test]
    fn timeline_marks_overwrite_stages() {
        let mut m = MetricsRegistry::new();
        let c = m.next_causal();
        assert_eq!(c, 1);
        m.mark(c, "a", t(1));
        m.mark(c, "b", t(2));
        m.mark(c, "b", t(4));
        assert_eq!(m.timeline(c).unwrap().as_slice(), &[("a", t(1)), ("b", t(4))]);
        m.mark(0, "ignored", t(9));
        assert_eq!(m.timelines().count(), 1);
    }

    #[test]
    fn wire_keys_resolve_once() {
        let mut m = MetricsRegistry::new();
        m.bind_wire((1, 2, 3), 7);
        assert_eq!(m.resolve_wire((1, 2, 3)), Some(7));
        assert_eq!(m.resolve_wire((1, 2, 3)), None);
    }

    #[test]
    fn timeline_validation_flags_disorder() {
        let mut m = MetricsRegistry::new();
        let a = m.next_causal();
        m.mark(a, "x", t(1));
        m.mark(a, "y", t(2));
        assert!(m.validate_timelines(&["x", "y", "z"]).is_empty());
        let b = m.next_causal();
        m.mark(b, "y", t(3));
        m.mark(b, "x", t(4));
        let v = m.validate_timelines(&["x", "y"]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("out of order"));
        let c = m.next_causal();
        m.mark(c, "x", t(9));
        m.mark(c, "y", t(4));
        assert_eq!(m.validate_timelines(&["x", "y"]).len(), 2);
    }
}
