//! Shared-resource primitives for green threads.
//!
//! [`FifoResource`] models anything with finite concurrency and FIFO
//! admission: a shared Ethernet segment (1 token), a switch output port, a
//! DMA engine, a pool of I/O buffers (N tokens). Acquisition order among
//! green threads is strictly first-come-first-served at virtual-time
//! resolution, which keeps simulations deterministic and mirrors how the
//! paper's kernel buffer pools behave.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{Ctx, Sim, ThreadId};
use crate::time::{Dur, SimTime};

struct ResourceInner {
    name: String,
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<ThreadId>,
    /// Total time × tokens integral, for utilization reporting.
    busy_integral_ps: u128,
    last_change: SimTime,
    acquisitions: u64,
    total_wait_ps: u128,
}

/// A counted, FIFO-fair resource.
#[derive(Clone)]
pub struct FifoResource {
    inner: Arc<Mutex<ResourceInner>>,
}

impl FifoResource {
    /// Creates a resource with `capacity` tokens.
    pub fn new(name: impl Into<String>, capacity: usize) -> FifoResource {
        assert!(capacity > 0, "resource needs at least one token");
        FifoResource {
            inner: Arc::new(Mutex::new(ResourceInner {
                name: name.into(),
                capacity,
                in_use: 0,
                waiters: VecDeque::new(),
                busy_integral_ps: 0,
                last_change: SimTime::ZERO,
                acquisitions: 0,
                total_wait_ps: 0,
            })),
        }
    }

    /// Acquires one token, blocking the calling green thread in FIFO order.
    pub fn acquire(&self, ctx: &Ctx) {
        let t_req = ctx.now();
        loop {
            let wake_next = {
                let mut r = self.inner.lock();
                let first_in_line = r.waiters.front().is_none_or(|&w| w == ctx.tid());
                if r.in_use < r.capacity && first_in_line {
                    if r.waiters.front() == Some(&ctx.tid()) {
                        r.waiters.pop_front();
                    }
                    Self::integrate(&mut r, ctx.now());
                    r.in_use += 1;
                    r.acquisitions += 1;
                    r.total_wait_ps += u128::from(ctx.now().since(t_req).as_ps());
                    // With spare tokens left, the next waiter is admissible
                    // too — chain the wake so multi-token releases drain.
                    if r.in_use < r.capacity {
                        r.waiters.front().copied()
                    } else {
                        None
                    }
                } else {
                    if !r.waiters.contains(&ctx.tid()) {
                        r.waiters.push_back(ctx.tid());
                    }
                    drop(r);
                    ctx.park();
                    continue;
                }
            };
            if let Some(w) = wake_next {
                ctx.wake(w);
            }
            return;
        }
    }

    /// Tries to acquire without blocking. Respects FIFO order: fails if
    /// anyone is already queued.
    pub fn try_acquire(&self, now: SimTime) -> bool {
        let mut r = self.inner.lock();
        if r.in_use < r.capacity && r.waiters.is_empty() {
            Self::integrate(&mut r, now);
            r.in_use += 1;
            r.acquisitions += 1;
            true
        } else {
            false
        }
    }

    /// Releases one token, waking the longest-waiting thread if any.
    /// Callable from green threads or event callbacks.
    pub fn release(&self, sim: &Sim) {
        let next = {
            let mut r = self.inner.lock();
            assert!(r.in_use > 0, "release of idle resource '{}'", r.name);
            Self::integrate(&mut r, sim.now());
            r.in_use -= 1;
            r.waiters.front().copied()
        };
        if let Some(tid) = next {
            // The waiter re-checks admission when it resumes; it stays at the
            // queue front so FIFO order is preserved.
            sim.wake(tid);
        }
    }

    /// Convenience: acquire, hold for `hold`, then release. Models simple
    /// serialized use (e.g. occupying a bus for a copy).
    pub fn use_for(&self, ctx: &Ctx, hold: Dur) {
        self.acquire(ctx);
        ctx.sleep(hold);
        self.release(ctx.sim());
    }

    fn integrate(r: &mut ResourceInner, now: SimTime) {
        let dt = now.saturating_since(r.last_change).as_ps();
        r.busy_integral_ps += u128::from(dt) * r.in_use as u128;
        r.last_change = now;
    }

    /// Tokens currently held.
    pub fn in_use(&self) -> usize {
        self.inner.lock().in_use
    }

    /// Number of completed acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.inner.lock().acquisitions
    }

    /// Mean utilization (busy tokens / capacity) up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let mut r = self.inner.lock();
        Self::integrate(&mut r, now);
        let elapsed = now.as_ps();
        if elapsed == 0 {
            return 0.0;
        }
        r.busy_integral_ps as f64 / (elapsed as f64 * r.capacity as f64)
    }

    /// Mean time acquirers spent queued, over completed acquisitions.
    pub fn mean_wait(&self) -> Dur {
        let r = self.inner.lock();
        if r.acquisitions == 0 {
            Dur::ZERO
        } else {
            Dur::from_ps((r.total_wait_ps / u128::from(r.acquisitions)) as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_token_serializes() {
        let sim = Sim::new();
        let res = FifoResource::new("bus", 1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u64 {
            let res = res.clone();
            let log = Arc::clone(&log);
            sim.spawn(format!("u{i}"), move |ctx| {
                // All request at t=0 in spawn order.
                res.acquire(ctx);
                log.lock().push((i, ctx.now()));
                ctx.sleep(Dur::from_micros(10));
                res.release(ctx.sim());
            });
        }
        sim.run().assert_clean();
        let log = log.lock();
        // FIFO: grant order equals spawn order, spaced by hold time.
        for (k, (i, t)) in log.iter().enumerate() {
            assert_eq!(*i, k as u64);
            assert_eq!(*t, SimTime::ZERO + Dur::from_micros(10 * k as u64));
        }
    }

    #[test]
    fn capacity_allows_parallel_holders() {
        let sim = Sim::new();
        let res = FifoResource::new("pool", 3);
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        for i in 0..9u64 {
            let res = res.clone();
            let peak = Arc::clone(&peak);
            let cur = Arc::clone(&cur);
            sim.spawn(format!("u{i}"), move |ctx| {
                res.acquire(ctx);
                let c = cur.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(c, Ordering::SeqCst);
                ctx.sleep(Dur::from_micros(5));
                cur.fetch_sub(1, Ordering::SeqCst);
                res.release(ctx.sim());
            });
        }
        let out = sim.run();
        out.assert_clean();
        assert_eq!(peak.load(Ordering::SeqCst), 3);
        // 9 holders, 3 at a time, 5us each => 15us total
        assert_eq!(out.end_time, SimTime::ZERO + Dur::from_micros(15));
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new();
        let res = FifoResource::new("r", 1);
        let res2 = res.clone();
        sim.spawn("holder", move |ctx| {
            res2.acquire(ctx);
            ctx.sleep(Dur::from_micros(10));
            res2.release(ctx.sim());
        });
        let res3 = res.clone();
        sim.spawn("waiter", move |ctx| {
            ctx.sleep(Dur::from_micros(1));
            res3.acquire(ctx);
            res3.release(ctx.sim());
        });
        let res4 = res.clone();
        sim.spawn("prober", move |ctx| {
            ctx.sleep(Dur::from_micros(2));
            assert!(!res4.try_acquire(ctx.now()), "held");
            ctx.sleep(Dur::from_micros(20));
            assert!(res4.try_acquire(ctx.now()), "free and no queue");
            res4.release(ctx.sim());
        });
        sim.run().assert_clean();
    }

    #[test]
    fn utilization_and_wait_accounting() {
        let sim = Sim::new();
        let res = FifoResource::new("link", 1);
        let r1 = res.clone();
        sim.spawn("a", move |ctx| {
            r1.use_for(ctx, Dur::from_micros(10));
        });
        let r2 = res.clone();
        sim.spawn("b", move |ctx| {
            r2.use_for(ctx, Dur::from_micros(10));
        });
        let out = sim.run();
        out.assert_clean();
        assert_eq!(out.end_time, SimTime::ZERO + Dur::from_micros(20));
        let u = res.utilization(out.end_time);
        assert!((u - 1.0).abs() < 1e-9, "fully busy, got {u}");
        // b waited 10us, a waited 0 => mean 5us
        assert_eq!(res.mean_wait(), Dur::from_micros(5));
    }

    #[test]
    #[should_panic(expected = "release of idle resource")]
    fn release_of_idle_panics() {
        let sim = Sim::new();
        let res = FifoResource::new("x", 1);
        res.release(&sim);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::kernel::Sim;
    use crate::time::{Dur, SimTime};

    #[test]
    fn chained_wakes_drain_multi_token_release_bursts() {
        // Capacity 3; six waiters queue while all tokens are held; the
        // holders release at the same instant, and all three wakeable
        // waiters must be admitted at that instant (chain-wake).
        let sim = Sim::new();
        let res = FifoResource::new("pool", 3);
        let admitted = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u64 {
            let res = res.clone();
            sim.spawn(format!("holder{i}"), move |ctx| {
                res.acquire(ctx);
                ctx.sleep(Dur::from_micros(100));
                res.release(ctx.sim());
            });
        }
        for i in 0..3u64 {
            let res = res.clone();
            let admitted = Arc::clone(&admitted);
            sim.spawn(format!("waiter{i}"), move |ctx| {
                ctx.sleep(Dur::from_micros(1));
                res.acquire(ctx);
                admitted.lock().push((i, ctx.now()));
                res.release(ctx.sim());
            });
        }
        sim.run().assert_clean();
        let admitted = admitted.lock();
        assert_eq!(admitted.len(), 3);
        for (_, t) in admitted.iter() {
            assert_eq!(*t, SimTime::ZERO + Dur::from_micros(100));
        }
    }
}
