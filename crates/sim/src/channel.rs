//! In-simulation message channels.
//!
//! [`SimChannel`] is an MPSC/MPMC queue whose blocking operations park green
//! threads on virtual time. It is the building block for NIC receive rings,
//! mailboxes and flow-controlled streams. Unlike OS channels, sends and
//! receives take zero virtual time by themselves — time costs are modeled
//! explicitly by whoever uses the channel.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{Ctx, Sim, ThreadId};
use crate::time::SimTime;

struct ChannelInner<T> {
    name: String,
    queue: VecDeque<T>,
    capacity: Option<usize>,
    recv_waiters: VecDeque<ThreadId>,
    send_waiters: VecDeque<ThreadId>,
    closed: bool,
    total_sent: u64,
    peak_depth: usize,
}

/// A blocking queue between simulated activities.
pub struct SimChannel<T> {
    inner: Arc<Mutex<ChannelInner<T>>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Error returned when operating on a closed, drained channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed")
    }
}

impl std::error::Error for Closed {}

impl<T> SimChannel<T> {
    /// Creates an unbounded channel.
    pub fn unbounded(name: impl Into<String>) -> SimChannel<T> {
        Self::build(name.into(), None)
    }

    /// Creates a bounded channel; [`SimChannel::send`] blocks when full.
    /// `capacity` must be at least 1.
    pub fn bounded(name: impl Into<String>, capacity: usize) -> SimChannel<T> {
        assert!(capacity > 0, "bounded channel needs capacity >= 1");
        Self::build(name.into(), Some(capacity))
    }

    fn build(name: String, capacity: Option<usize>) -> SimChannel<T> {
        SimChannel {
            inner: Arc::new(Mutex::new(ChannelInner {
                name,
                queue: VecDeque::new(),
                capacity,
                recv_waiters: VecDeque::new(),
                send_waiters: VecDeque::new(),
                closed: false,
                total_sent: 0,
                peak_depth: 0,
            })),
        }
    }

    /// Sends from a green thread, blocking while the channel is full.
    pub fn send(&self, ctx: &Ctx, value: T) -> Result<(), Closed> {
        let mut value = Some(value);
        loop {
            {
                let mut ch = self.inner.lock();
                if ch.closed {
                    return Err(Closed);
                }
                let full = ch.capacity.is_some_and(|c| ch.queue.len() >= c);
                if !full {
                    Self::push(&mut ch, value.take().unwrap());
                    let waiter = ch.recv_waiters.pop_front();
                    drop(ch);
                    if let Some(w) = waiter {
                        ctx.wake(w);
                    }
                    return Ok(());
                }
                ch.send_waiters.push_back(ctx.tid());
            }
            ctx.park();
        }
    }

    /// Sends from an event callback (or any non-thread context). Never
    /// blocks; returns `Err` if bounded and full (callers model the loss or
    /// back-pressure explicitly) or closed.
    pub fn offer(&self, sim: &Sim, value: T) -> Result<(), T> {
        let waiter = {
            let mut ch = self.inner.lock();
            if ch.closed || ch.capacity.is_some_and(|c| ch.queue.len() >= c) {
                return Err(value);
            }
            Self::push(&mut ch, value);
            ch.recv_waiters.pop_front()
        };
        if let Some(w) = waiter {
            sim.wake(w);
        }
        Ok(())
    }

    fn push(ch: &mut ChannelInner<T>, value: T) {
        ch.queue.push_back(value);
        ch.total_sent += 1;
        ch.peak_depth = ch.peak_depth.max(ch.queue.len());
    }

    /// Receives, blocking the calling green thread until a value or close.
    pub fn recv(&self, ctx: &Ctx) -> Result<T, Closed> {
        loop {
            {
                let mut ch = self.inner.lock();
                if let Some(v) = ch.queue.pop_front() {
                    let waiter = ch.send_waiters.pop_front();
                    drop(ch);
                    if let Some(w) = waiter {
                        ctx.wake(w);
                    }
                    return Ok(v);
                }
                if ch.closed {
                    return Err(Closed);
                }
                ch.recv_waiters.push_back(ctx.tid());
            }
            ctx.park();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, sim: &Sim) -> Option<T> {
        let (v, waiter) = {
            let mut ch = self.inner.lock();
            let v = ch.queue.pop_front()?;
            (v, ch.send_waiters.pop_front())
        };
        if let Some(w) = waiter {
            sim.wake(w);
        }
        Some(v)
    }

    /// Closes the channel: pending items remain receivable; subsequent sends
    /// fail; blocked peers wake with [`Closed`] once drained.
    pub fn close(&self, sim: &Sim) {
        let waiters: Vec<ThreadId> = {
            let mut ch = self.inner.lock();
            ch.closed = true;
            let mut ws: Vec<ThreadId> = ch.recv_waiters.drain(..).collect();
            ws.extend(ch.send_waiters.drain(..));
            ws
        };
        for w in waiters {
            sim.wake(w);
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total items ever sent.
    pub fn total_sent(&self) -> u64 {
        self.inner.lock().total_sent
    }

    /// High-water mark of queue depth.
    pub fn peak_depth(&self) -> usize {
        self.inner.lock().peak_depth
    }

    /// Channel name (diagnostics).
    pub fn name(&self) -> String {
        self.inner.lock().name.clone()
    }

    /// Current time helper for callers holding only the channel.
    pub fn now(&self, sim: &Sim) -> SimTime {
        sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn send_recv_fifo() {
        let sim = Sim::new();
        let ch: SimChannel<u32> = SimChannel::unbounded("c");
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            for i in 0..5 {
                tx.send(ctx, i).unwrap();
                ctx.sleep(Dur::from_micros(1));
            }
        });
        let rx = ch.clone();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        sim.spawn("consumer", move |ctx| {
            for _ in 0..5 {
                got2.lock().push(rx.recv(ctx).unwrap());
            }
        });
        sim.run().assert_clean();
        assert_eq!(*got.lock(), vec![0, 1, 2, 3, 4]);
        assert_eq!(ch.total_sent(), 5);
    }

    #[test]
    fn recv_blocks_until_send() {
        let sim = Sim::new();
        let ch: SimChannel<&'static str> = SimChannel::unbounded("c");
        let rx = ch.clone();
        let when = Arc::new(Mutex::new(None));
        let when2 = Arc::clone(&when);
        sim.spawn("consumer", move |ctx| {
            let v = rx.recv(ctx).unwrap();
            assert_eq!(v, "hello");
            *when2.lock() = Some(ctx.now());
        });
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            ctx.sleep(Dur::from_millis(2));
            tx.send(ctx, "hello").unwrap();
        });
        sim.run().assert_clean();
        assert_eq!(when.lock().unwrap(), SimTime::ZERO + Dur::from_millis(2));
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let sim = Sim::new();
        let ch: SimChannel<u32> = SimChannel::bounded("c", 2);
        let tx = ch.clone();
        let send_times = Arc::new(Mutex::new(Vec::new()));
        let st = Arc::clone(&send_times);
        sim.spawn("producer", move |ctx| {
            for i in 0..4 {
                tx.send(ctx, i).unwrap();
                st.lock().push(ctx.now());
            }
        });
        let rx = ch.clone();
        sim.spawn("consumer", move |ctx| {
            for _ in 0..4 {
                ctx.sleep(Dur::from_micros(10));
                rx.recv(ctx).unwrap();
            }
        });
        sim.run().assert_clean();
        let t = send_times.lock();
        // First two immediate; third waits for first recv at 10us; fourth at 20us.
        assert_eq!(t[0], SimTime::ZERO);
        assert_eq!(t[1], SimTime::ZERO);
        assert_eq!(t[2], SimTime::ZERO + Dur::from_micros(10));
        assert_eq!(t[3], SimTime::ZERO + Dur::from_micros(20));
        assert_eq!(ch.peak_depth(), 2);
    }

    #[test]
    fn offer_from_callback_wakes_receiver() {
        let sim = Sim::new();
        let ch: SimChannel<u8> = SimChannel::unbounded("c");
        let rx = ch.clone();
        let done = Arc::new(Mutex::new(false));
        let done2 = Arc::clone(&done);
        sim.spawn("consumer", move |ctx| {
            assert_eq!(rx.recv(ctx).unwrap(), 7);
            *done2.lock() = true;
        });
        let tx = ch.clone();
        sim.schedule_in(Dur::from_micros(5), move |sim| {
            tx.offer(sim, 7).unwrap();
        });
        sim.run().assert_clean();
        assert!(*done.lock());
    }

    #[test]
    fn offer_full_bounded_fails() {
        let sim = Sim::new();
        let ch: SimChannel<u8> = SimChannel::bounded("c", 1);
        let tx = ch.clone();
        sim.schedule_in(Dur::from_micros(1), move |sim| {
            assert!(tx.offer(sim, 1).is_ok());
            assert_eq!(tx.offer(sim, 2), Err(2));
        });
        let rx = ch.clone();
        sim.spawn("drain", move |ctx| {
            ctx.sleep(Dur::from_micros(2));
            assert_eq!(rx.recv(ctx).unwrap(), 1);
        });
        sim.run().assert_clean();
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let sim = Sim::new();
        let ch: SimChannel<u8> = SimChannel::unbounded("c");
        let rx = ch.clone();
        let got_closed = Arc::new(Mutex::new(false));
        let gc = Arc::clone(&got_closed);
        sim.spawn("consumer", move |ctx| {
            assert_eq!(rx.recv(ctx), Err(Closed));
            *gc.lock() = true;
        });
        let cl = ch.clone();
        sim.schedule_in(Dur::from_micros(1), move |sim| cl.close(sim));
        sim.run().assert_clean();
        assert!(*got_closed.lock());
    }

    #[test]
    fn close_drains_pending_items_first() {
        let sim = Sim::new();
        let ch: SimChannel<u8> = SimChannel::unbounded("c");
        let tx = ch.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| {
            tx.offer(sim, 1).unwrap();
            tx.offer(sim, 2).unwrap();
            tx.close(sim);
        });
        let rx = ch.clone();
        sim.spawn("consumer", move |ctx| {
            ctx.sleep(Dur::from_micros(1));
            assert_eq!(rx.recv(ctx), Ok(1));
            assert_eq!(rx.recv(ctx), Ok(2));
            assert_eq!(rx.recv(ctx), Err(Closed));
        });
        sim.run().assert_clean();
    }

    #[test]
    fn try_recv_nonblocking() {
        let sim = Sim::new();
        let ch: SimChannel<u8> = SimChannel::unbounded("c");
        let c2 = ch.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| {
            assert!(c2.try_recv(sim).is_none());
            c2.offer(sim, 9).unwrap();
            assert_eq!(c2.try_recv(sim), Some(9));
        });
        sim.run().assert_clean();
    }
}
