//! Deterministic, splittable pseudo-random numbers for the simulation.
//!
//! Every stochastic model component (Ethernet backoff, workload generators,
//! jitter) draws from a [`SimRng`] derived from the experiment seed, so a
//! whole simulation replays bit-identically from its seed alone.

/// A small, fast, deterministic RNG (SplitMix64 core).
///
/// SplitMix64 passes BigCrush and is the standard seeder for the xoshiro
/// family; its statistical quality is far beyond what the network models
/// need, and it is trivially portable and allocation-free.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates an RNG from a seed. Two RNGs with the same seed produce the
    /// same sequence forever.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Derives an independent child RNG labeled by `tag`. Deriving with the
    /// same tag twice yields the same child; distinct tags yield streams
    /// that do not overlap in practice.
    pub fn split(&self, tag: u64) -> SimRng {
        let mut child = SimRng {
            state: self.state ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // Burn a few outputs so closely-related seeds decorrelate.
        child.next_u64();
        child.next_u64();
        child
    }

    /// Derives a child RNG from a string label (e.g. a node name).
    pub fn split_str(&self, tag: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.split(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_stable_and_independent() {
        let root = SimRng::new(7);
        let mut c1 = root.split(1);
        let mut c1_again = root.split(1);
        let mut c2 = root.split(2);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_str_stable() {
        let root = SimRng::new(7);
        assert_eq!(
            root.split_str("node0").next_u64(),
            root.split_str("node0").next_u64()
        );
        assert_ne!(
            root.split_str("node0").next_u64(),
            root.split_str("node1").next_u64()
        );
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = SimRng::new(3);
        for bound in [1u64, 2, 3, 10, 1_000_000] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_index(8)] += 1;
        }
        for &c in &counts {
            // expect 10_000 each; allow 5% slack
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(9);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
