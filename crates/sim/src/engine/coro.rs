//! Stackful coroutines: the in-process green-thread engine.
//!
//! One green thread = one [`Coroutine`] = one 2 MiB `mmap`ed stack plus a
//! saved stack pointer. Transferring control either way is
//! [`ncs_coro_switch`]: push the six SysV callee-saved registers and the
//! FPU control words, swap `rsp`, pop, `ret` — roughly twenty instructions
//! and no syscall, versus the park/unpark Condvar round trip through the OS
//! scheduler that the fallback engine pays per dispatch.
//!
//! # Stack-overflow story
//!
//! Each stack is an anonymous private mapping of 2 MiB + one page, created
//! lazily by the kernel (untouched pages cost no RSS — 256 green threads
//! reserve 512 MiB of address space but commit only what they use). The
//! lowest page is `mprotect`ed `PROT_NONE`: running off the end of the
//! stack faults loudly on the guard page instead of silently corrupting a
//! neighbouring mapping. A 64-byte `0xA5` canary sits just above the guard
//! and is verified after every switch back to the kernel, catching
//! near-misses (deep recursion that stopped short of the guard) early.
//!
//! # Safety invariants
//!
//! This is the crate's one `unsafe` island (the crate root is
//! `deny(unsafe_code)`, relaxed from `forbid` for exactly this module).
//! The soundness argument:
//!
//! * A [`ResumeToken`] is a raw pointer into the heap-boxed [`CoroShared`];
//!   the box's address is stable for the life of the owning [`Coroutine`].
//!   Tokens are only ever used by the kernel loop (resume) or by the
//!   running green thread itself (yield), both strictly inside the window
//!   where the owning `ThreadSlot` is alive and marked `Running` — the
//!   kernel's one-runnable-at-a-time protocol is what rules out aliasing.
//! * `CURRENT` is saved and restored around every resume, so simulations
//!   nested inside a green thread (a sim constructed and run from within
//!   another sim's coroutine) keep their yields routed correctly.
//! * The trampoline never returns: user code runs inside `catch_unwind`
//!   (the kernel wraps it), so no unwind can cross the assembly frame; the
//!   initial stack frame carries a null return address as a backstop and
//!   the final switch is followed by `process::abort`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

// The context switch. `ncs_coro_switch(save_sp, to_sp)` stores the current
// continuation (callee-saved registers + mxcsr/x87cw + rsp) and resumes the
// one whose stack pointer is `to_sp`. Caller-saved registers are clobbered
// by virtue of this being an `extern "C"` call.
core::arch::global_asm!(
    ".text",
    ".balign 16",
    ".globl ncs_coro_switch",
    ".type ncs_coro_switch,@function",
    "ncs_coro_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "sub rsp, 8",
    "stmxcsr [rsp]",
    "fnstcw [rsp+4]",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "ldmxcsr [rsp]",
    "fldcw [rsp+4]",
    "add rsp, 8",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".size ncs_coro_switch,.-ncs_coro_switch",
);

extern "C" {
    fn ncs_coro_switch(save_sp: *mut usize, to_sp: usize);
}

const PAGE: usize = 4096;
/// Matches the old OS-thread engine's `.stack_size(2 MiB)`.
const STACK_BYTES: usize = 2 * 1024 * 1024;
const CANARY_BYTES: usize = 64;
const CANARY_BYTE: u8 = 0xA5;

static LIVE_STACKS: AtomicUsize = AtomicUsize::new(0);

/// See [`crate::engine::live_coroutine_stacks`].
pub(crate) fn live_stacks() -> usize {
    LIVE_STACKS.load(Ordering::SeqCst)
}

// Raw Linux syscalls: ncs-sim does not (and should not) depend on libc for
// three calls with fixed arguments.

unsafe fn sys_mmap_anon(len: usize) -> *mut u8 {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") 9isize => ret,          // SYS_mmap
        in("rdi") 0usize,
        in("rsi") len,
        in("rdx") 3usize,                        // PROT_READ | PROT_WRITE
        in("r10") 0x22usize,                     // MAP_PRIVATE | MAP_ANONYMOUS
        in("r8") -1isize,
        in("r9") 0usize,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    assert!(ret > 0, "mmap of a coroutine stack failed: errno {}", -ret);
    ret as *mut u8
}

unsafe fn sys_mprotect_none(addr: *mut u8, len: usize) {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") 10isize => ret,         // SYS_mprotect
        in("rdi") addr,
        in("rsi") len,
        in("rdx") 0usize,                        // PROT_NONE
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    assert!(ret == 0, "mprotect of a guard page failed: errno {}", -ret);
}

unsafe fn sys_munmap(addr: *mut u8, len: usize) {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") 11isize => ret,         // SYS_munmap
        in("rdi") addr,
        in("rsi") len,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    debug_assert!(ret == 0, "munmap of a coroutine stack failed: errno {}", -ret);
}

/// A guarded, canaried coroutine stack.
struct Stack {
    base: *mut u8,
    len: usize,
}

impl Stack {
    fn new() -> Stack {
        let len = STACK_BYTES + PAGE; // the lowest page becomes the guard
        let base = unsafe { sys_mmap_anon(len) };
        unsafe {
            sys_mprotect_none(base, PAGE);
            std::ptr::write_bytes(base.add(PAGE), CANARY_BYTE, CANARY_BYTES);
        }
        LIVE_STACKS.fetch_add(1, Ordering::SeqCst);
        Stack { base, len }
    }

    /// One past the highest usable byte; page-aligned, hence 16-aligned.
    fn top(&self) -> usize {
        self.base as usize + self.len
    }

    fn check_canary(&self) {
        let canary = unsafe { std::slice::from_raw_parts(self.base.add(PAGE), CANARY_BYTES) };
        assert!(
            canary.iter().all(|&b| b == CANARY_BYTE),
            "coroutine stack canary clobbered: a green thread came within \
             {CANARY_BYTES} bytes of its guard page"
        );
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        LIVE_STACKS.fetch_sub(1, Ordering::SeqCst);
        unsafe { sys_munmap(self.base, self.len) };
    }
}

/// State shared between the kernel side and the coroutine side of one green
/// thread. Heap-boxed for address stability; reached through raw pointers
/// from [`ResumeToken`] and `CURRENT`.
pub(crate) struct CoroShared {
    /// Suspended coroutine's stack pointer (or the initial frame).
    coro_sp: usize,
    /// The kernel-side continuation while the coroutine runs.
    kernel_sp: usize,
    /// Sticky cancellation request: the next yield observes it and unwinds.
    cancel: bool,
    /// Set by the trampoline when the entry closure has returned; the stack
    /// can then be reclaimed.
    finished: bool,
    /// The green thread's body; `Some` until first entry. Called with
    /// `started = false` when cancelled before ever running.
    entry: Option<Box<dyn FnOnce(bool) + Send>>,
    stack: Stack,
}

/// Owning handle to one coroutine, stored in the kernel's thread table.
pub(crate) struct Coroutine {
    shared: Box<CoroShared>,
}

// A Coroutine migrates between OS threads only while suspended (the thread
// table is behind a Mutex and the kernel runs one event at a time), and the
// raw pointers it holds target its own heap box. The suspended stack holds
// only `Send` data: the entry closure is `Send` and everything a green
// thread captures reaches it through `Send` closures.
#[allow(unsafe_code)]
unsafe impl Send for Coroutine {}

thread_local! {
    /// The coroutine currently running on this OS thread, if any. Saved and
    /// restored around every resume so nested simulations work.
    static CURRENT: Cell<*mut CoroShared> = const { Cell::new(std::ptr::null_mut()) };
}

/// First frame of every coroutine; entered exactly once via the crafted
/// initial stack, with `CURRENT` already pointing at its `CoroShared`.
extern "C" fn trampoline() -> ! {
    let shared = CURRENT.with(|c| c.get());
    unsafe {
        let sh = &mut *shared;
        let entry = sh.entry.take().expect("coroutine entered twice");
        let started = !sh.cancel;
        entry(started);
        sh.finished = true;
        ncs_coro_switch(&mut sh.coro_sp, sh.kernel_sp);
    }
    // The kernel never resumes a finished coroutine.
    std::process::abort();
}

impl Coroutine {
    /// Allocates the stack and crafts the initial frame; the entry closure
    /// does not run until the first [`ResumeToken::resume`].
    pub(crate) fn new(entry: Box<dyn FnOnce(bool) + Send>) -> Coroutine {
        let stack = Stack::new();
        let top = stack.top();
        unsafe {
            // Laid out so the switch's restore path (`add rsp,8`, six pops,
            // `ret`) lands in `trampoline` with a SysV-aligned stack and a
            // null word above the return address (stops stack walkers).
            let p = |off: usize| (top - off) as *mut u64;
            *p(8) = 0; // fake caller
            *p(16) = trampoline as *const () as usize as u64;
            for off in [24, 32, 40, 48, 56, 64] {
                *p(off) = 0; // rbp, rbx, r12..r15
            }
            // mxcsr (default 0x1F80) at +0, x87 control word (0x037F) at +4.
            *p(72) = 0x1F80 | (0x037F << 32);
        }
        let shared = Box::new(CoroShared {
            coro_sp: top - 72,
            kernel_sp: 0,
            cancel: false,
            finished: false,
            entry: Some(entry),
            stack,
        });
        Coroutine { shared }
    }

    pub(crate) fn token(&self) -> ResumeToken {
        ResumeToken(&*self.shared as *const CoroShared as *mut CoroShared)
    }
}

/// Raw handle for one control transfer; see the module safety invariants.
#[derive(Clone, Copy)]
pub(crate) struct ResumeToken(*mut CoroShared);

impl ResumeToken {
    /// Kernel side: runs the coroutine until it yields or finishes. Returns
    /// `true` when it finished (the owning [`Coroutine`] may be dropped to
    /// reclaim the stack). `cancel` requests unwinding: the coroutine's next
    /// (or first) scheduling point raises the kernel's cancellation payload.
    pub(crate) fn resume(self, cancel: bool) -> bool {
        unsafe {
            let sh = &mut *self.0;
            debug_assert!(!sh.finished, "resume of a finished coroutine");
            if cancel {
                sh.cancel = true;
            }
            let prev = CURRENT.with(|c| c.replace(self.0));
            ncs_coro_switch(&mut sh.kernel_sp, sh.coro_sp);
            CURRENT.with(|c| c.set(prev));
            sh.stack.check_canary();
            sh.finished
        }
    }

    /// Coroutine side: hands control back to the kernel. Returns `false`
    /// when the wake-up carries a cancellation request (the caller must
    /// unwind via the kernel's cancel payload).
    pub(crate) fn yield_back(self) -> bool {
        let cur = CURRENT.with(|c| c.get());
        assert!(
            cur == self.0,
            "green-thread yield from outside the thread itself"
        );
        unsafe {
            let sh = &mut *self.0;
            ncs_coro_switch(&mut sh.coro_sp, sh.kernel_sp);
            !(*self.0).cancel
        }
    }
}
