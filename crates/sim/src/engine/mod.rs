//! Green-thread execution engines behind the kernel's `GreenEngine` seam.
//!
//! The kernel's scheduling contract — strict baton semantics, at most one
//! runnable activity, deterministic `(time, seq)` order — is engine-agnostic.
//! What an engine provides is only the *mechanism* that suspends and resumes
//! a green thread's blocking Rust closure:
//!
//! * [`EngineKind::Coroutine`] (default on x86_64 Linux) — in-process
//!   stackful coroutines: a ~20-instruction userspace context switch onto a
//!   dedicated 2 MiB guarded stack ([`coro`]). Handing control to a green
//!   thread costs nanoseconds and never enters the OS scheduler.
//! * [`EngineKind::OsThread`] — the original engine: one parked OS thread
//!   per green thread, woken through a Condvar baton ([`os_thread`]). Kept
//!   as a fallback for platforms without a context-switch layer and for
//!   differential testing against the coroutine engine.
//!
//! Both engines produce byte-identical traces: the event sequence, trace
//! hash, tracer spans, and `DecisionLog`s are functions of the kernel's
//! scheduling decisions alone, which the engine does not influence.

use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[allow(unsafe_code)] // the one sanctioned unsafe island: the context switch
pub(crate) mod coro;
pub(crate) mod os_thread;

/// Stub for platforms without a ported context-switch layer; selecting the
/// coroutine engine there is a configuration error.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub(crate) mod coro {
    pub(crate) struct Coroutine;
    #[derive(Clone, Copy)]
    pub(crate) struct ResumeToken;
    pub(crate) fn live_stacks() -> usize {
        0
    }
    impl Coroutine {
        pub(crate) fn new(_entry: Box<dyn FnOnce(bool) + Send>) -> Coroutine {
            panic!("the coroutine engine is only ported to x86_64 Linux; use EngineKind::OsThread")
        }
        pub(crate) fn token(&self) -> ResumeToken {
            ResumeToken
        }
    }
    impl ResumeToken {
        pub(crate) fn resume(self, _cancel: bool) -> bool {
            unreachable!("stub coroutine cannot run")
        }
        pub(crate) fn yield_back(self) -> bool {
            unreachable!("stub coroutine cannot run")
        }
    }
}

/// Which mechanism backs a simulation's green threads. See the module docs;
/// the choice never affects simulation semantics, only speed and footprint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// In-process stackful coroutines (default where supported).
    Coroutine,
    /// One parked OS thread per green thread (fallback / differential tests).
    OsThread,
}

/// Process-wide default for [`crate::Sim::new`]: 0 = undecided,
/// 1 = coroutine, 2 = OS thread.
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(0);

fn platform_default() -> EngineKind {
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        EngineKind::Coroutine
    } else {
        EngineKind::OsThread
    }
}

/// The engine [`crate::Sim::new`] uses. Decided on first call: the
/// `NCS_GREEN_ENGINE` environment variable (`coro` / `os`) wins, otherwise
/// the platform default (coroutines on x86_64 Linux).
pub fn default_engine() -> EngineKind {
    match DEFAULT_ENGINE.load(Ordering::SeqCst) {
        1 => EngineKind::Coroutine,
        2 => EngineKind::OsThread,
        _ => {
            let kind = match std::env::var("NCS_GREEN_ENGINE").ok().as_deref() {
                Some("coro") | Some("coroutine") => EngineKind::Coroutine,
                Some("os") | Some("os-thread") | Some("os_thread") => EngineKind::OsThread,
                Some(other) => {
                    panic!("NCS_GREEN_ENGINE must be 'coro' or 'os', got {other:?}")
                }
                None => platform_default(),
            };
            set_default_engine(kind);
            kind
        }
    }
}

/// Overrides the process-wide default engine (differential harnesses flip
/// this between runs). Only affects simulations created afterwards.
pub fn set_default_engine(kind: EngineKind) {
    let v = match kind {
        EngineKind::Coroutine => 1,
        EngineKind::OsThread => 2,
    };
    DEFAULT_ENGINE.store(v, Ordering::SeqCst);
}

/// Number of coroutine stacks currently mapped, across all simulations.
/// Diagnostic for leak regression tests: after a simulation is finished
/// (or its creator handle dropped), its stacks must be unmapped.
pub fn live_coroutine_stacks() -> usize {
    coro::live_stacks()
}

/// The mechanism backing one green thread.
pub(crate) enum GreenThread {
    /// A stackful coroutine; holds its stack until reaped.
    Coro(coro::Coroutine),
    /// A parked OS thread; holds the join handle until [`crate::Sim::finish`].
    Os(os_thread::OsThread),
    /// Reaped: the coroutine's stack was reclaimed or the OS thread joined.
    Done,
}

/// A grabbed-under-lock handle used to transfer control without holding the
/// thread-table lock across the switch.
pub(crate) enum ResumeHandle {
    Coro(coro::ResumeToken),
    Os(std::sync::Arc<os_thread::Baton>),
}

impl GreenThread {
    pub(crate) fn resume_handle(&self) -> ResumeHandle {
        match self {
            GreenThread::Coro(c) => ResumeHandle::Coro(c.token()),
            GreenThread::Os(o) => ResumeHandle::Os(o.baton()),
            GreenThread::Done => unreachable!("resume of a reaped green thread"),
        }
    }
}
