//! The fallback green-thread engine: one parked OS thread per green thread.
//!
//! This is the original mechanism the coroutine engine replaced as default.
//! Each green thread gets a dedicated OS thread that spends its life parked
//! on a [`Baton`]; the kernel grants the baton to run it and waits on the
//! shared [`KernelGate`] until control comes back. Every dispatch is two
//! Condvar round trips through the OS scheduler (~10 µs), which is why the
//! coroutine engine exists — but the OS-thread engine needs no `unsafe` and
//! works on every platform, so it remains selectable (`EngineKind::OsThread`
//! / `NCS_GREEN_ENGINE=os`) and anchors the engine-differential tests.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// One-slot baton used to hand control to a green thread.
pub(crate) struct Baton {
    state: Mutex<BatonMsg>,
    cv: Condvar,
}

#[derive(PartialEq, Eq, Clone, Copy)]
pub(crate) enum BatonMsg {
    Wait,
    Go,
    Cancel,
}

impl Baton {
    pub(crate) fn new() -> Arc<Baton> {
        Arc::new(Baton {
            state: Mutex::new(BatonMsg::Wait),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn grant(&self, msg: BatonMsg) {
        let mut st = self.state.lock();
        debug_assert!(*st == BatonMsg::Wait);
        *st = msg;
        self.cv.notify_one();
    }

    /// Blocks until granted; returns `false` if the grant was a cancellation.
    pub(crate) fn wait(&self) -> bool {
        let mut st = self.state.lock();
        while *st == BatonMsg::Wait {
            self.cv.wait(&mut st);
        }
        let go = *st == BatonMsg::Go;
        *st = BatonMsg::Wait;
        go
    }
}

/// Gate the kernel loop waits on while a green thread holds the baton.
pub(crate) struct KernelGate {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl KernelGate {
    pub(crate) fn new() -> KernelGate {
        KernelGate {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn signal(&self) {
        let mut f = self.flag.lock();
        *f = true;
        self.cv.notify_one();
    }

    pub(crate) fn wait(&self) {
        let mut f = self.flag.lock();
        while !*f {
            self.cv.wait(&mut f);
        }
        *f = false;
    }
}

/// One green thread's backing OS thread.
pub(crate) struct OsThread {
    baton: Arc<Baton>,
    join_handle: Option<std::thread::JoinHandle<()>>,
}

impl OsThread {
    /// Spawns the backing OS thread. `body` runs the whole green-thread
    /// protocol: first baton wait, user closure, exit bookkeeping, and the
    /// final kernel-gate signal.
    pub(crate) fn spawn(name: &str, baton: Arc<Baton>, body: impl FnOnce() + Send + 'static) -> OsThread {
        // The fallback engine is the one sanctioned OS-thread spawn site in
        // the simulator (file-scoped exemption in the ncs-lint rules).
        let handle = std::thread::Builder::new() // ncs-lint: allow(thread-spawn)
            .name(format!("sim-{name}"))
            .stack_size(2 * 1024 * 1024)
            .spawn(body)
            .expect("failed to spawn OS thread for green thread");
        OsThread {
            baton,
            join_handle: Some(handle),
        }
    }

    pub(crate) fn baton(&self) -> Arc<Baton> {
        Arc::clone(&self.baton)
    }

    pub(crate) fn take_join_handle(&mut self) -> Option<std::thread::JoinHandle<()>> {
        self.join_handle.take()
    }
}
