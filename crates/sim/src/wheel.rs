//! The kernel's event queue: a hierarchical timer wheel with pooled,
//! freelist-recycled event records.
//!
//! # Why not a binary heap
//!
//! The original kernel funnelled every event through a
//! `Mutex<BinaryHeap<HeapEntry>>`: every push/pop pays `O(log n)` sift
//! moves of 40-byte entries, and the entries themselves churn through the
//! allocator as the heap's backing `Vec` grows and shrinks. At the
//! 256-host scale of `xp_scale` the queue holds tens of thousands of
//! pending events and the heap becomes the hottest structure in the
//! simulator.
//!
//! [`TimerWheel`] follows the hashed-timing-wheel lineage of Varghese &
//! Lauck (SOSP '87) as adapted by discrete-event simulators (calendar
//! queues):
//!
//! * **near-future calendar buckets** — a power-of-two ring of
//!   [`SLOTS`] buckets, each covering one *tick* of `2^tick_shift`
//!   picoseconds. An event lands in its bucket with one freelist pop and
//!   one `Vec` push: `O(1)`, no ordering work at insert time.
//! * **overflow tree** — events beyond the wheel's horizon go into a
//!   `BTreeMap` keyed by tick, whole ticks at a time. They migrate into
//!   the ring lazily as the cursor advances, so each far-future event is
//!   touched at most once more than a heap would touch it.
//! * **pooled records** — event payloads live in a slab (`Vec<Rec<T>>`)
//!   threaded with an intrusive freelist. Steady-state scheduling
//!   performs **no allocator traffic**: records, bucket vectors, and the
//!   drain buffer are all recycled. (A `Call` event's boxed closure is
//!   still one allocation — unavoidable under `forbid(unsafe_code)` — but
//!   `Resume`/`Count` events, the vast majority, are allocation-free.)
//!
//! # Exact `(time, seq)` FIFO
//!
//! Pop order is *identical* to the heap it replaced: strictly ascending
//! `(time, seq)`. A bucket is heapified once, when the cursor reaches it
//! (`O(k)` for a `k`-event bucket); events scheduled into the bucket
//! *while it drains* — the common `schedule_at(now)` case — are `O(log k)`
//! heap inserts, where `k` is one bucket's population rather than the
//! whole queue's. The golden-trace suite pins the order byte-for-byte,
//! and a property test replays random workloads against a reference
//! `BinaryHeap` model.
//!
//! # Cancellation
//!
//! [`TimerWheel::push`] returns a [`Token`] (slab index + generation).
//! [`TimerWheel::cancel`] tombstones the record and hands the payload
//! back immediately; the tombstone is reclaimed when its bucket drains.
//! Generations make stale tokens (slot already recycled) harmless.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Log2 of the ring size.
const SLOT_BITS: u32 = 10;
/// Number of near-future buckets in the ring.
pub const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Freelist terminator.
const NIL: u32 = u32::MAX;

/// Handle to a scheduled event, for [`TimerWheel::cancel`]. A token is
/// invalidated when its event pops or is cancelled; using it afterwards
/// is a harmless no-op (generation mismatch).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Token {
    idx: u32,
    gen: u32,
}

enum Body<T> {
    /// A live event carrying its payload.
    Live(T),
    /// Cancelled but still referenced by a bucket; reclaimed on drain.
    Tombstone,
    /// On the freelist.
    Free { next: u32 },
}

struct Rec<T> {
    gen: u32,
    time: u64,
    seq: u64,
    body: Body<T>,
}

/// A hierarchical timer wheel ordering events by `(time, seq)`.
///
/// `time` is an arbitrary u64 instant (the kernel uses picoseconds),
/// `seq` a unique tie-breaker. Events may only be pushed at
/// `time >= last popped time` (the kernel's no-scheduling-into-the-past
/// rule); earlier times are clamped into the current tick, where the
/// `(time, seq)` sort still ranks them first.
pub struct TimerWheel<T> {
    slab: Vec<Rec<T>>,
    free_head: u32,
    /// Ring of buckets; bucket `tick & SLOT_MASK` holds events of `tick`
    /// for ticks in `[cur_tick, cur_tick + SLOTS)`.
    slots: Vec<Vec<u32>>,
    /// Occupancy bitmap over `slots` (bit = bucket non-empty).
    occ: [u64; SLOTS / 64],
    /// The tick currently draining; all its events live in `current`.
    cur_tick: u64,
    /// Drain heap for `cur_tick`: a min-heap over `(time, seq)` (the slab
    /// index rides along). Small — one bucket's population, not the whole
    /// queue's. Its backing buffer is reused across buckets.
    current: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Events beyond the ring's horizon, whole ticks at a time.
    overflow: BTreeMap<u64, Vec<u32>>,
    len: usize,
    peak_len: usize,
    tick_shift: u32,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// A wheel with the default tick of 2^20 ps (≈1 µs), sized for
    /// cell-level ATM timing: the ring then spans ≈1 ms of near future.
    pub fn new() -> TimerWheel<T> {
        TimerWheel::with_tick_shift(20)
    }

    /// A wheel whose ticks span `2^tick_shift` time units.
    pub fn with_tick_shift(tick_shift: u32) -> TimerWheel<T> {
        assert!(tick_shift < 54, "tick must stay below the time range");
        TimerWheel {
            slab: Vec::new(),
            free_head: NIL,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; SLOTS / 64],
            cur_tick: 0,
            current: BinaryHeap::new(),
            overflow: BTreeMap::new(),
            len: 0,
            peak_len: 0,
            tick_shift,
        }
    }

    /// Number of live (scheduled, uncancelled) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of [`TimerWheel::len`] over the wheel's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    fn alloc(&mut self, time: u64, seq: u64, item: T) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let rec = &mut self.slab[idx as usize];
            match rec.body {
                Body::Free { next } => self.free_head = next,
                _ => unreachable!("freelist head not free"),
            }
            rec.time = time;
            rec.seq = seq;
            rec.body = Body::Live(item);
            idx
        } else {
            let idx = u32::try_from(self.slab.len()).expect("slab exhausted");
            self.slab.push(Rec {
                gen: 0,
                time,
                seq,
                body: Body::Live(item),
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) -> Option<T> {
        let rec = &mut self.slab[idx as usize];
        let body = std::mem::replace(&mut rec.body, Body::Free {
            next: self.free_head,
        });
        rec.gen = rec.gen.wrapping_add(1);
        self.free_head = idx;
        match body {
            Body::Live(item) => Some(item),
            Body::Tombstone => None,
            Body::Free { .. } => unreachable!("double free"),
        }
    }

    /// Schedules `item` at `(time, seq)`. `seq` must be unique across all
    /// pushes (the kernel's program-order counter guarantees this).
    pub fn push(&mut self, time: u64, seq: u64, item: T) -> Token {
        let tick = (time >> self.tick_shift).max(self.cur_tick);
        let idx = self.alloc(time, seq, item);
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        if tick == self.cur_tick {
            // The draining tick: heap-insert at exact rank.
            self.current.push(Reverse((time, seq, idx)));
        } else if tick < self.cur_tick + SLOTS as u64 {
            let s = (tick & SLOT_MASK) as usize;
            self.slots[s].push(idx);
            self.occ[s / 64] |= 1u64 << (s % 64);
        } else {
            self.overflow.entry(tick).or_default().push(idx);
        }
        Token {
            idx,
            gen: self.slab[idx as usize].gen,
        }
    }

    /// Cancels the event behind `token`, returning its payload if it was
    /// still pending. Stale tokens (event already popped or cancelled)
    /// return `None`.
    pub fn cancel(&mut self, token: Token) -> Option<T> {
        let rec = self.slab.get_mut(token.idx as usize)?;
        if rec.gen != token.gen || !matches!(rec.body, Body::Live(_)) {
            return None;
        }
        let body = std::mem::replace(&mut rec.body, Body::Tombstone);
        self.len -= 1;
        match body {
            Body::Live(item) => Some(item),
            _ => unreachable!(),
        }
    }

    /// Moves every overflow tick that now falls inside the ring's window
    /// into its bucket. Called whenever `cur_tick` advances.
    fn migrate_window(&mut self) {
        let end = self.cur_tick + SLOTS as u64;
        while let Some((&tick, _)) = self.overflow.first_key_value() {
            if tick >= end {
                break;
            }
            let ids = self.overflow.pop_first().expect("checked non-empty").1;
            let s = (tick & SLOT_MASK) as usize;
            self.slots[s].extend_from_slice(&ids);
            self.occ[s / 64] |= 1u64 << (s % 64);
        }
    }

    /// First occupied bucket at a tick in `[from, cur_tick + SLOTS)`,
    /// found by word-scanning the occupancy bitmap.
    fn next_occupied(&self, from: u64) -> Option<u64> {
        let end = self.cur_tick + SLOTS as u64;
        let mut tick = from;
        while tick < end {
            let s = (tick & SLOT_MASK) as usize;
            let bit = s % 64;
            let word = self.occ[s / 64] >> bit;
            if word != 0 {
                let cand = tick + u64::from(word.trailing_zeros());
                return (cand < end).then_some(cand);
            }
            tick += 64 - bit as u64;
        }
        None
    }

    /// Loads bucket `tick` into the drain heap (one `O(k)` heapify; the
    /// heap's backing buffer is recycled across buckets).
    fn load_bucket(&mut self, tick: u64) {
        self.cur_tick = tick;
        self.migrate_window();
        let s = (tick & SLOT_MASK) as usize;
        debug_assert!(self.current.is_empty());
        let mut buf = std::mem::take(&mut self.current).into_vec();
        let slab = &self.slab;
        buf.extend(self.slots[s].drain(..).map(|i| {
            let r = &slab[i as usize];
            Reverse((r.time, r.seq, i))
        }));
        self.occ[s / 64] &= !(1u64 << (s % 64));
        self.current = BinaryHeap::from(buf);
    }

    /// Ensures the top of `current` is the live minimum event, advancing
    /// the cursor and reclaiming tombstones as needed. Returns `false`
    /// when no live event remains anywhere.
    fn settle(&mut self) -> bool {
        loop {
            while let Some(&Reverse((_, _, idx))) = self.current.peek() {
                if matches!(self.slab[idx as usize].body, Body::Live(_)) {
                    return true;
                }
                self.current.pop();
                self.release(idx);
            }
            // Drained the whole tick: advance to the next occupied bucket,
            // or jump the cursor to the overflow's first tick.
            if let Some(tick) = self.next_occupied(self.cur_tick + 1) {
                self.load_bucket(tick);
            } else if let Some((&tick, _)) = self.overflow.first_key_value() {
                self.load_bucket(tick);
            } else {
                return false;
            }
        }
    }

    /// `(time, seq)` of the earliest live event, without removing it.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        if !self.settle() {
            return None;
        }
        let &Reverse((time, seq, _)) = self.current.peek().expect("settle guarantees a top");
        Some((time, seq))
    }

    /// Sequence numbers of every live event sharing the earliest live
    /// timestamp, in ascending `seq` order.
    ///
    /// This is the *tie-break group*: the set of events a schedule-
    /// exploration policy may legally pop next without reordering time.
    /// All members provably live in the drain heap (`current`) — events
    /// parked in future buckets or the overflow tree have strictly later
    /// timestamps — so the scan is `O(current bucket)`, a cost paid only
    /// by exploration runs, never by the default scheduler.
    pub fn head_seqs(&mut self) -> Vec<u64> {
        if !self.settle() {
            return Vec::new();
        }
        let &Reverse((head_time, _, _)) = self.current.peek().expect("settle guarantees a top");
        let slab = &self.slab;
        let mut seqs: Vec<u64> = self
            .current
            .iter()
            .filter(|&&Reverse((t, _, idx))| {
                t == head_time && matches!(slab[idx as usize].body, Body::Live(_))
            })
            .map(|&Reverse((_, s, _))| s)
            .collect();
        seqs.sort_unstable();
        seqs
    }

    /// Removes and returns the live event with sequence number `seq`,
    /// which must belong to the current head group (see
    /// [`TimerWheel::head_seqs`]). Unlike [`TimerWheel::pop`] the record
    /// is tombstoned rather than released — the drain heap still holds
    /// its entry, which [`TimerWheel::settle`] reclaims later — so
    /// outstanding [`Token`]s for *other* events stay valid.
    pub fn pop_seq(&mut self, seq: u64) -> Option<(u64, u64, T)> {
        if !self.settle() {
            return None;
        }
        let slab = &self.slab;
        let idx = self.current.iter().find_map(|&Reverse((_, s, i))| {
            (s == seq && matches!(slab[i as usize].body, Body::Live(_))).then_some(i)
        })?;
        let rec = &mut self.slab[idx as usize];
        let time = rec.time;
        let body = std::mem::replace(&mut rec.body, Body::Tombstone);
        self.len -= 1;
        match body {
            Body::Live(item) => Some((time, seq, item)),
            _ => unreachable!("checked live above"),
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if !self.settle() {
            return None;
        }
        let Reverse((time, seq, idx)) = self.current.pop().expect("settle guarantees a top");
        let item = self.release(idx).expect("settled top is live");
        self.len -= 1;
        Some((time, seq, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(30, 2, 'c');
        w.push(10, 0, 'a');
        w.push(10, 1, 'b');
        w.push(40, 3, 'd');
        let order: Vec<char> = std::iter::from_fn(|| w.pop().map(|(_, _, x)| x)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_interleaved_push_pop() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        // All inside one tick (default tick = 2^20 ps).
        w.push(100, 0, 0);
        w.push(200, 1, 1);
        assert_eq!(w.pop().unwrap(), (100, 0, 0));
        // Push between the two pending events' ranks, mid-drain.
        w.push(150, 2, 2);
        w.push(100, 3, 3); // same instant as the popped one, later seq
        assert_eq!(w.pop().unwrap(), (100, 3, 3));
        assert_eq!(w.pop().unwrap(), (150, 2, 2));
        assert_eq!(w.pop().unwrap(), (200, 1, 1));
        assert!(w.pop().is_none());
    }

    #[test]
    fn far_future_goes_through_overflow() {
        let mut w = TimerWheel::with_tick_shift(4); // tiny ticks: horizon = 16*1024
        let horizon = 16 * SLOTS as u64;
        w.push(3 * horizon, 1, 'z');
        w.push(5, 0, 'a');
        assert_eq!(w.pop().unwrap().2, 'a');
        assert_eq!(w.pop().unwrap().2, 'z');
        assert!(w.pop().is_none());
    }

    #[test]
    fn cursor_wraps_many_epochs() {
        let mut w = TimerWheel::with_tick_shift(0); // 1 unit per tick
        let mut seq = 0u64;
        let mut expect = Vec::new();
        // Spread events over many full wheel rotations, pushed shuffled.
        for k in [7u64, 3, 11, 1, 9, 5] {
            let t = k * (SLOTS as u64) * 3 + k;
            w.push(t, seq, t);
            expect.push((t, seq));
            seq += 1;
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| w.pop().map(|(t, s, _)| (t, s))).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cancel_removes_and_returns_payload() {
        let mut w = TimerWheel::new();
        let a = w.push(10, 0, 'a');
        let b = w.push(20, 1, 'b');
        assert_eq!(w.len(), 2);
        assert_eq!(w.cancel(b), Some('b'));
        assert_eq!(w.len(), 1);
        assert_eq!(w.cancel(b), None, "double cancel is a no-op");
        assert_eq!(w.pop().unwrap().2, 'a');
        assert_eq!(w.cancel(a), None, "cancel after pop is a no-op");
        assert!(w.pop().is_none());
    }

    #[test]
    fn stale_token_after_slot_reuse_is_harmless() {
        let mut w = TimerWheel::new();
        let a = w.push(10, 0, 'a');
        assert_eq!(w.pop().unwrap().2, 'a');
        let b = w.push(20, 1, 'b'); // recycles a's slab slot
        assert_eq!(b.idx, a.idx, "slot must be recycled");
        assert_eq!(w.cancel(a), None, "stale generation rejected");
        assert_eq!(w.pop().unwrap().2, 'b');
    }

    #[test]
    fn peek_matches_pop_and_skips_tombstones() {
        let mut w = TimerWheel::new();
        let a = w.push(10, 0, 'a');
        w.push(20, 1, 'b');
        assert_eq!(w.peek(), Some((10, 0)));
        w.cancel(a);
        assert_eq!(w.peek(), Some((20, 1)));
        assert_eq!(w.pop().unwrap(), (20, 1, 'b'));
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn len_and_peak_track_live_events() {
        let mut w = TimerWheel::new();
        let toks: Vec<Token> = (0..10).map(|i| w.push(i, i, i)).collect();
        assert_eq!(w.len(), 10);
        assert_eq!(w.peak_len(), 10);
        w.cancel(toks[3]);
        assert_eq!(w.len(), 9);
        for _ in 0..9 {
            w.pop().unwrap();
        }
        assert!(w.is_empty());
        assert_eq!(w.peak_len(), 10);
    }

    #[test]
    fn head_seqs_lists_the_tie_break_group() {
        let mut w = TimerWheel::new();
        w.push(10, 2, 'b');
        w.push(10, 0, 'a');
        w.push(10, 7, 'c');
        w.push(20, 1, 'z');
        assert_eq!(w.head_seqs(), vec![0, 2, 7]);
        // Popping shrinks the group; the later timestamp never joins it.
        w.pop().unwrap();
        assert_eq!(w.head_seqs(), vec![2, 7]);
    }

    #[test]
    fn pop_seq_takes_any_head_member_and_spares_other_tokens() {
        let mut w = TimerWheel::new();
        w.push(10, 0, 'a');
        w.push(10, 1, 'b');
        let far = w.push(900_000_000, 2, 'z');
        assert_eq!(w.pop_seq(1), Some((10, 1, 'b')));
        assert_eq!(w.pop_seq(1), None, "already taken");
        assert_eq!(w.pop().unwrap(), (10, 0, 'a'));
        // The unrelated far-future token must still cancel cleanly.
        assert_eq!(w.cancel(far), Some('z'));
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn pop_seq_of_the_head_matches_pop_order() {
        let mut w = TimerWheel::new();
        w.push(10, 0, 'a');
        w.push(10, 1, 'b');
        let head = w.head_seqs()[0];
        assert_eq!(w.pop_seq(head), Some((10, 0, 'a')));
        assert_eq!(w.pop().unwrap(), (10, 1, 'b'));
    }

    /// Deterministic xorshift so the stress test needs no external crates
    /// (and stays runnable in offline shadow builds).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// 20k randomized schedule/cancel/pop operations replayed against a
    /// `BinaryHeap` reference model, with times spanning dozens of wheel
    /// epochs and heavy same-timestamp collisions.
    #[test]
    fn stress_matches_binary_heap_reference() {
        let mut w: TimerWheel<u64> = TimerWheel::with_tick_shift(6);
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut live: Vec<(Token, u64, u64)> = Vec::new();
        let mut rng = 0x9E37_79B9_7F4A_7C15u64;
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..20_000 {
            match xorshift(&mut rng) % 10 {
                // 60%: schedule, mixing same-instant, near, and far-future.
                0..=5 => {
                    let dt = match xorshift(&mut rng) % 4 {
                        0 => 0,
                        1 => xorshift(&mut rng) % 64,
                        2 => xorshift(&mut rng) % (64 * SLOTS as u64),
                        _ => xorshift(&mut rng) % (64 * 40 * SLOTS as u64),
                    };
                    let t = now + dt;
                    let tok = w.push(t, seq, seq);
                    reference.push(Reverse((t, seq)));
                    live.push((tok, t, seq));
                    seq += 1;
                }
                // 20%: pop and compare against the model.
                6..=7 => {
                    let got = w.pop();
                    let want = reference.pop().map(|Reverse(p)| p);
                    assert_eq!(got.map(|(t, s, _)| (t, s)), want);
                    if let Some((t, s)) = want {
                        now = now.max(t);
                        live.retain(|&(_, lt, ls)| (lt, ls) != (t, s));
                    }
                }
                // 20%: cancel a random live event in both structures.
                _ => {
                    if !live.is_empty() {
                        let i = (xorshift(&mut rng) as usize) % live.len();
                        let (tok, t, s) = live.swap_remove(i);
                        assert_eq!(w.cancel(tok), Some(s));
                        let mut rest: Vec<Reverse<(u64, u64)>> =
                            reference.drain().filter(|&Reverse(p)| p != (t, s)).collect();
                        reference.extend(rest.drain(..));
                    }
                }
            }
            assert_eq!(w.len(), reference.len());
        }
        // Full drain must agree to the last event.
        while let Some(Reverse((t, s))) = reference.pop() {
            assert_eq!(w.pop().map(|(wt, ws, _)| (wt, ws)), Some((t, s)));
        }
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }
}
