//! # ncs-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate under the NCS reproduction: a discrete-event
//! simulator with *cooperative green threads*, so that runtime code (thread
//! schedulers, message-passing layers, applications) can be written in a
//! natural blocking style while virtual time, ordering, and randomness stay
//! fully deterministic.
//!
//! Main pieces:
//!
//! * [`SimTime`] / [`Dur`] — integer picosecond virtual time;
//! * [`Sim`] / [`Ctx`] — the kernel, event scheduling, and green threads
//!   under a strict baton-passing protocol (at most one runnable activity);
//! * [`engine`] — the green-thread engines behind that protocol: stackful
//!   in-process coroutines by default ([`EngineKind::Coroutine`], a ~20
//!   instruction context switch), with the original parked-OS-thread
//!   engine as a differential-testing fallback ([`EngineKind::OsThread`],
//!   selectable via `NCS_GREEN_ENGINE=os`);
//! * [`wheel`] — the kernel's event queue: a hierarchical timer wheel with
//!   pooled event records (O(1) schedule, allocation-free steady state);
//! * [`FifoResource`] — counted FIFO resources (buses, links, buffer pools);
//! * [`SimChannel`] — blocking queues between simulated activities;
//! * [`Tracer`] — span recording (interned actors, parent links, causal
//!   ids) for the paper's timeline figures and Chrome-trace export;
//! * [`MetricsRegistry`] — always-on counters, gauges, log-bucketed
//!   latency histograms, and per-message causal timelines;
//! * [`chrome`] — Perfetto-loadable `trace_event` JSON export;
//! * [`SimRng`] — seeded, splittable randomness;
//! * [`analysis`] — runtime-analysis primitives (violation sink,
//!   wait-for-graph cycle detection) shared by the layers above;
//! * [`sched`] — the pluggable [`SchedulePolicy`] seam: named legal
//!   choice points (event tie-breaks, runnable rotation, fault timing)
//!   that schedule exploration drives through alternative interleavings.
//!
//! ```
//! use ncs_sim::{Dur, Sim};
//!
//! let sim = Sim::new();
//! sim.spawn("hello", |ctx| {
//!     ctx.sleep(Dur::from_micros(5));
//!     assert_eq!(ctx.now().as_ps(), 5_000_000);
//! });
//! sim.run().assert_clean();
//! ```

// `deny` rather than `forbid`: the coroutine green-thread engine
// (`engine::coro`) is the crate's single sanctioned `unsafe` island — a
// ~20-instruction context switch plus guarded stack mmap — and carries a
// scoped `#[allow(unsafe_code)]` with its soundness argument. Everything
// else in the crate still refuses `unsafe` at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod channel;
pub mod chrome;
pub mod engine;
mod kernel;
mod metrics;
mod resource;
mod rng;
pub mod sched;
mod stats;
mod time;
mod trace;
pub mod wheel;

pub use analysis::{fnv1a, AnalysisConfig, ChannelKey, InvariantSink, Violation, WaitGraph};
pub use channel::{Closed, SimChannel};
pub use chrome::chrome_trace_json;
pub use engine::{default_engine, live_coroutine_stacks, set_default_engine, EngineKind};
pub use kernel::{Ctx, RunOutcome, Sim, StopReason, ThreadId, TimerHandle};
pub use metrics::{DurStat, GaugeSeries, MetricsRegistry, Timeline};
pub use resource::FifoResource;
pub use rng::SimRng;
pub use sched::{
    format_trace, parse_trace, ChoicePoint, Decision, DecisionLog, RandomWalkPolicy,
    SchedulePolicy, ScriptedPolicy,
};
pub use stats::{DurHistogram, DurSummary};
pub use time::{Dur, SimTime};
pub use trace::{ActorId, Span, SpanId, SpanKind, Tracer};
