//! Small statistics helpers for experiment harnesses: streaming summaries
//! and log-bucketed histograms of durations.

use crate::time::Dur;

/// Streaming summary (count / min / max / mean) over durations.
#[derive(Clone, Debug, Default)]
pub struct DurSummary {
    count: u64,
    total_ps: u128,
    min: Option<Dur>,
    max: Option<Dur>,
}

impl DurSummary {
    /// An empty summary.
    pub fn new() -> DurSummary {
        DurSummary::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, d: Dur) {
        self.count += 1;
        self.total_ps += u128::from(d.as_ps());
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = Some(self.max.map_or(d, |m| m.max(d)));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<Dur> {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> Option<Dur> {
        self.max
    }

    /// Arithmetic mean (None when empty).
    pub fn mean(&self) -> Option<Dur> {
        if self.count == 0 {
            None
        } else {
            Some(Dur::from_ps(
                (self.total_ps / u128::from(self.count)) as u64,
            ))
        }
    }

    /// Sum of all observations.
    pub fn total(&self) -> Dur {
        Dur::from_ps(u64::try_from(self.total_ps).expect("total overflow"))
    }
}

/// A power-of-two-bucketed histogram of durations (microsecond base
/// resolution), good enough for percentile reporting in experiment output
/// without storing every sample.
#[derive(Clone, Debug)]
pub struct DurHistogram {
    /// bucket k counts observations in `[2^k, 2^(k+1))` microseconds;
    /// bucket 0 also holds sub-microsecond observations.
    buckets: Vec<u64>,
    /// Largest observation (in ps) seen per bucket, to tighten quantile
    /// bounds: an exact power of two must report itself, not the bucket's
    /// open upper edge one full bucket higher.
    bucket_max_ps: Vec<u64>,
    summary: DurSummary,
}

impl Default for DurHistogram {
    fn default() -> Self {
        DurHistogram::new()
    }
}

impl DurHistogram {
    /// An empty histogram covering 1 µs .. ~36 minutes.
    pub fn new() -> DurHistogram {
        DurHistogram {
            buckets: vec![0; 32],
            bucket_max_ps: vec![0; 32],
            summary: DurSummary::new(),
        }
    }

    fn bucket_of(d: Dur) -> usize {
        let us = d.as_micros();
        if us == 0 {
            0
        } else {
            (63 - us.leading_zeros() as usize).min(31)
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, d: Dur) {
        let b = Self::bucket_of(d);
        self.buckets[b] += 1;
        self.bucket_max_ps[b] = self.bucket_max_ps[b].max(d.as_ps());
        self.summary.record(d);
    }

    /// The streaming summary over the same observations.
    pub fn summary(&self) -> &DurSummary {
        &self.summary
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1): a
    /// conservative percentile estimate.
    pub fn quantile(&self, q: f64) -> Option<Dur> {
        assert!((0.0..=1.0).contains(&q));
        let n = self.summary.count();
        if n == 0 {
            return None;
        }
        let target = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The target observation lies in bucket k, so both the
                // bucket's open upper edge and the largest value actually
                // recorded in it bound the quantile; the latter is tighter,
                // and keeps exact-power-of-two data from reporting a bound
                // one full bucket high.
                let edge_ps = Dur::from_micros(1u64 << (k + 1)).as_ps();
                return Some(Dur::from_ps(edge_ps.min(self.bucket_max_ps[k])));
            }
        }
        self.summary.max()
    }

    /// Renders a compact one-line report:
    /// `n=.. mean=.. p50<=.. p95<=.. p99<=.. max=..`.
    pub fn report(&self) -> String {
        match self.summary.count() {
            0 => "n=0".to_string(),
            n => format!(
                "n={} mean={} p50<={} p95<={} p99<={} max={}",
                n,
                self.summary.mean().unwrap(),
                self.quantile(0.5).unwrap(),
                self.quantile(0.95).unwrap(),
                self.quantile(0.99).unwrap(),
                self.summary.max().unwrap(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = DurSummary::new();
        assert!(s.mean().is_none());
        for us in [10u64, 20, 30] {
            s.record(Dur::from_micros(us));
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(Dur::from_micros(10)));
        assert_eq!(s.max(), Some(Dur::from_micros(30)));
        assert_eq!(s.mean(), Some(Dur::from_micros(20)));
        assert_eq!(s.total(), Dur::from_micros(60));
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        assert_eq!(DurHistogram::bucket_of(Dur::from_nanos(500)), 0);
        assert_eq!(DurHistogram::bucket_of(Dur::from_micros(1)), 0);
        assert_eq!(DurHistogram::bucket_of(Dur::from_micros(2)), 1);
        assert_eq!(DurHistogram::bucket_of(Dur::from_micros(3)), 1);
        assert_eq!(DurHistogram::bucket_of(Dur::from_micros(1024)), 10);
    }

    #[test]
    fn quantiles_bound_the_data() {
        let mut h = DurHistogram::new();
        for us in 1..=1000u64 {
            h.record(Dur::from_micros(us));
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        // Conservative upper bounds: at least the true percentile, at most 2x.
        assert!(p50 >= Dur::from_micros(500) && p50 <= Dur::from_micros(1024));
        assert!(p95 >= Dur::from_micros(950) && p95 <= Dur::from_micros(2048));
        assert!(h.quantile(1.0).unwrap() >= h.summary().max().unwrap());
    }

    #[test]
    fn quantile_exact_power_of_two_is_not_inflated() {
        // 1024 µs lands in bucket 10 ([1024, 2048)); the pre-fix quantile
        // reported the bucket's open edge, 2048 µs — one full bucket high.
        let mut h = DurHistogram::new();
        for _ in 0..100 {
            h.record(Dur::from_micros(1024));
        }
        assert_eq!(h.quantile(0.5), Some(Dur::from_micros(1024)));
        assert_eq!(h.quantile(0.99), Some(Dur::from_micros(1024)));
        assert_eq!(h.quantile(1.0), Some(Dur::from_micros(1024)));
    }

    #[test]
    fn quantile_bound_is_tightest_recorded_value_in_bucket() {
        let mut h = DurHistogram::new();
        // Bucket 1 is [2, 4) µs; its largest recorded value is 3 µs, so no
        // quantile landing there may exceed 3 µs.
        h.record(Dur::from_micros(2));
        h.record(Dur::from_micros(3));
        assert_eq!(h.quantile(0.5), Some(Dur::from_micros(3)));
        assert_eq!(h.quantile(1.0), Some(Dur::from_micros(3)));
        // A later, larger observation in a higher bucket must not loosen
        // the low bucket's bound.
        h.record(Dur::from_micros(100));
        assert_eq!(h.quantile(0.5), Some(Dur::from_micros(3)));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = DurHistogram::new();
        assert!(h.quantile(0.5).is_none());
        assert_eq!(h.report(), "n=0");
    }

    #[test]
    fn report_is_readable() {
        let mut h = DurHistogram::new();
        h.record(Dur::from_millis(5));
        let r = h.report();
        assert!(r.contains("n=1"), "{r}");
        assert!(r.contains("mean=5.000ms"), "{r}");
    }
}
