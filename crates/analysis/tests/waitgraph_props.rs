//! Property tests for the wait-for-graph cycle detector: no false
//! positives on DAGs, and exactly the planted cycles on constructed
//! graphs.

use ncs_sim::WaitGraph;
use proptest::prelude::*;

/// (n, candidate edges, node relabeling).
fn dag_input() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<usize>)> {
    (2usize..40).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..3 * n),
            Just((0..n).collect::<Vec<usize>>()).prop_shuffle(),
        )
    })
}

/// (relabeled nodes, chunk cut points, self-loop flags, cross-edge
/// candidates) — the chunks become planted cycles.
fn planted_input(
) -> impl Strategy<Value = (Vec<usize>, Vec<bool>, Vec<bool>, Vec<(usize, usize)>)> {
    (2usize..30).prop_flat_map(|n| {
        (
            Just((0..n).collect::<Vec<usize>>()).prop_shuffle(),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec((0..n, 0..n), 0..2 * n),
        )
    })
}

proptest! {
    /// Edges only ever point from a lower to a higher rank (under an
    /// arbitrary relabeling), so the graph is acyclic by construction and
    /// the detector must stay silent.
    #[test]
    fn dag_has_no_false_positives((n, edges, perm) in dag_input()) {
        let mut g = WaitGraph::new(n);
        for (a, b) in edges {
            if a < b {
                g.add_edge(perm[a], perm[b]);
            }
        }
        prop_assert!(g.cycles().is_empty());
    }

    /// Splits a random permutation into chunks; chunks of two or more
    /// nodes become rings, singletons optionally get a self-loop, and
    /// extra "tail" edges only ever point from later chunks into earlier
    /// ones (so they cannot create or merge cycles). The detector must
    /// return exactly the planted cycles.
    #[test]
    fn planted_cycles_are_found_exactly(
        (perm, cuts, self_loops, cross) in planted_input()
    ) {
        let n = perm.len();
        // Chunk the permutation: a true cut flag starts a new chunk.
        let mut chunks: Vec<Vec<usize>> = vec![Vec::new()];
        for (i, &node) in perm.iter().enumerate() {
            if i > 0 && cuts[i] {
                chunks.push(Vec::new());
            }
            chunks.last_mut().expect("chunk present").push(node);
        }

        let mut g = WaitGraph::new(n);
        let mut chunk_of = vec![0usize; n];
        let mut expected: Vec<Vec<usize>> = Vec::new();
        for (ci, chunk) in chunks.iter().enumerate() {
            for &node in chunk {
                chunk_of[node] = ci;
            }
            if chunk.len() >= 2 {
                for w in 0..chunk.len() {
                    g.add_edge(chunk[w], chunk[(w + 1) % chunk.len()]);
                }
                let mut c = chunk.clone();
                c.sort_unstable();
                expected.push(c);
            } else if self_loops[chunk[0]] {
                g.add_edge(chunk[0], chunk[0]);
                expected.push(chunk.clone());
            }
        }
        // Tail edges: strictly from a later chunk into an earlier one, so
        // every cross-chunk path decreases the chunk index — no new SCCs.
        for (a, b) in cross {
            if chunk_of[a] > chunk_of[b] {
                g.add_edge(a, b);
            }
        }
        expected.sort();
        prop_assert_eq!(g.cycles(), expected);
    }
}
