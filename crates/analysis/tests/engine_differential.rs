//! Engine-differential harness: every observable the repo's suites rely on
//! must be byte-identical between the two green-thread engines.
//!
//! The coroutine engine (default) and the parked-OS-thread fallback
//! implement the same one-runnable-at-a-time baton protocol; nothing above
//! the `GreenThread` seam may be able to tell them apart. This test runs
//! three representative workloads — the MTS scheduler-conformance yield
//! loop, the termination-barrier `NcsWorld` run, and a schedule-exploration
//! smoke pass over [`RingWorkload`] — once per engine and compares slice
//! orders, kernel trace hashes, oracle observations, delivery digests, and
//! full `DecisionLog`s.
//!
//! Everything lives in ONE `#[test]`: the engine choice is a process-wide
//! default (`set_default_engine`), and the harness must not race with a
//! parallel test flipping it mid-run.

use std::sync::Arc;

use ncs_analysis::{explore, run_scripted, Mode, Observation, RingWorkload};
use ncs_mts::{Mts, MtsConfig};
use ncs_sim::{set_default_engine, Decision, Dur, EngineKind, Sim};
use parking_lot::Mutex;

/// The conformance suite's yield-loop workload: `(priority, rounds)` pairs,
/// each thread logging `(priority, index)` once per round then yielding.
/// Returns the global slice order plus the kernel trace hash.
fn mts_yield_loop(threads: &[(usize, usize)]) -> (Vec<(usize, usize)>, u64) {
    let sim = Sim::new();
    let log: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let l0 = Arc::clone(&log);
    let threads = threads.to_vec();
    sim.spawn("main", move |ctx| {
        let mts = Mts::new(
            ctx.sim(),
            "p0",
            MtsConfig {
                context_switch: Dur::ZERO,
                ..MtsConfig::default()
            },
        );
        for (i, &(prio, rounds)) in threads.iter().enumerate() {
            let l = Arc::clone(&l0);
            mts.spawn(format!("t{i}"), prio, move |m| {
                for _ in 0..rounds {
                    l.lock().push((prio, i));
                    m.yield_now();
                }
            });
        }
        mts.start(ctx);
    });
    sim.run().assert_clean();
    let hash = sim.trace_hash();
    let order = log.lock().clone();
    (order, hash)
}

/// One engine's view of everything the suites observe.
struct Snapshot {
    engine: EngineKind,
    mts_order: Vec<(usize, usize)>,
    mts_trace_hash: u64,
    ring: Observation,
    ring_chaos: Observation,
    walk_hashes: Vec<(usize, usize, usize, u64)>,
}

fn flatten(obs: &Observation) -> (Vec<Decision>, u64, Vec<String>, Vec<(String, Vec<u64>)>) {
    (
        obs.decisions.clone(),
        obs.trace_hash,
        obs.problems.clone(),
        obs.deliveries
            .iter()
            .map(|(k, v)| (format!("{k:?}"), v.clone()))
            .collect(),
    )
}

fn capture(engine: EngineKind) -> Snapshot {
    set_default_engine(engine);

    // Conformance slice: mixed priorities, round-robin within level.
    let (mts_order, mts_trace_hash) = mts_yield_loop(&[(2, 3), (5, 2), (2, 3), (4, 4)]);

    // Full-stack NCS runs (TermBarrier lingering included: the ring's
    // processes finish at different virtual times and wait out quiescence
    // at the barrier), canonical schedule, with and without chaos.
    let ring = run_scripted(&RingWorkload::default(), Vec::new());
    let ring_chaos = run_scripted(
        &RingWorkload {
            hosts: 3,
            rounds: 2,
            chaos: true,
        },
        Vec::new(),
    );

    // Exploration smoke: a few seeded random walks. Identical walks on the
    // two engines must visit identical interleavings.
    let report = explore(&RingWorkload::default(), Mode::Walk { walks: 4, seed: 7 });
    let walk_hashes = vec![(
        report.schedules_explored,
        report.distinct_interleavings,
        report.violations,
        report.baseline_trace_hash,
    )];

    Snapshot {
        engine,
        mts_order,
        mts_trace_hash,
        ring,
        ring_chaos,
        walk_hashes,
    }
}

#[test]
fn engines_are_observationally_identical() {
    let coro = capture(EngineKind::Coroutine);
    let os = capture(EngineKind::OsThread);
    // Leave the process on the platform default for any later in-binary use.
    set_default_engine(EngineKind::Coroutine);

    assert_eq!(coro.engine, EngineKind::Coroutine);
    assert_eq!(os.engine, EngineKind::OsThread);

    assert_eq!(
        coro.mts_order, os.mts_order,
        "MTS slice order differs between engines"
    );
    assert_eq!(
        coro.mts_trace_hash, os.mts_trace_hash,
        "MTS kernel trace diverged between engines"
    );

    for (label, a, b) in [
        ("ring", &coro.ring, &os.ring),
        ("ring+chaos", &coro.ring_chaos, &os.ring_chaos),
    ] {
        let (ad, ah, ap, adel) = flatten(a);
        let (bd, bh, bp, bdel) = flatten(b);
        assert!(
            ap.is_empty(),
            "{label}: canonical run must be clean on the coroutine engine: {ap:?}"
        );
        assert_eq!(ap, bp, "{label}: oracle problems differ between engines");
        assert_eq!(ah, bh, "{label}: kernel trace hash differs between engines");
        assert_eq!(ad, bd, "{label}: DecisionLogs differ between engines");
        assert!(
            !ad.is_empty(),
            "{label}: the workload must consult real choice points"
        );
        assert_eq!(adel, bdel, "{label}: delivery digests differ between engines");
        assert!(!adel.is_empty(), "{label}: messages must actually flow");
    }

    assert_eq!(
        coro.walk_hashes, os.walk_hashes,
        "schedule-exploration smoke pass diverged between engines"
    );
}
