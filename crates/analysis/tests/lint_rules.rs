//! The determinism lint against a fixture exercising every rule, plus the
//! guarantee that the repository's own simulation-facing sources are
//! clean.

use ncs_analysis::{lint_file, lint_workspace, LINT_RULES};
use std::path::Path;

const FIXTURE: &str = include_str!("fixtures/determinism_cases.rs.txt");

#[test]
fn every_rule_fires_where_planted() {
    let v = lint_file("crates/core/src/fixture.rs", FIXTURE);
    let hits: Vec<(&str, usize)> = v.iter().map(|x| (x.rule, x.line)).collect();
    assert_eq!(
        hits,
        vec![
            ("hash-collection", 5),
            ("wall-clock", 9),
            ("wall-clock", 10),
            ("thread-spawn", 14),
            ("thread-spawn", 15),
            ("unseeded-rand", 19),
            ("unseeded-rand", 20),
            ("hash-collection", 49),
            ("guard-across-park", 55),
            ("guard-across-park", 59),
        ],
        "full report: {v:#?}"
    );
}

#[test]
fn allow_escape_suppresses_and_scoping_rules_hold() {
    // The fixture's `allowed()` body would add four more hits without the
    // escapes; assert none of its lines (25-27) appear.
    let v = lint_file("crates/core/src/fixture.rs", FIXTURE);
    assert!(
        v.iter().all(|x| !(25..=27).contains(&x.line)),
        "allow escape failed: {v:#?}"
    );
    // The real-time shim may touch the host clock and OS threads.
    let v = lint_file("crates/core/src/real.rs", FIXTURE);
    assert!(
        v.iter().all(|x| x.rule != "wall-clock" && x.rule != "thread-spawn"),
        "real.rs exemption failed: {v:#?}"
    );
    // float-time fires only inside the simulation clock source.
    let clock = "pub fn frac(x: f64) -> f32 { x as f32 }\n";
    assert_eq!(lint_file("crates/sim/src/time.rs", clock).len(), 1);
    assert!(lint_file("crates/sim/src/kernel.rs", clock).is_empty());
}

#[test]
fn fixture_covers_every_rule() {
    // `float-time` is path-scoped, so check it via the clock path; the
    // fixture covers the other four.
    let mut fired: Vec<&str> = lint_file("crates/core/src/fixture.rs", FIXTURE)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    fired.extend(
        lint_file("crates/sim/src/time.rs", "let x: f64 = 0.0;\n")
            .into_iter()
            .map(|v| v.rule),
    );
    for rule in LINT_RULES {
        assert!(fired.contains(rule), "rule {rule} never fired");
    }
}

#[test]
fn repository_sources_are_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let v = lint_workspace(root).expect("workspace readable");
    assert!(v.is_empty(), "determinism lint violations:\n{v:#?}");
}
