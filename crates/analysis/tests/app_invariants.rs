//! The three paper applications run with every runtime invariant armed:
//! credit flow control, checksum-retransmit error control, deadlock and
//! lost-wakeup detection, queue validation, and the protocol conservation
//! checks. A clean stack must verify its results and report nothing.

use ncs_apps::fft::{fft_ncs_with, FftConfig};
use ncs_apps::jpeg_dist::{setup_jpeg_ncs_with, JpegConfig};
use ncs_apps::matmul::{setup_matmul_ncs_with, MatmulConfig};
use ncs_core::{ErrorControl, FlowControl, NcsConfig};
use ncs_net::Testbed;
use ncs_sim::{AnalysisConfig, InvariantSink, Sim};
use std::sync::Arc;

fn checked_cfg() -> (NcsConfig, Arc<InvariantSink>) {
    let (analysis, sink) = AnalysisConfig::recording();
    (
        NcsConfig {
            flow: FlowControl::Credit { window: 4 },
            error: ErrorControl::ChecksumRetransmit,
            analysis,
            ..NcsConfig::default()
        },
        sink,
    )
}

#[test]
fn matmul_verifies_with_invariants_armed() {
    let sim = Sim::new();
    let (cfg, sink) = checked_cfg();
    let handle = setup_matmul_ncs_with(
        &sim,
        Testbed::SunAtmLanTcp.build(3),
        MatmulConfig {
            dim: 32,
            nodes: 2,
            seed: 0x4D4D,
        },
        cfg,
    );
    sim.run().assert_clean();
    assert!(handle.verify());
    assert!(sink.is_empty(), "violations: {:#?}", sink.violations());
}

#[test]
fn fft_verifies_with_invariants_armed() {
    let (cfg, sink) = checked_cfg();
    let run = fft_ncs_with(
        Testbed::SunAtmLanTcp.build(3),
        FftConfig {
            m: 64,
            sets: 1,
            nodes: 2,
            seed: 0xFF7,
        },
        cfg,
    );
    assert!(run.verified);
    assert!(sink.is_empty(), "violations: {:#?}", sink.violations());
}

#[test]
fn jpeg_verifies_with_invariants_armed() {
    let sim = Sim::new();
    let (cfg, sink) = checked_cfg();
    let handle = setup_jpeg_ncs_with(
        &sim,
        Testbed::SunAtmLanTcp.build(3),
        JpegConfig {
            width: 64,
            height: 64,
            quality: 60,
            entropy: ncs_apps::jpeg::EntropyKind::Huffman,
            nodes: 2,
            seed: 4,
        },
        cfg,
    );
    sim.run().assert_clean();
    assert!(handle.verify());
    assert!(sink.is_empty(), "violations: {:#?}", sink.violations());
}
