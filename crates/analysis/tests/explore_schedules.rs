//! Acceptance tests for the schedule explorer: a deliberately
//! re-introduced lost-wakeup bug (the classic check-then-block race) must
//! be caught by exploring alternative legal schedules, minimized, and
//! reproduced deterministically from the replay trace.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ncs_analysis::{explore, run_scripted, Mode, Observation, Workload};
use ncs_mts::{Mts, MtsConfig};
use ncs_sim::{
    format_trace, parse_trace, AnalysisConfig, Dur, SchedulePolicy, Sim, SimTime, StopReason,
};

/// The re-introduced bug: a waiter publishes a flag and then blocks, and a
/// same-priority waker only unblocks it if it saw the flag. Under the
/// canonical round-robin order (waiter spawned first, so it runs first)
/// the handshake works; if the scheduler legally rotates the waker to the
/// front, the wakeup is lost and the waiter blocks forever. Exactly the
/// guard-across-park family of race the explorer exists to catch.
struct LostWakeupWorkload;

impl Workload for LostWakeupWorkload {
    fn run(&self, policy: Box<dyn SchedulePolicy>) -> Observation {
        let sim = Sim::new();
        let (analysis, sink) = AnalysisConfig::recording();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    analysis,
                    ..MtsConfig::default()
                },
            );
            let waiting = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&waiting);
            let waiter = mts.spawn("waiter", 1, move |m| {
                flag.store(true, Ordering::SeqCst);
                m.block(); // BUG: the wakeup below is conditional on order.
            });
            let flag = Arc::clone(&waiting);
            mts.spawn("waker", 1, move |m| {
                if flag.load(Ordering::SeqCst) {
                    m.unblock(waiter);
                }
            });
            mts.start(ctx);
        });
        sim.set_schedule_policy(policy);
        let out = sim.run_bounded(Some(SimTime::ZERO + Dur::from_millis(10)), 100_000);
        let mut problems: Vec<String> = sink.take().iter().map(|v| format!("{v}")).collect();
        if out.reason != StopReason::Completed {
            problems.push(format!("run stopped by {:?}", out.reason));
        }
        for b in &out.blocked {
            problems.push(format!("[blocked] {b}"));
        }
        for p in &out.panics {
            problems.push(format!("[panic] {p}"));
        }
        let trace_hash = sim.trace_hash();
        sim.finish();
        Observation {
            decisions: Vec::new(),
            trace_hash,
            problems,
            deliveries: Default::default(),
        }
    }
}

#[test]
fn canonical_schedule_masks_the_lost_wakeup() {
    let obs = run_scripted(&LostWakeupWorkload, Vec::new());
    assert!(
        obs.problems.is_empty(),
        "the bug must be invisible on the default schedule (else plain \
         tests would already catch it): {:?}",
        obs.problems
    );
    assert!(
        !obs.decisions.is_empty(),
        "the fixture must present real scheduling choices"
    );
}

#[test]
fn explorer_finds_minimizes_and_replays_the_lost_wakeup() {
    let report = explore(
        &LostWakeupWorkload,
        Mode::Dfs {
            depth: 2,
            max_schedules: 80,
        },
    );
    assert!(
        report.violations > 0,
        "bounded DFS must expose the lost wakeup"
    );
    let ce = report.counterexample.expect("a counterexample is produced");
    assert!(
        ce.problems.iter().any(|p| p.contains("lost-wakeup")
            || p.contains("blocked")
            || p.contains("deadlock")),
        "counterexample names the stuck thread: {:?}",
        ce.problems
    );

    // The minimized trace replays deterministically: same interleaving
    // (kernel trace hash), same failure.
    let script: Vec<u32> = ce.decisions.iter().map(|d| d.chosen).collect();
    let first = run_scripted(&LostWakeupWorkload, script.clone());
    let second = run_scripted(&LostWakeupWorkload, script);
    assert_eq!(first.trace_hash, ce.trace_hash, "replay hits the same schedule");
    assert_eq!(first.trace_hash, second.trace_hash, "replay is deterministic");
    assert!(!first.problems.is_empty(), "replay reproduces the failure");

    // The serialized trace round-trips through the on-disk format the CLI
    // `--replay` flag consumes.
    assert_eq!(
        parse_trace(&ce.trace).expect("trace parses"),
        ce.decisions,
        "format_trace/parse_trace round-trip"
    );
    assert_eq!(format_trace(&ce.decisions), ce.trace);
}

#[test]
fn random_walks_also_find_the_lost_wakeup() {
    let report = explore(
        &LostWakeupWorkload,
        Mode::Walk {
            walks: 16,
            seed: 0xACE,
        },
    );
    assert!(
        report.violations > 0,
        "16 seeded walks over a 50/50 rotation choice must hit the bad \
         order (explored {} distinct interleavings)",
        report.distinct_interleavings
    );
}
