//! Regression: `NCS_end` is collective — a process that finishes its user
//! work early *lingers* at the termination barrier (still re-ACKing
//! duplicate frames) until every peer is quiescent. That world-wide
//! quiescence wait is by design and must never be classified as a
//! deadlock cycle or lost wakeup by the runtime analysis — neither on the
//! canonical schedule nor on any explored alternative schedule.

use std::sync::Arc;

use ncs_analysis::{explore, run_scripted, Mode, Observation, Workload};
use ncs_core::{ErrorControl, FlowControl, NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::{HostParams, IdealFabric, Network, TcpNet, TcpParams};
use ncs_sim::{
    AnalysisConfig, Dur, SchedulePolicy, ScriptedPolicy, Sim, SimTime, StopReason,
};

/// Two processes with wildly asymmetric lifetimes: proc 0 sends one
/// message and is done almost immediately; proc 1 computes for 50 ms of
/// virtual time first. Proc 0 therefore sits at the termination barrier
/// for almost the whole run.
struct EarlyFinisher;

impl Workload for EarlyFinisher {
    fn run(&self, policy: Box<dyn SchedulePolicy>) -> Observation {
        let sim = Sim::new();
        let (analysis, sink) = AnalysisConfig::recording();
        let cfg = NcsConfig {
            flow: FlowControl::Credit { window: 4 },
            error: ErrorControl::ChecksumRetransmit,
            poll_cost: Dur::from_nanos(100),
            analysis,
            ..NcsConfig::default()
        };
        let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(20)));
        let hosts = vec![HostParams::test_fast(); 2];
        let net: Arc<dyn Network> = Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()));
        NcsWorld::launch(&sim, vec![net], 2, cfg, |id, proc_| {
            if id == 0 {
                proc_.t_create("quick", 5, |ncs| {
                    ncs.send(ThreadAddr::new(1, 0), 9, b"early".to_vec().into());
                    // Done: from here proc 0 lingers at the TermBarrier
                    // while proc 1 still computes.
                });
            } else {
                proc_.t_create("slow", 5, |ncs| {
                    ncs.compute(50_000_000, "long-work"); // 50 ms at 1 GHz
                    let m = ncs.recv(Some(0), None, Some(9));
                    assert_eq!(&m.data[..], b"early");
                });
            }
        });
        sim.set_schedule_policy(policy);
        let out = sim.run_bounded(Some(SimTime::ZERO + Dur::from_secs(2)), 4_000_000);
        let mut problems: Vec<String> = sink.take().iter().map(|v| format!("{v}")).collect();
        if out.reason != StopReason::Completed {
            problems.push(format!("run stopped by {:?}", out.reason));
        }
        for b in &out.blocked {
            problems.push(format!("[blocked] {b}"));
        }
        for p in &out.panics {
            problems.push(format!("[panic] {p}"));
        }
        let deliveries = sink.deliveries();
        let trace_hash = sim.trace_hash();
        sim.finish();
        Observation {
            decisions: Vec::new(),
            trace_hash,
            problems,
            deliveries,
        }
    }
}

#[test]
fn lingering_at_the_term_barrier_is_not_a_deadlock() {
    let obs = run_scripted(&EarlyFinisher, Vec::new());
    assert!(
        obs.problems.is_empty(),
        "barrier quiescence wait misclassified: {:?}",
        obs.problems
    );
    assert!(
        !obs.deliveries.is_empty(),
        "the early message must be delivered"
    );
}

#[test]
fn term_barrier_stays_clean_across_explored_schedules() {
    let report = explore(&EarlyFinisher, Mode::Walk { walks: 8, seed: 3 });
    assert_eq!(
        report.violations, 0,
        "no explored schedule may turn the barrier wait into a violation"
    );
    assert!(report.counterexample.is_none());
}

#[test]
fn scripted_policy_type_is_usable_from_tests() {
    // Sanity: the ScriptedPolicy re-export is enough to hand-build a
    // replay without going through the engine.
    let log = ncs_sim::DecisionLog::new();
    let obs = EarlyFinisher.run(Box::new(ScriptedPolicy::new(vec![], Arc::clone(&log))));
    assert!(obs.problems.is_empty());
    assert!(!log.snapshot().is_empty(), "choice points were consulted");
}
