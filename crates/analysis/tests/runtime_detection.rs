//! Runtime-analysis detection tests: a deliberately deadlocked pair of
//! MTS threads is caught by the scheduler's wait-for-graph scan, a thread
//! nobody ever wakes is flagged as a lost wakeup, and the offline
//! classifier agrees with both.

use ncs_analysis::check_outcome;
use ncs_mts::{Mts, MtsConfig, MtsTid};
use ncs_sim::{AnalysisConfig, Sim, StopReason};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn two_thread_cyclic_wait_is_reported_as_deadlock() {
    let sim = Sim::new();
    let (analysis, sink) = AnalysisConfig::recording();
    let mts = Mts::new(
        &sim,
        "proc0",
        MtsConfig {
            analysis,
            ..MtsConfig::default()
        },
    );

    // Tid exchange: `a` is spawned first, so `b` can capture `a`'s tid
    // directly; `a` reads `b`'s out of the cell once it runs.
    let b_cell: Arc<Mutex<Option<MtsTid>>> = Arc::new(Mutex::new(None));
    let b_cell2 = Arc::clone(&b_cell);
    let ta = mts.spawn("a", 5, move |m| {
        let tb = (*b_cell2.lock()).expect("b spawned before the sim runs");
        m.block_on(tb); // waits on b ...
    });
    let tb = mts.spawn("b", 5, move |m| {
        m.block_on(ta); // ... which waits on a: a cycle.
    });
    *b_cell.lock() = Some(tb);

    let mts2 = mts.clone();
    sim.spawn("main", move |ctx| mts2.start(ctx));
    let out = sim.run();

    assert_eq!(out.reason, StopReason::Completed);
    assert!(!out.blocked.is_empty(), "both threads must be stuck");

    let vs = sink.violations();
    let deadlocks: Vec<_> = vs.iter().filter(|v| v.check == "deadlock").collect();
    assert!(
        !deadlocks.is_empty(),
        "scheduler must report the cycle; sink: {vs:#?}"
    );
    assert!(
        deadlocks[0].detail.contains("a") && deadlocks[0].detail.contains("b"),
        "cycle detail names both threads: {}",
        deadlocks[0].detail
    );

    // Offline classification agrees and names both threads.
    let offline = check_outcome(&out, &[&mts]);
    let stuck: Vec<_> = offline.iter().filter(|v| v.check == "deadlock").collect();
    assert_eq!(stuck.len(), 2, "offline: {offline:#?}");
    assert_eq!(mts.deadlock_cycles(), vec![vec![ta, tb]]);
}

#[test]
fn forgotten_unblock_is_reported_as_lost_wakeup() {
    let sim = Sim::new();
    let (analysis, sink) = AnalysisConfig::recording();
    let mts = Mts::new(
        &sim,
        "proc0",
        MtsConfig {
            analysis,
            ..MtsConfig::default()
        },
    );
    mts.spawn("loner", 5, |m| {
        m.block(); // nobody will ever unblock this
    });
    mts.spawn("worker", 5, |m| {
        m.sleep(ncs_sim::Dur::from_micros(5)); // finishes fine
    });
    let mts2 = mts.clone();
    sim.spawn("main", move |ctx| mts2.start(ctx));
    let out = sim.run();

    assert_eq!(out.reason, StopReason::Completed);
    let vs = sink.violations();
    assert!(
        vs.iter()
            .any(|v| v.check == "lost-wakeup" && v.actor.contains("loner")),
        "kernel must flag the parked thread; sink: {vs:#?}"
    );
    assert!(
        vs.iter().all(|v| v.check != "deadlock"),
        "a single anonymous block is not a cycle: {vs:#?}"
    );

    let offline = check_outcome(&out, &[&mts]);
    assert!(
        offline
            .iter()
            .any(|v| v.check == "lost-wakeup" && v.actor == "proc0/loner"),
        "offline: {offline:#?}"
    );
    assert!(offline.iter().all(|v| v.check != "deadlock"));
}

#[test]
fn clean_runs_report_nothing_and_queues_validate() {
    let sim = Sim::new();
    let (analysis, sink) = AnalysisConfig::recording();
    let mts = Mts::new(
        &sim,
        "proc0",
        MtsConfig {
            analysis,
            ..MtsConfig::default()
        },
    );
    // A block/unblock pair plus sleeps: plenty of queue churn, no bug.
    let pinged: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    let pinged2 = Arc::clone(&pinged);
    let waiter = mts.spawn("waiter", 3, move |m| {
        m.block();
        *pinged2.lock() = true;
    });
    mts.spawn("waker", 7, move |m| {
        m.sleep(ncs_sim::Dur::from_micros(2));
        m.unblock(waiter);
    });
    let mts2 = mts.clone();
    sim.spawn("main", move |ctx| mts2.start(ctx));
    let out = sim.run();
    out.assert_clean();

    assert!(*pinged.lock());
    assert!(
        sink.is_empty(),
        "clean run must not report: {:#?}",
        sink.violations()
    );
    assert!(mts.validate_queues().is_empty());
    assert!(check_outcome(&out, &[&mts]).is_empty());
}
