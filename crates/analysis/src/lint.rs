//! Source-level determinism lint.
//!
//! The reproduction's core promise is bit-exact replay: the same seed must
//! produce the same trace hash on every run and every machine. That promise
//! is easy to break silently — one `HashMap` iteration in a hot path, one
//! `Instant::now()` leaking wall-clock time into virtual time — and the
//! breakage only shows up as a flaky determinism test much later. This lint
//! rejects the dangerous constructions at the source level, where the
//! offending line is named directly.
//!
//! Rules (stable identifiers, usable in `allow` escapes):
//!
//! * `hash-collection` — `HashMap`/`HashSet` in simulation-facing code.
//!   Their iteration order depends on `RandomState`; use `BTreeMap`/
//!   `BTreeSet` (or an index-keyed `Vec`) instead.
//! * `wall-clock` — `Instant::now`/`SystemTime` anywhere but the real-time
//!   pacing shim (`crates/core/src/real.rs`), the one module allowed to
//!   observe the host clock.
//! * `thread-spawn` — raw OS threads. Everywhere: `std::thread::spawn` /
//!   `thread::Builder`. Inside the kernel/scheduler hot paths
//!   (`crates/sim/src`, `crates/mts/src`): **any** `std::thread` use at all
//!   (`park`, `sleep`, `current`, …) — since the green-thread engine moved
//!   to in-process coroutines, nothing there may touch OS threads; even a
//!   "harmless" `thread::yield_now` would smuggle OS scheduling into the
//!   deterministic dispatch path. The OS-thread fallback engine
//!   (`sim/src/engine/os_thread.rs`) is the one file-scoped exemption,
//!   alongside the real-time shim (`core/src/real.rs`).
//! * `unseeded-rand` — entropy-seeded randomness (`thread_rng`,
//!   `from_entropy`, `rand::random`, `from_os_rng`, `OsRng`). Use
//!   [`ncs_sim::SimRng`] with an explicit seed.
//! * `float-time` — `f32`/`f64` inside the simulation clock
//!   (`crates/sim/src/time.rs`). Time is integer picoseconds; float
//!   arithmetic there would make event ordering platform-dependent. The
//!   explicitly-allowed conversion helpers at the display/config boundary
//!   carry `allow` escapes.
//! * `guard-across-park` — a `lock()` guard (a `let` binding, or a
//!   `match`/`if let`/`while let` scrutinee temporary, which lives to the
//!   end of the block) still in scope at a park/block/yield point
//!   (`park(`, `.block()`, `.block_on(`, `yield_now(`, `external_block(`).
//!   Under the baton protocol the parked thread keeps the mutex locked
//!   while another green thread runs — the classic recipe for a
//!   self-deadlock or a lost wakeup. Drop the guard (end its scope or
//!   `drop(guard)`) before parking.
//!
//! A line (or the line directly below the comment) is exempted with:
//!
//! ```text
//! // ncs-lint: allow(rule-a, rule-b)
//! ```
//!
//! Rule names in `allow` may use `-` or `_` interchangeably
//! (`allow(guard_across_park)` works).
//!
//! Comments and string/char literals are stripped before matching, so doc
//! comments may freely *mention* `HashMap`; `#[cfg(test)]` items and
//! modules are skipped entirely (tests may use whatever they like — the
//! determinism suite catches them if they matter).

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Every rule identifier the lint knows, in reporting order.
pub const LINT_RULES: &[&str] = &[
    "hash-collection",
    "wall-clock",
    "thread-spawn",
    "unseeded-rand",
    "float-time",
    "guard-across-park",
];

/// The crate sources the workspace lint walks (simulation-facing code,
/// examples, and the bench binaries — anything that runs inside the
/// simulated world).
const LINT_ROOTS: &[&str] = &[
    "crates/sim/src",
    "crates/net/src",
    "crates/mts/src",
    "crates/p4/src",
    "crates/core/src",
    "crates/apps/src",
    "crates/bench/src",
    "examples",
    "src",
];

/// One lint hit: a rule, a location, and the offending source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintViolation {
    /// Which rule fired (one of [`LINT_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The raw source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )
    }
}

/// Carried across lines: are we inside a block comment or a multi-line
/// string literal?
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum LexState {
    #[default]
    Code,
    BlockComment(u32),
    Str,
    /// Raw string literal; payload is the number of `#`s in the delimiter.
    RawStr(u32),
}

/// Strips comments and string/char literals from one source line, carrying
/// `state` across lines (nested block comments and multi-line strings).
/// Stripped spans are replaced with spaces so column math stays sane.
fn strip_line(raw: &str, state: LexState) -> (String, LexState) {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    let mut st = state;
    while let Some(c) = chars.next() {
        match st {
            LexState::BlockComment(depth) => {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    st = if depth > 1 {
                        LexState::BlockComment(depth - 1)
                    } else {
                        LexState::Code
                    };
                } else if c == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    st = LexState::BlockComment(depth + 1);
                }
            }
            LexState::Str => {
                if c == '\\' {
                    chars.next();
                } else if c == '"' {
                    st = LexState::Code;
                }
            }
            LexState::RawStr(hashes) => {
                // No escapes; closes only on `"` followed by exactly
                // `hashes` `#`s.
                if c == '"' {
                    let mut la = chars.clone();
                    let mut seen = 0u32;
                    while seen < hashes && la.next() == Some('#') {
                        seen += 1;
                    }
                    if seen == hashes {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        st = LexState::Code;
                    }
                }
            }
            LexState::Code => match c {
                '/' if chars.peek() == Some(&'/') => break, // line comment
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    st = LexState::BlockComment(1);
                }
                '"' => st = LexState::Str,
                'r' => {
                    // Possible raw-string opener: `r"…"` or `r#"…"#` (also
                    // reached as the `r` of `br"…"`). Lookahead: zero or
                    // more `#` then `"`; raw identifiers (`r#foo`) fail the
                    // quote check and fall through as ordinary code.
                    let mut la = chars.clone();
                    let mut hashes = 0u32;
                    while la.peek() == Some(&'#') {
                        la.next();
                        hashes += 1;
                    }
                    if la.peek() == Some(&'"') {
                        for _ in 0..=hashes {
                            chars.next(); // the `#`s and the opening quote
                        }
                        st = LexState::RawStr(hashes);
                    } else {
                        out.push(c);
                    }
                }
                '\'' => {
                    // Char literal or lifetime. A literal is 'x' or an
                    // escape; a lifetime ('a, 'static) has no closing quote
                    // right after its (identifier) body.
                    let mut la = chars.clone();
                    match la.next() {
                        Some('\\') => {
                            // Escape: consume through the closing quote.
                            chars.next();
                            for c2 in chars.by_ref() {
                                if c2 == '\'' {
                                    break;
                                }
                            }
                        }
                        Some(_) if la.next() == Some('\'') => {
                            chars.next();
                            chars.next();
                        }
                        _ => {} // lifetime: keep scanning normally
                    }
                }
                _ => out.push(c),
            },
        }
    }
    // A line comment never carries over; anything else does.
    (out, st)
}

/// A `lock()` guard known to be live: a `let` binding (dies when its
/// scope closes or on `drop(name)`) or a `match`/`if let`/`while let`
/// scrutinee temporary (dies when the block it governs closes).
struct LiveGuard {
    /// Binding name, `None` for scrutinee temporaries.
    name: Option<String>,
    /// Brace depth at the start of the line that created the guard.
    bind_depth: i64,
    /// Scrutinee temporaries outlive the *block*, not the statement.
    scrutinee: bool,
    /// A scrutinee's governed block has been entered (depth went above
    /// `bind_depth`); when depth returns, the guard is dead.
    entered: bool,
}

/// The binding name of a `let [mut] name = ...` statement on this line
/// (not necessarily at line start), if any.
fn let_binding_name(code: &str) -> Option<String> {
    let t = code.trim_start();
    let at = if t.starts_with("let ") {
        0
    } else {
        t.find(" let ")? + 1
    };
    let rest = t[at + "let ".len()..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// True when the statement *keeps* the guard: the call chain after
/// `.lock(` at `lock_pos` ends the statement (optionally via `.unwrap()`
/// or `.expect(…)`). `let n = q.lock().len();` borrows through a
/// temporary that dies at the `;` and holds nothing. String literals are
/// already stripped, so `.expect("…")` reads `.expect()` here.
fn binds_guard(code: &str, lock_pos: usize) -> bool {
    let Some(after) = code[lock_pos + ".lock(".len()..].strip_prefix(')') else {
        return false;
    };
    let after = after
        .strip_prefix(".unwrap()")
        .or_else(|| after.strip_prefix(".expect()"))
        .unwrap_or(after);
    after.trim_start().starts_with(';')
}

/// Byte positions of park/block/yield tokens in a stripped code line.
/// Definition lines (`fn park(...)`) are not calls and never count;
/// `park(` requires a non-identifier character before it so `unpark(`
/// does not match.
fn park_positions(code: &str) -> Vec<usize> {
    const TOKENS: &[&str] = &[
        "park(",
        ".block()",
        ".block_on(",
        "yield_now(",
        "external_block(",
    ];
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for t in TOKENS {
        let mut from = 0;
        while let Some(i) = code[from..].find(t) {
            let pos = from + i;
            // Tokens starting with an identifier char need a word
            // boundary before them (`unpark(` is not `park(`); a leading
            // `.` is its own boundary.
            let boundary = t.starts_with('.')
                || pos == 0
                || {
                    let c = bytes[pos - 1] as char;
                    !(c.is_alphanumeric() || c == '_')
                };
            // `fn park(...)` is a definition, not a call.
            let definition = code[..pos].trim_end().ends_with("fn");
            if boundary && !definition {
                out.push(pos);
            }
            from = pos + t.len();
        }
    }
    out.sort_unstable();
    out
}

/// Extracts the rules named by `ncs-lint: allow(rule, ...)` in a raw line.
fn parse_allows(raw: &str) -> Vec<&str> {
    let Some(at) = raw.find("ncs-lint: allow(") else {
        return Vec::new();
    };
    let rest = &raw[at + "ncs-lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .collect()
}

/// Lints one file. `rel_path` is the workspace-relative path with forward
/// slashes — rule scoping (the `real.rs` exemptions, the `float-time`
/// clock-only scope) keys off it.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<LintViolation> {
    let is_real_shim = rel_path.ends_with("core/src/real.rs");
    let is_sim_clock = rel_path == "crates/sim/src/time.rs";
    // The fallback green-thread engine is the one sanctioned OS-thread
    // site in the simulator (kept for differential testing against the
    // coroutine engine); its scoped exemption lives here, not in escape
    // comments, so a stray `std::thread` elsewhere cannot copy it.
    let is_engine_fallback = rel_path.ends_with("sim/src/engine/os_thread.rs");
    // Kernel/scheduler hot paths: any OS-thread API is banned outright.
    let is_hot_path =
        rel_path.starts_with("crates/sim/src") || rel_path.starts_with("crates/mts/src");

    let mut out = Vec::new();
    let mut lex = LexState::default();
    let mut depth: i64 = 0;
    // `Some(d)`: inside a `#[cfg(test)]` item opened at brace depth `d`;
    // skip until depth returns to `d`.
    let mut skip_below: Option<i64> = None;
    // A `#[cfg(test)]` attribute was seen and its item hasn't opened yet.
    let mut pending_cfg_test = false;
    let mut allow_prev: Vec<String> = Vec::new();
    let mut guards: Vec<LiveGuard> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let (code, next_lex) = strip_line(raw, lex);
        lex = next_lex;

        let allows_here: Vec<String> = parse_allows(raw).iter().map(|s| s.to_string()).collect();
        let active_allows: Vec<String> = allows_here
            .iter()
            .chain(allow_prev.iter())
            .cloned()
            .collect();
        allow_prev = allows_here;
        // `-` and `_` are interchangeable in allow names.
        let allowed =
            |rule: &str| active_allows.iter().any(|a| a.replace('_', "-") == rule);

        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        // Attribute form only — `#[cfg(not(test))]` and `#[cfg_attr(test,
        // …)]` items are real code and must not be exempted.
        let compact: String = code.chars().filter(|ch| !ch.is_whitespace()).collect();
        if compact.contains("#[cfg(test)]") || compact.contains("#![cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && skip_below.is_none() {
            if opens > 0 {
                // The test item's body opens here: skip from the depth the
                // brace was opened at.
                skip_below = Some(depth);
                pending_cfg_test = false;
            } else if code.contains(';') {
                // e.g. `#[cfg(test)] use proptest::prelude::*;`
                pending_cfg_test = false;
            }
        }

        let skipping = skip_below.is_some();
        let depth_before = depth;
        depth += opens - closes;
        if let Some(d) = skip_below {
            if depth <= d {
                skip_below = None;
            }
        }
        if skipping {
            continue;
        }

        let mut hit = |rule: &'static str| {
            if !allowed(rule) {
                out.push(LintViolation {
                    rule,
                    file: rel_path.to_string(),
                    line: lineno,
                    snippet: raw.trim().to_string(),
                });
            }
        };

        if code.contains("HashMap") || code.contains("HashSet") {
            hit("hash-collection");
        }
        if !is_real_shim && (code.contains("Instant::now") || code.contains("SystemTime")) {
            hit("wall-clock");
        }
        if !is_real_shim && !is_engine_fallback {
            let spawns = code.contains("thread::spawn") || code.contains("thread::Builder");
            let any_os_thread_api = is_hot_path && code.contains("std::thread");
            if spawns || any_os_thread_api {
                hit("thread-spawn");
            }
        }
        if code.contains("thread_rng")
            || code.contains("from_entropy")
            || code.contains("rand::random")
            || code.contains("from_os_rng")
            || code.contains("OsRng")
        {
            hit("unseeded-rand");
        }
        if is_sim_clock && (code.contains("f64") || code.contains("f32")) {
            hit("float-time");
        }

        // --- guard-across-park ---
        // An explicit `drop(name)` releases a named guard; process drops
        // first so `drop(g); ...park()` on one line stays clean.
        if code.contains("drop(") {
            guards.retain(|g| {
                g.name
                    .as_ref()
                    .is_none_or(|n| !code.contains(&format!("drop({n})")))
            });
        }
        let had_live_guard = !guards.is_empty();
        let lock_pos = code.find(".lock(");
        // A guard created on this line only conflicts with parks *after*
        // the lock position.
        let mut new_guard_lock: Option<usize> = None;
        if let Some(lp) = lock_pos {
            if let_binding_name(&code).is_some() && binds_guard(&code, lp) {
                guards.push(LiveGuard {
                    name: let_binding_name(&code),
                    bind_depth: depth_before,
                    scrutinee: false,
                    entered: false,
                });
                new_guard_lock = Some(lp);
            } else if code.contains("match ")
                || code.contains("if let ")
                || code.contains("while let ")
            {
                guards.push(LiveGuard {
                    name: None,
                    bind_depth: depth_before,
                    scrutinee: true,
                    // A one-line `match m.lock() { … }` is already closed.
                    entered: opens > 0 && depth <= depth_before,
                });
                new_guard_lock = Some(lp);
            }
        }
        let fires = park_positions(&code).into_iter().any(|pp| {
            had_live_guard
                || new_guard_lock.is_some_and(|lp| pp > lp)
                // Plain expression temporary: dead at the `;`, live before.
                || (new_guard_lock.is_none()
                    && lock_pos.is_some_and(|lp| pp > lp && !code[lp..pp].contains(';')))
        });
        if fires {
            hit("guard-across-park");
        }
        // Scope closes kill guards: a binding dies when its enclosing
        // block does; a scrutinee dies when the block it governs closes.
        guards.retain_mut(|g| {
            if g.scrutinee {
                if depth > g.bind_depth {
                    g.entered = true;
                    true
                } else {
                    !g.entered && depth == g.bind_depth
                }
            } else {
                depth >= g.bind_depth
            }
        });
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints every simulation-facing crate under the workspace `root`
/// (`crates/{sim,net,mts,p4,core,apps}/src`). Integration tests and bench
/// binaries are out of scope — determinism there is enforced by the suite
/// itself.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<LintViolation>> {
    let mut out = Vec::new();
    for sub in LINT_ROOTS {
        let dir = root.join(sub);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&dir, &mut files)?;
        for f in files {
            let source = fs::read_to_string(&f)?;
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.extend(lint_file(&rel, &source));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = "/// docs may mention HashMap freely\n\
                   let s = \"HashMap in a string\";\n\
                   /* block HashMap comment */ let x = 1;\n";
        assert!(lint_file("crates/core/src/env.rs", src).is_empty());
    }

    #[test]
    fn allow_covers_same_and_next_line() {
        let src = "// ncs-lint: allow(hash-collection)\n\
                   use std::collections::HashMap;\n\
                   use std::collections::HashSet;\n";
        let v = lint_file("crates/core/src/env.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn raw_strings_are_stripped() {
        // `r"…\"` must not treat the backslash as an escape, and interior
        // quotes in `r#"…"#` must not terminate the literal early — either
        // desync would hide (or invent) the real HashMap on the last line.
        let src = "let a = r\"HashMap \\\";\n\
                   let b = r#\"HashMap \" still inside\"#;\n\
                   use std::collections::HashMap;\n";
        let v = lint_file("crates/core/src/env.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn raw_identifiers_stay_code() {
        let src = "let r#type = HashMap::new();\n";
        assert_eq!(lint_file("crates/core/src/env.rs", src).len(), 1);
    }

    #[test]
    fn cfg_not_test_and_cfg_attr_are_not_exempt() {
        let src = "#[cfg(not(test))]\n\
                   mod m {\n\
                       use std::collections::HashMap;\n\
                   }\n\
                   #[cfg_attr(test, allow(dead_code))]\n\
                   fn f() {\n\
                       use std::collections::HashSet;\n\
                   }\n";
        let v = lint_file("crates/core/src/env.rs", src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 3);
        assert_eq!(v[1].line, 7);
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "fn a() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                   }\n\
                   use std::collections::HashSet;\n";
        let v = lint_file("crates/core/src/env.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn real_shim_is_exempt_from_clock_and_threads() {
        let src = "let t = Instant::now();\nstd::thread::spawn(f);\n";
        assert!(lint_file("crates/core/src/real.rs", src).is_empty());
        assert_eq!(lint_file("crates/core/src/env.rs", src).len(), 2);
    }

    #[test]
    fn fallback_engine_file_is_exempt_from_thread_spawn() {
        let src = "let h = std::thread::Builder::new().spawn(body);\n";
        assert!(lint_file("crates/sim/src/engine/os_thread.rs", src).is_empty());
        // Same code anywhere else in the kernel is a violation.
        let v = lint_file("crates/sim/src/engine/mod.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "thread-spawn");
    }

    #[test]
    fn any_std_thread_use_is_flagged_in_hot_paths() {
        // Not a spawn — but park/sleep/current would still smuggle OS
        // scheduling into the deterministic dispatch path.
        let src = "std::thread::park();\n";
        for hot in ["crates/sim/src/kernel.rs", "crates/mts/src/sched.rs"] {
            let v = lint_file(hot, src);
            assert_eq!(v.len(), 1, "expected a hit in {hot}");
            assert_eq!(v[0].rule, "thread-spawn");
        }
        // Outside the hot paths only spawn/Builder fire.
        assert!(lint_file("crates/core/src/env.rs", src).is_empty());
        assert_eq!(
            lint_file("crates/core/src/env.rs", "std::thread::spawn(f);\n").len(),
            1
        );
    }

    #[test]
    fn float_time_only_fires_in_the_sim_clock() {
        let src = "pub fn secs(x: f64) -> f64 { x }\n";
        assert_eq!(lint_file("crates/sim/src/time.rs", src).len(), 1);
        assert!(lint_file("crates/sim/src/other.rs", src).is_empty());
    }

    #[test]
    fn guard_binding_live_across_park_is_flagged() {
        let src = "fn f(m: &M) {\n\
                       let g = m.inner.lock();\n\
                       g.touch();\n\
                       ctx.park();\n\
                   }\n";
        let v = lint_file("crates/core/src/env.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "guard-across-park");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn guard_released_before_park_is_clean() {
        // The idiomatic pattern everywhere in the runtime: take the lock
        // in an inner block (or drop it explicitly), then park.
        let scoped = "fn f(m: &M) {\n\
                          {\n\
                              let g = m.inner.lock();\n\
                              g.touch();\n\
                          }\n\
                          ctx.park();\n\
                      }\n";
        assert!(lint_file("crates/core/src/env.rs", scoped).is_empty());
        let dropped = "fn f(m: &M) {\n\
                           let g = m.inner.lock();\n\
                           g.touch();\n\
                           drop(g);\n\
                           ctx.park();\n\
                       }\n";
        assert!(lint_file("crates/core/src/env.rs", dropped).is_empty());
    }

    #[test]
    fn borrowing_let_temporary_does_not_hold_the_guard() {
        // `let n = q.lock().len();` drops the guard at the `;` — parking
        // afterwards is fine.
        let src = "fn f(m: &M) {\n\
                       let n = m.q.lock().len();\n\
                       ctx.park();\n\
                       let _ = n;\n\
                   }\n";
        assert!(lint_file("crates/core/src/env.rs", src).is_empty());
    }

    #[test]
    fn match_scrutinee_guard_lives_through_the_block() {
        // The PR2 bug class: a `match m.lock().pop() { … }` scrutinee
        // temporary keeps the mutex locked for the whole match.
        let src = "fn f(m: &M) {\n\
                       match m.q.lock().pop() {\n\
                           Some(x) => consume(x),\n\
                           None => mctx.block(),\n\
                       }\n\
                       ctx.park();\n\
                   }\n";
        let v = lint_file("crates/core/src/env.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4, "the block() inside the match is the bug");
    }

    #[test]
    fn same_line_order_matters() {
        // Park before the lock is taken: clean. Park after: flagged.
        let before = "fn f() {\n\
                          ctx.park(); let g = m.lock();\n\
                      }\n";
        assert!(lint_file("crates/core/src/env.rs", before).is_empty());
        let after = "fn f() {\n\
                         let g = m.lock(); ctx.park();\n\
                     }\n";
        let v = lint_file("crates/core/src/env.rs", after);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "guard-across-park");
    }

    #[test]
    fn unpark_and_definitions_are_not_park_points() {
        let src = "fn f(m: &M) {\n\
                       let g = m.inner.lock();\n\
                       g.unpark();\n\
                   }\n";
        assert!(lint_file("crates/core/src/env.rs", src).is_empty());
    }

    #[test]
    fn guard_across_park_allow_accepts_underscores() {
        let src = "fn f(m: &M) {\n\
                       let g = m.inner.lock();\n\
                       // ncs-lint: allow(guard_across_park)\n\
                       ctx.park();\n\
                   }\n";
        assert!(lint_file("crates/core/src/env.rs", src).is_empty());
    }
}
