//! Schedule-space exploration: a model-checking mode for the NCS stack.
//!
//! The simulator is deterministic, but the determinism is a *convention*:
//! at every [`ChoicePoint`](ncs_sim::ChoicePoint) (same-timestamp event
//! tie-breaks, round-robin
//! rotation inside an MTS priority level, fault-timing placement) the
//! kernel picks one of several equally legal alternatives. Correct
//! protocol code must behave the same under **any** resolution of those
//! choices. This module drives a workload through alternative legal
//! schedules and asserts the runtime oracles on every run:
//!
//! * the in-run invariant checks (wait-for-graph deadlock detection,
//!   credit/buffer conservation, queue validation) wired through
//!   [`AnalysisConfig`](ncs_sim::AnalysisConfig);
//! * clean termination — no blocked threads, no panics, no horizon hit;
//! * workload-level result verification (bit-exact payloads);
//! * *observational equivalence* — the delivered-payload digest sequence
//!   per `(src, dst, tag)` channel must be identical across every
//!   explored schedule (compared against the canonical schedule).
//!
//! Two exploration strategies share the engine: a seeded random walk
//! ([`Mode::Walk`]) and a bounded exhaustive DFS over decision prefixes
//! ([`Mode::Dfs`]). Every run's decisions are recorded; a failing
//! schedule is greedily minimized and serialized with
//! [`format_trace`](ncs_sim::format_trace) so `explore --replay <trace>`
//! reproduces it deterministically.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ncs_core::{ErrorControl, FlowControl, NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::{ChaosNet, ChaosParams, HostParams, IdealFabric, Network, TcpNet, TcpParams};
use ncs_sim::{
    format_trace, AnalysisConfig, ChannelKey, Decision, DecisionLog, Dur,
    RandomWalkPolicy, SchedulePolicy, ScriptedPolicy, Sim, SimTime, StopReason,
};

/// Everything the oracles need from one run of a workload under one
/// schedule.
#[derive(Clone, Debug, Default)]
pub struct Observation {
    /// Every scheduling decision taken, in consultation order. Filled in
    /// by the engine from its [`DecisionLog`]; workloads may leave it
    /// empty.
    pub decisions: Vec<Decision>,
    /// The kernel's FNV-1a digest over the executed event sequence — two
    /// runs with equal hashes executed the identical interleaving.
    pub trace_hash: u64,
    /// Oracle failures: invariant violations, blocked threads, panics,
    /// result-verification failures. Empty means the run was clean.
    pub problems: Vec<String>,
    /// Per-channel delivered-payload digest sequences, the observable
    /// compared across schedules.
    pub deliveries: BTreeMap<ChannelKey, Vec<u64>>,
}

/// A simulation the explorer can run many times under different
/// [`SchedulePolicy`]s. Implementations must be deterministic given the
/// policy: same policy decisions, same [`Observation`].
pub trait Workload: Sync {
    /// Builds a fresh simulation, installs `policy`, runs to completion
    /// (bounded!), and reports what the oracles saw.
    fn run(&self, policy: Box<dyn SchedulePolicy>) -> Observation;
}

/// Exploration strategy.
#[derive(Clone, Copy, Debug)]
pub enum Mode {
    /// `walks` independent seeded random walks (seeds `seed`,
    /// `seed + 1`, ...).
    Walk {
        /// Number of schedules to sample.
        walks: usize,
        /// Base RNG seed; each walk uses `seed + i`.
        seed: u64,
    },
    /// Bounded exhaustive search: breadth-first over decision prefixes
    /// that deviate from the canonical schedule in at most `depth`
    /// positions, capped at `max_schedules` runs total.
    Dfs {
        /// Maximum number of non-canonical decisions per schedule.
        depth: usize,
        /// Hard cap on the number of schedules run.
        max_schedules: usize,
    },
}

/// A failing schedule, minimized and ready to replay.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The decisions of the minimized failing schedule.
    pub decisions: Vec<Decision>,
    /// [`format_trace`] serialization of `decisions` — the replay file.
    pub trace: String,
    /// What the oracles reported on the minimized schedule.
    pub problems: Vec<String>,
    /// Kernel trace hash of the minimized failing run.
    pub trace_hash: u64,
}

/// Summary of one exploration campaign.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Total schedules run (including the canonical baseline).
    pub schedules_explored: usize,
    /// Distinct kernel trace hashes seen — a lower bound on the number of
    /// genuinely different interleavings exercised.
    pub distinct_interleavings: usize,
    /// Number of explored schedules on which at least one oracle failed.
    pub violations: usize,
    /// True when [`Mode::Dfs`] stopped at its schedule cap with frontier
    /// left unexplored.
    pub truncated: bool,
    /// Trace hash of the canonical (all-defaults) schedule.
    pub baseline_trace_hash: u64,
    /// The first failing schedule found, minimized. `None` when every
    /// explored schedule was clean.
    pub counterexample: Option<Counterexample>,
}

/// Runs `workload` once under a scripted schedule, returning the full
/// observation with `decisions` filled from the decision log. An empty
/// script is the canonical schedule.
pub fn run_scripted(workload: &dyn Workload, script: Vec<u32>) -> Observation {
    let log = DecisionLog::new();
    let policy = Box::new(ScriptedPolicy::new(script, Arc::clone(&log)));
    let mut obs = workload.run(policy);
    obs.decisions = log.snapshot();
    obs
}

/// Oracle failures of `obs` relative to the canonical `baseline`: the
/// run's own problems plus the cross-schedule observational-equivalence
/// check (delivered payload sequence per channel must match).
pub fn problems_vs_baseline(obs: &Observation, baseline: &Observation) -> Vec<String> {
    let mut out = obs.problems.clone();
    if obs.deliveries != baseline.deliveries {
        out.push(divergence_detail(&baseline.deliveries, &obs.deliveries));
    }
    out
}

/// Human-readable description of the first channel whose delivery
/// sequence differs between two schedules.
fn divergence_detail(
    base: &BTreeMap<ChannelKey, Vec<u64>>,
    got: &BTreeMap<ChannelKey, Vec<u64>>,
) -> String {
    let keys: BTreeSet<&ChannelKey> = base.keys().chain(got.keys()).collect();
    for k in keys {
        let b = base.get(k).map(Vec::as_slice).unwrap_or(&[]);
        let g = got.get(k).map(Vec::as_slice).unwrap_or(&[]);
        if b != g {
            return format!(
                "[observational-divergence] channel (p{} -> p{}, tag {:#x}): \
                 baseline delivered {} payload(s), this schedule {} \
                 (first differing digests {:?} vs {:?})",
                k.0,
                k.1,
                k.2,
                b.len(),
                g.len(),
                b.iter().zip(g.iter()).find(|(x, y)| x != y).map(|(x, _)| x),
                b.iter().zip(g.iter()).find(|(x, y)| x != y).map(|(_, y)| y),
            );
        }
    }
    "[observational-divergence] delivery logs differ".to_string()
}

/// Explores the schedule space of `workload` under `mode`.
///
/// The canonical schedule runs first and becomes the observational
/// baseline; it counts toward `schedules_explored`, and a baseline
/// failure is itself reported (with an empty replay trace). The first
/// failing alternative schedule is minimized with a small re-run budget
/// before being returned as the counterexample.
pub fn explore(workload: &dyn Workload, mode: Mode) -> ExploreReport {
    let baseline = run_scripted(workload, Vec::new());
    let mut report = ExploreReport {
        schedules_explored: 1,
        baseline_trace_hash: baseline.trace_hash,
        ..ExploreReport::default()
    };
    let mut hashes = BTreeSet::new();
    hashes.insert(baseline.trace_hash);

    if !baseline.problems.is_empty() {
        report.violations += 1;
        report.counterexample = Some(Counterexample {
            decisions: Vec::new(),
            trace: format_trace(&[]),
            problems: baseline.problems.clone(),
            trace_hash: baseline.trace_hash,
        });
    }

    let mut consider = |report: &mut ExploreReport, obs: &Observation, baseline: &Observation| {
        hashes.insert(obs.trace_hash);
        let problems = problems_vs_baseline(obs, baseline);
        if !problems.is_empty() {
            report.violations += 1;
            if report.counterexample.is_none() {
                report.counterexample =
                    Some(minimize(workload, baseline, &obs.decisions, 32));
            }
        }
    };

    match mode {
        Mode::Walk { walks, seed } => {
            for i in 0..walks {
                let log = DecisionLog::new();
                let policy =
                    Box::new(RandomWalkPolicy::new(seed.wrapping_add(i as u64), Arc::clone(&log)));
                let mut obs = workload.run(policy);
                obs.decisions = log.snapshot();
                report.schedules_explored += 1;
                consider(&mut report, &obs, &baseline);
            }
        }
        Mode::Dfs { depth, max_schedules } => {
            // Breadth-first over deviation prefixes: a frontier entry is a
            // script that fixes every decision up to and including its
            // last (non-canonical) entry; decisions past the script follow
            // the canonical default, and each completed run spawns children
            // that deviate at one later position.
            let mut frontier: VecDeque<(Vec<u32>, usize)> = VecDeque::new();
            expand(&baseline.decisions, 0, depth, &mut frontier);
            while let Some((script, deviations)) = frontier.pop_front() {
                if report.schedules_explored >= max_schedules {
                    report.truncated = true;
                    break;
                }
                let fixed = script.len();
                let obs = run_scripted(workload, script);
                report.schedules_explored += 1;
                consider(&mut report, &obs, &baseline);
                expand_from(&obs.decisions, fixed, deviations, depth, &mut frontier);
            }
        }
    }

    report.distinct_interleavings = hashes.len();
    report
}

/// Queues every single-deviation child of `decisions` whose deviation
/// position is at least `fixed` (earlier positions are already pinned by
/// the parent's script).
fn expand_from(
    decisions: &[Decision],
    fixed: usize,
    deviations: usize,
    depth: usize,
    frontier: &mut VecDeque<(Vec<u32>, usize)>,
) {
    if deviations >= depth {
        return;
    }
    for i in fixed..decisions.len() {
        for alt in 1..decisions[i].arity {
            let mut child: Vec<u32> = decisions[..i].iter().map(|d| d.chosen).collect();
            child.push(alt);
            frontier.push_back((child, deviations + 1));
        }
    }
}

/// [`expand_from`] for the root: the baseline has no pinned prefix.
fn expand(
    decisions: &[Decision],
    deviations: usize,
    depth: usize,
    frontier: &mut VecDeque<(Vec<u32>, usize)>,
) {
    expand_from(decisions, 0, deviations, depth, frontier);
}

/// Greedily minimizes a failing schedule: try zeroing each non-canonical
/// decision (keeping the change when the failure persists), then drop the
/// canonical tail. Re-runs are capped at `budget`; the returned
/// counterexample is the final minimized schedule, re-run once to confirm.
pub fn minimize(
    workload: &dyn Workload,
    baseline: &Observation,
    failing: &[Decision],
    budget: usize,
) -> Counterexample {
    let mut script: Vec<u32> = failing.iter().map(|d| d.chosen).collect();
    while script.last() == Some(&0) {
        script.pop();
    }
    let mut spent = 0usize;
    let mut i = 0;
    while i < script.len() && spent < budget {
        if script[i] != 0 {
            let mut cand = script.clone();
            cand[i] = 0;
            while cand.last() == Some(&0) {
                cand.pop();
            }
            spent += 1;
            let obs = run_scripted(workload, cand.clone());
            if !problems_vs_baseline(&obs, baseline).is_empty() {
                script = cand;
                // Zeroing may have shortened the script past `i`.
                if i >= script.len() {
                    break;
                }
                continue; // re-examine position i (values shifted? no —
                          // positions are stable, but stay conservative)
            }
        }
        i += 1;
    }
    // Confirm the minimized schedule and capture its decisions verbatim.
    let obs = run_scripted(workload, script);
    let problems = problems_vs_baseline(&obs, baseline);
    // Serialize only the scripted prefix: trailing canonical decisions
    // replay identically without being pinned.
    let mut prefix = obs.decisions.clone();
    while prefix.last().map(|d| d.chosen) == Some(0) {
        prefix.pop();
    }
    Counterexample {
        trace: format_trace(&prefix),
        decisions: prefix,
        problems,
        trace_hash: obs.trace_hash,
    }
}

/// The explorer's standard workload: an `n`-host ring exchange over the
/// full NCS stack (credit flow control, checksum-retransmit error
/// control, TCP-over-ATM network model). Every host runs a ring thread —
/// `rounds` iterations of send-to-successor / receive-from-predecessor
/// with a deterministic per-(sender, round) payload, verified bit-exact
/// on receipt — plus an equal-priority compute thread, so the MTS
/// round-robin rotation choice point is genuinely exercised.
#[derive(Clone, Copy, Debug)]
pub struct RingWorkload {
    /// Number of hosts (2–4 is the intended exploration range).
    pub hosts: usize,
    /// Ring rounds per host.
    pub rounds: usize,
    /// Wrap the network in a light [`ChaosNet`] (cell loss + corruption)
    /// so the fault-timing choice point fires too.
    pub chaos: bool,
}

impl Default for RingWorkload {
    fn default() -> RingWorkload {
        RingWorkload {
            hosts: 2,
            rounds: 3,
            chaos: false,
        }
    }
}

impl RingWorkload {
    /// The payload host `sender` sends in `round`: deterministic,
    /// distinct per (sender, round).
    fn pattern(sender: usize, round: usize) -> Vec<u8> {
        (0..96)
            .map(|i| (sender.wrapping_mul(31) ^ round.wrapping_mul(7) ^ i) as u8)
            .collect()
    }
}

impl Workload for RingWorkload {
    fn run(&self, policy: Box<dyn SchedulePolicy>) -> Observation {
        let hosts = self.hosts;
        let rounds = self.rounds;
        let sim = Sim::new();
        let (analysis, sink) = AnalysisConfig::recording();
        let cfg = NcsConfig {
            flow: FlowControl::Credit { window: 2 },
            error: ErrorControl::ChecksumRetransmit,
            poll_cost: Dur::from_nanos(100),
            analysis,
            ..NcsConfig::default()
        };
        let fabric = Arc::new(IdealFabric::new(hosts, Dur::from_micros(20)));
        let host_params = (0..hosts).map(|_| HostParams::test_fast()).collect();
        let mut net: Arc<dyn Network> =
            Arc::new(TcpNet::new(fabric, host_params, TcpParams::ip_over_atm()));
        if self.chaos {
            net = ChaosNet::new(net, ChaosParams::new(0.002, 0.001, 0xC0FF_EE00));
        }
        let verified = Arc::new(AtomicUsize::new(0));
        let verified_in = Arc::clone(&verified);
        NcsWorld::launch(&sim, vec![net], hosts, cfg, move |id, proc_| {
            let verified = Arc::clone(&verified_in);
            proc_.t_create("ring", 5, move |ncs| {
                for r in 0..rounds {
                    let tag = 40 + r as u32;
                    let next = (id + 1) % hosts;
                    let prev = (id + hosts - 1) % hosts;
                    ncs.send(
                        ThreadAddr::new(next, 0),
                        tag,
                        RingWorkload::pattern(id, r).into(),
                    );
                    let m = ncs.recv(Some(prev), None, Some(tag));
                    if m.data[..] == RingWorkload::pattern(prev, r)[..] {
                        verified.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
            proc_.t_create("mixer", 5, move |ncs| {
                for _ in 0..3 {
                    ncs.compute(50_000, "mix");
                }
            });
        });
        sim.set_schedule_policy(policy);
        // Generous horizon: even chaotic schedules with retransmit storms
        // finish in well under a simulated second; a horizon hit is a bug.
        let out = sim.run_bounded(Some(SimTime::ZERO + Dur::from_secs(2)), 4_000_000);

        let mut problems: Vec<String> = sink.take().iter().map(|v| format!("{v}")).collect();
        if out.reason != StopReason::Completed {
            problems.push(format!(
                "run did not complete: stopped by {:?} after {} events",
                out.reason, out.events
            ));
        }
        for b in &out.blocked {
            problems.push(format!("[blocked] thread still blocked at end of run: {b}"));
        }
        for p in &out.panics {
            problems.push(format!("[panic] {p}"));
        }
        let got = verified.load(Ordering::SeqCst);
        if out.reason == StopReason::Completed && got != hosts * rounds {
            problems.push(format!(
                "[payload] {got}/{} ring receptions verified bit-exact",
                hosts * rounds
            ));
        }
        let deliveries = sink.deliveries();
        let trace_hash = sim.trace_hash();
        sim.finish();
        Observation {
            decisions: Vec::new(),
            trace_hash,
            problems,
            deliveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny pure-kernel workload: three same-timestamp events append
    /// distinct marks; the delivered "channel" is the order of marks. A
    /// correct workload would not let tie-break order leak into its
    /// observable — this one deliberately does, so the engine's
    /// divergence oracle has something to find.
    struct TieLeakWorkload;

    impl Workload for TieLeakWorkload {
        fn run(&self, policy: Box<dyn SchedulePolicy>) -> Observation {
            let sim = Sim::new();
            let order: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::new(parking_lot::Mutex::new(vec![]));
            for i in 0..3u64 {
                let order = Arc::clone(&order);
                sim.schedule_at(SimTime::ZERO + Dur::from_micros(5), move |_| {
                    order.lock().push(i);
                });
            }
            sim.set_schedule_policy(policy);
            let out = sim.run_bounded(Some(SimTime::ZERO + Dur::from_millis(1)), 10_000);
            let mut deliveries = BTreeMap::new();
            deliveries.insert((0usize, 0usize, 0u64), order.lock().clone());
            let mut problems = Vec::new();
            if out.reason != StopReason::Completed {
                problems.push("did not complete".to_string());
            }
            let trace_hash = sim.trace_hash();
            sim.finish();
            Observation {
                decisions: Vec::new(),
                trace_hash,
                problems,
                deliveries,
            }
        }
    }

    #[test]
    fn dfs_finds_tie_break_divergence_and_minimizes_it() {
        let report = explore(
            &TieLeakWorkload,
            Mode::Dfs {
                depth: 2,
                max_schedules: 40,
            },
        );
        assert!(report.violations > 0, "tie-break leak must be caught");
        assert!(report.distinct_interleavings > 1);
        let ce = report.counterexample.expect("counterexample");
        assert!(!ce.problems.is_empty(), "minimized schedule still fails");
        // The minimized schedule replays to the identical interleaving.
        let script: Vec<u32> = ce.decisions.iter().map(|d| d.chosen).collect();
        let again = run_scripted(&TieLeakWorkload, script);
        assert_eq!(again.trace_hash, ce.trace_hash, "replay is deterministic");
    }

    #[test]
    fn walk_on_symmetric_workload_reports_clean() {
        /// Same three tied events, but the observable is the *multiset*
        /// of marks — schedule-independent, as correct code should be.
        struct TieSafeWorkload;
        impl Workload for TieSafeWorkload {
            fn run(&self, policy: Box<dyn SchedulePolicy>) -> Observation {
                let mut obs = TieLeakWorkload.run(policy);
                for seq in obs.deliveries.values_mut() {
                    seq.sort_unstable();
                }
                obs
            }
        }
        let report = explore(&TieSafeWorkload, Mode::Walk { walks: 6, seed: 11 });
        assert_eq!(report.violations, 0);
        assert_eq!(report.schedules_explored, 7);
        assert!(report.counterexample.is_none());
    }

    #[test]
    fn ring_baseline_is_clean_and_records_every_delivery() {
        let w = RingWorkload {
            hosts: 2,
            rounds: 2,
            chaos: false,
        };
        let obs = run_scripted(&w, Vec::new());
        assert!(obs.problems.is_empty(), "baseline problems: {:?}", obs.problems);
        assert!(!obs.decisions.is_empty(), "choice points must be consulted");
        // One channel per (direction, round) tag pair, each with exactly
        // one app-accepted payload: 2 hosts x 2 rounds = 4 deliveries.
        let total: usize = obs.deliveries.values().map(Vec::len).sum();
        assert_eq!(total, 4, "delivery log: {:?}", obs.deliveries);
        // Deterministic: same empty script, same interleaving.
        let again = run_scripted(&w, Vec::new());
        assert_eq!(again.trace_hash, obs.trace_hash);
        assert_eq!(again.deliveries, obs.deliveries);
    }

    #[test]
    fn trailing_canonical_decisions_are_trimmed_from_the_trace() {
        let report = explore(
            &TieLeakWorkload,
            Mode::Dfs {
                depth: 1,
                max_schedules: 10,
            },
        );
        let ce = report.counterexample.expect("counterexample");
        assert!(
            ce.decisions.last().map(|d| d.chosen) != Some(0),
            "minimized trace must not end in canonical choices: {:?}",
            ce.decisions
        );
    }
}
