//! Post-run classification of a finished simulation.
//!
//! The kernel and the MTS scheduler already report violations *during* a
//! run when handed a recording [`AnalysisConfig`](ncs_sim::AnalysisConfig):
//! the scheduler scans its wait-for graph at every idle transition
//! (deadlocks), and the kernel flags threads still parked when the event
//! queue drains (lost wakeups). This module is the offline complement — it
//! takes a [`RunOutcome`] plus the MTS runtimes that took part and explains
//! every stuck thread, cycle or not, without requiring a sink to have been
//! attached up front.

use ncs_mts::{Mts, MtsThreadState};
use ncs_sim::{RunOutcome, StopReason, Violation};

/// Classifies every thread still blocked at the end of a completed run.
///
/// Returns one [`Violation`] per stuck MTS thread:
///
/// * `check == "deadlock"` — the thread sits on a wait-for cycle (it waits
///   on a thread that transitively waits back on it). The detail names the
///   full cycle.
/// * `check == "lost-wakeup"` — the thread is blocked (or parked in
///   external wait) with no cycle to blame: whoever should have called
///   `unblock` never did.
///
/// Runs stopped by a time or event limit return no violations — threads
/// legitimately mid-wait when the clock is cut off are not stuck.
pub fn check_outcome(out: &RunOutcome, mtses: &[&Mts]) -> Vec<Violation> {
    if out.reason != StopReason::Completed {
        return Vec::new();
    }
    let mut violations = Vec::new();
    for mts in mtses {
        let report = mts.thread_report();
        let cycles = mts.deadlock_cycles();
        let proc = mts.proc_name();
        let name_of = |tid: ncs_mts::MtsTid| {
            report
                .iter()
                .find(|t| t.tid == tid)
                .map(|t| t.name.clone())
                .unwrap_or_else(|| format!("t{}", tid.0))
        };
        let mut on_cycle = Vec::new();
        for cycle in &cycles {
            let path = cycle
                .iter()
                .map(|&t| format!("{}/{}", proc, name_of(t)))
                .collect::<Vec<_>>()
                .join(" -> ");
            for &tid in cycle {
                on_cycle.push(tid);
                violations.push(Violation {
                    check: "deadlock",
                    actor: format!("{}/{}", proc, name_of(tid)),
                    detail: format!("on wait cycle {path}"),
                });
            }
        }
        for t in &report {
            let stuck = matches!(
                t.state,
                MtsThreadState::Blocked | MtsThreadState::External
            );
            if stuck && !on_cycle.contains(&t.tid) {
                violations.push(Violation {
                    check: "lost-wakeup",
                    actor: format!("{}/{}", proc, t.name),
                    detail: match t.wait_on {
                        Some(w) => format!(
                            "blocked on {}/{} which never unblocked it",
                            proc,
                            name_of(w)
                        ),
                        None => "blocked anonymously; no unblock ever arrived".to_string(),
                    },
                });
            }
        }
    }
    violations
}
