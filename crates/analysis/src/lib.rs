//! # ncs-analysis — static and runtime analysis for the NCS stack
//!
//! The *policy* half of the analysis layer (the *mechanism* —
//! [`ncs_sim::AnalysisConfig`], [`ncs_sim::InvariantSink`],
//! [`ncs_sim::WaitGraph`] — lives in `ncs-sim` so every layer can report
//! without dependency cycles). This crate provides:
//!
//! * [`lint`] — a source-level determinism lint over the simulation-facing
//!   crates. The whole point of the reproduction is bit-exact replay from a
//!   seed; the lint rejects the constructions that silently break it
//!   (hash-ordered maps, wall-clock reads, raw OS threads, unseeded
//!   randomness, floating-point time arithmetic).
//! * [`runtime`] — post-run classification of a [`ncs_sim::RunOutcome`]
//!   into deadlocks (threads on a wait cycle) and lost wakeups (threads
//!   parked forever with no cycle to blame).
//! * [`explore`] — schedule-space exploration: a random-walk fuzzer and a
//!   bounded exhaustive checker over the kernel's legal scheduling choice
//!   points, asserting every runtime oracle (deadlock/lost-wakeup
//!   detection, conservation checks, bit-exact payloads) plus
//!   cross-schedule observational equivalence on each explored schedule,
//!   with replayable minimized counterexample traces.
//! * a `ncs-analysis` binary driving all of it for CI:
//!   `cargo run -p ncs-analysis -- [lint|smoke|explore|all]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod lint;
pub mod runtime;

pub use explore::{
    explore, problems_vs_baseline, run_scripted, Counterexample, ExploreReport, Mode, Observation,
    RingWorkload, Workload,
};
pub use lint::{lint_file, lint_workspace, LintViolation, LINT_RULES};
pub use runtime::check_outcome;
