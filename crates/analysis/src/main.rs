//! CI driver for the analysis layer: `cargo run -p ncs-analysis -- [mode]`.
//!
//! Modes:
//!
//! * `lint` — run the source-level determinism lint over the
//!   simulation-facing crates.
//! * `smoke` — run the three paper applications (matrix multiply, FFT,
//!   JPEG pipeline) at small scale with every runtime invariant check
//!   armed: credit flow control plus checksum-retransmit error control,
//!   deadlock/lost-wakeup detection, queue validation, and the protocol
//!   conservation checks.
//! * `explore` — schedule-space exploration over the ring workload:
//!   random-walk and bounded-DFS schedule fuzzing with every oracle armed
//!   plus cross-schedule observational equivalence. Flags: `--smoke`
//!   (fast CI preset), `--walks N`, `--dfs DEPTH`, `--max-schedules N`,
//!   `--seed S`, `--hosts N`, `--rounds N`, `--chaos`,
//!   `--replay FILE`. Writes a JSON summary to
//!   `results/BENCH_explore.json` and, on failure, a minimized replay
//!   trace to `results/explore_counterexample.trace`.
//! * `all` (default) — lint + smoke + explore `--smoke`.
//!
//! Exit code 1 on any violation, 2 on a usage error, with one line per
//! finding.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use ncs_analysis::{explore, lint_workspace, problems_vs_baseline, run_scripted, Mode, RingWorkload};
use ncs_apps::fft::{fft_ncs_setup_with, FftConfig};
use ncs_apps::jpeg_dist::{setup_jpeg_ncs_with, JpegConfig};
use ncs_apps::matmul::{setup_matmul_ncs_with, MatmulConfig};
use ncs_core::{ErrorControl, FlowControl, NcsConfig, CAUSAL_STAGES};
use ncs_net::Testbed;
use ncs_sim::{parse_trace, AnalysisConfig, InvariantSink, Sim};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().cloned().unwrap_or_else(|| "all".to_string());
    let mut failures = 0usize;
    if mode == "lint" || mode == "all" {
        failures += run_lint();
    }
    if mode == "smoke" || mode == "all" {
        failures += run_smoke();
    }
    if mode == "explore" || mode == "all" {
        let flags = if mode == "all" {
            vec!["--smoke".to_string()]
        } else {
            args[1..].to_vec()
        };
        match run_explore(&flags) {
            Ok(n) => failures += n,
            Err(e) => {
                eprintln!("{e}");
                eprintln!(
                    "usage: ncs-analysis explore [--smoke] [--walks N] [--dfs DEPTH] \
                     [--max-schedules N] [--seed S] [--hosts N] [--rounds N] [--chaos] \
                     [--replay FILE]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if !matches!(mode.as_str(), "lint" | "smoke" | "explore" | "all") {
        eprintln!("usage: ncs-analysis [lint|smoke|explore|all]");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!("ncs-analysis: {failures} violation(s)");
        ExitCode::FAILURE
    } else {
        println!("ncs-analysis: clean");
        ExitCode::SUCCESS
    }
}

/// Parsed `explore` flags.
struct ExploreArgs {
    walks: usize,
    dfs: Option<usize>,
    max_schedules: usize,
    seed: u64,
    hosts: usize,
    rounds: usize,
    chaos: bool,
    replay: Option<String>,
}

fn parse_explore_args(flags: &[String]) -> Result<ExploreArgs, String> {
    let mut a = ExploreArgs {
        walks: 24,
        dfs: None,
        max_schedules: 200,
        seed: 0x5EED,
        hosts: 2,
        rounds: 3,
        chaos: false,
        replay: None,
    };
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<u64, String> {
        it.next()
            .ok_or_else(|| format!("explore: {name} needs a value"))?
            .parse()
            .map_err(|_| format!("explore: bad value for {name}"))
    }
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            // CI preset: small, fast, deterministic (~seconds).
            "--smoke" => {
                a.walks = 24;
                a.dfs = Some(1);
                a.max_schedules = 60;
                a.hosts = 2;
                a.rounds = 2;
            }
            "--walks" => a.walks = num(&mut it, "--walks")? as usize,
            "--dfs" => a.dfs = Some(num(&mut it, "--dfs")? as usize),
            "--max-schedules" => a.max_schedules = num(&mut it, "--max-schedules")? as usize,
            "--seed" => a.seed = num(&mut it, "--seed")?,
            "--hosts" => a.hosts = num(&mut it, "--hosts")? as usize,
            "--rounds" => a.rounds = num(&mut it, "--rounds")? as usize,
            "--chaos" => a.chaos = true,
            "--replay" => {
                a.replay = Some(
                    it.next()
                        .ok_or("explore: --replay needs a trace file")?
                        .clone(),
                )
            }
            other => return Err(format!("explore: unknown flag `{other}`")),
        }
    }
    if a.hosts < 2 || a.hosts > 8 {
        return Err("explore: --hosts must be in 2..=8".to_string());
    }
    Ok(a)
}

/// Runs the schedule explorer (or a single replay); returns the number of
/// failing schedules and writes `results/BENCH_explore.json`.
fn run_explore(flags: &[String]) -> Result<usize, String> {
    let a = parse_explore_args(flags)?;
    let workload = RingWorkload {
        hosts: a.hosts,
        rounds: a.rounds,
        chaos: a.chaos,
    };

    if let Some(path) = &a.replay {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("explore: cannot read replay trace {path}: {e}"))?;
        let decisions = parse_trace(&text).map_err(|e| format!("explore: {path}: {e}"))?;
        let script: Vec<u32> = decisions.iter().map(|d| d.chosen).collect();
        println!(
            "explore: replaying {} decision(s) from {path} on ring(hosts={}, rounds={}{})",
            script.len(),
            a.hosts,
            a.rounds,
            if a.chaos { ", chaos" } else { "" },
        );
        let baseline = run_scripted(&workload, Vec::new());
        let obs = run_scripted(&workload, script);
        let problems = problems_vs_baseline(&obs, &baseline);
        for p in &problems {
            eprintln!("explore[replay]: {p}");
        }
        println!(
            "explore: replay trace_hash {:#018x} ({} problem(s))",
            obs.trace_hash,
            problems.len()
        );
        return Ok(usize::from(!problems.is_empty()));
    }

    let mut failing = 0usize;
    let mut summaries = Vec::new();

    // Random-walk pass.
    let walk_report = explore(
        &workload,
        Mode::Walk {
            walks: a.walks,
            seed: a.seed,
        },
    );
    println!(
        "explore[walk]: {} schedule(s), {} distinct interleaving(s), {} violating",
        walk_report.schedules_explored,
        walk_report.distinct_interleavings,
        walk_report.violations
    );
    summaries.push(("walk", walk_report));

    // Bounded exhaustive pass (optional outside --smoke/--dfs).
    if let Some(depth) = a.dfs {
        let dfs_report = explore(
            &workload,
            Mode::Dfs {
                depth,
                max_schedules: a.max_schedules,
            },
        );
        println!(
            "explore[dfs]: {} schedule(s), {} distinct interleaving(s), {} violating{}",
            dfs_report.schedules_explored,
            dfs_report.distinct_interleavings,
            dfs_report.violations,
            if dfs_report.truncated {
                " (truncated at cap)"
            } else {
                ""
            }
        );
        summaries.push(("dfs", dfs_report));
    }

    std::fs::create_dir_all("results").map_err(|e| format!("explore: create results/: {e}"))?;
    let mut json = String::from("{\n  \"workload\": \"ring\",\n");
    json.push_str(&format!(
        "  \"hosts\": {},\n  \"rounds\": {},\n  \"chaos\": {},\n  \"seed\": {},\n  \"passes\": [\n",
        a.hosts, a.rounds, a.chaos, a.seed
    ));
    for (i, (name, r)) in summaries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{name}\", \"schedules_explored\": {}, \
             \"distinct_interleavings\": {}, \"violations\": {}, \"truncated\": {}, \
             \"baseline_trace_hash\": \"{:#018x}\"}}{}\n",
            r.schedules_explored,
            r.distinct_interleavings,
            r.violations,
            r.truncated,
            r.baseline_trace_hash,
            if i + 1 < summaries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("results/BENCH_explore.json", json)
        .map_err(|e| format!("explore: write results/BENCH_explore.json: {e}"))?;

    for (name, r) in &summaries {
        failing += r.violations;
        if let Some(ce) = &r.counterexample {
            for p in &ce.problems {
                eprintln!("explore[{name}]: {p}");
            }
            let path = "results/explore_counterexample.trace";
            std::fs::write(path, &ce.trace)
                .map_err(|e| format!("explore: write {path}: {e}"))?;
            eprintln!(
                "explore[{name}]: minimized counterexample ({} decision(s)) written to {path}; \
                 replay with `ncs-analysis explore --replay {path}`",
                ce.decisions.len()
            );
        }
    }
    if failing == 0 {
        println!("explore: all explored schedules clean and observationally equivalent");
    }
    Ok(failing)
}

/// Lints the workspace sources; returns the number of violations.
fn run_lint() -> usize {
    // CARGO_MANIFEST_DIR = <root>/crates/analysis.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    match lint_workspace(root) {
        Ok(violations) => {
            for v in &violations {
                eprintln!("lint: {v}");
            }
            println!("lint: scanned {}, {} violation(s)", root.display(), violations.len());
            violations.len()
        }
        Err(e) => {
            eprintln!("lint: cannot read workspace sources: {e}");
            1
        }
    }
}

/// An NCS configuration with every protocol feature the invariant checks
/// watch: credit flow control and checksum-retransmit error control.
fn checked_cfg() -> (NcsConfig, Arc<InvariantSink>) {
    let (analysis, sink) = AnalysisConfig::recording();
    (
        NcsConfig {
            flow: FlowControl::Credit { window: 4 },
            error: ErrorControl::ChecksumRetransmit,
            analysis,
            ..NcsConfig::default()
        },
        sink,
    )
}

/// Drains `sink` and reports; returns the number of violations plus one if
/// the app failed to verify.
fn tally(app: &str, verified: bool, sink: &InvariantSink) -> usize {
    let violations = sink.take();
    for v in &violations {
        eprintln!("smoke[{app}]: {v}");
    }
    let mut n = violations.len();
    if !verified {
        eprintln!("smoke[{app}]: result verification failed");
        n += 1;
    } else {
        println!("smoke[{app}]: verified, {} violation(s)", violations.len());
    }
    n
}

/// Checks the causal timelines the observability layer stamped during the
/// run: every tracked message's stage marks must follow the canonical
/// `enqueued -> ... -> delivered` walk in order. Returns violation count.
fn check_timelines(app: &str, sim: &Sim) -> usize {
    let errs = sim.with_metrics(|m| m.validate_timelines(&CAUSAL_STAGES));
    for e in &errs {
        eprintln!("smoke[{app}]: timeline: {e}");
    }
    errs.len()
}

/// Runs the three applications with invariant checking on; returns the
/// total number of violations.
fn run_smoke() -> usize {
    let mut failures = 0usize;

    {
        let sim = Sim::new();
        let (cfg, sink) = checked_cfg();
        let handle = setup_matmul_ncs_with(
            &sim,
            Testbed::SunAtmLanTcp.build(3),
            MatmulConfig {
                dim: 32,
                nodes: 2,
                seed: 0x4D4D,
            },
            cfg,
        );
        sim.run().assert_clean();
        failures += tally("matmul", handle.verify(), &sink);
        failures += check_timelines("matmul", &sim);
    }

    {
        let sim = Sim::new();
        let (cfg, sink) = checked_cfg();
        let handle = fft_ncs_setup_with(
            &sim,
            Testbed::SunAtmLanTcp.build(3),
            FftConfig {
                m: 64,
                sets: 1,
                nodes: 2,
                seed: 0xFF7,
            },
            cfg,
        );
        sim.run().assert_clean();
        failures += tally("fft", handle.verify(), &sink);
        failures += check_timelines("fft", &sim);
    }

    {
        let sim = Sim::new();
        let (cfg, sink) = checked_cfg();
        let handle = setup_jpeg_ncs_with(
            &sim,
            Testbed::SunAtmLanTcp.build(3),
            JpegConfig {
                width: 64,
                height: 64,
                quality: 60,
                entropy: ncs_apps::jpeg::EntropyKind::Huffman,
                nodes: 2,
                seed: 4,
            },
            cfg,
        );
        sim.run().assert_clean();
        failures += tally("jpeg", handle.verify(), &sink);
        failures += check_timelines("jpeg", &sim);
    }

    failures
}
