//! CI driver for the analysis layer: `cargo run -p ncs-analysis -- [mode]`.
//!
//! Modes:
//!
//! * `lint` — run the source-level determinism lint over the
//!   simulation-facing crates.
//! * `smoke` — run the three paper applications (matrix multiply, FFT,
//!   JPEG pipeline) at small scale with every runtime invariant check
//!   armed: credit flow control plus checksum-retransmit error control,
//!   deadlock/lost-wakeup detection, queue validation, and the protocol
//!   conservation checks.
//! * `all` (default) — both.
//!
//! Exit code 1 on any violation, with one line per finding.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use ncs_analysis::lint_workspace;
use ncs_apps::fft::{fft_ncs_setup_with, FftConfig};
use ncs_apps::jpeg_dist::{setup_jpeg_ncs_with, JpegConfig};
use ncs_apps::matmul::{setup_matmul_ncs_with, MatmulConfig};
use ncs_core::{ErrorControl, FlowControl, NcsConfig, CAUSAL_STAGES};
use ncs_net::Testbed;
use ncs_sim::{AnalysisConfig, InvariantSink, Sim};

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut failures = 0usize;
    if mode == "lint" || mode == "all" {
        failures += run_lint();
    }
    if mode == "smoke" || mode == "all" {
        failures += run_smoke();
    }
    if !matches!(mode.as_str(), "lint" | "smoke" | "all") {
        eprintln!("usage: ncs-analysis [lint|smoke|all]");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!("ncs-analysis: {failures} violation(s)");
        ExitCode::FAILURE
    } else {
        println!("ncs-analysis: clean");
        ExitCode::SUCCESS
    }
}

/// Lints the workspace sources; returns the number of violations.
fn run_lint() -> usize {
    // CARGO_MANIFEST_DIR = <root>/crates/analysis.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    match lint_workspace(root) {
        Ok(violations) => {
            for v in &violations {
                eprintln!("lint: {v}");
            }
            println!("lint: scanned {}, {} violation(s)", root.display(), violations.len());
            violations.len()
        }
        Err(e) => {
            eprintln!("lint: cannot read workspace sources: {e}");
            1
        }
    }
}

/// An NCS configuration with every protocol feature the invariant checks
/// watch: credit flow control and checksum-retransmit error control.
fn checked_cfg() -> (NcsConfig, Arc<InvariantSink>) {
    let (analysis, sink) = AnalysisConfig::recording();
    (
        NcsConfig {
            flow: FlowControl::Credit { window: 4 },
            error: ErrorControl::ChecksumRetransmit,
            analysis,
            ..NcsConfig::default()
        },
        sink,
    )
}

/// Drains `sink` and reports; returns the number of violations plus one if
/// the app failed to verify.
fn tally(app: &str, verified: bool, sink: &InvariantSink) -> usize {
    let violations = sink.take();
    for v in &violations {
        eprintln!("smoke[{app}]: {v}");
    }
    let mut n = violations.len();
    if !verified {
        eprintln!("smoke[{app}]: result verification failed");
        n += 1;
    } else {
        println!("smoke[{app}]: verified, {} violation(s)", violations.len());
    }
    n
}

/// Checks the causal timelines the observability layer stamped during the
/// run: every tracked message's stage marks must follow the canonical
/// `enqueued -> ... -> delivered` walk in order. Returns violation count.
fn check_timelines(app: &str, sim: &Sim) -> usize {
    let errs = sim.with_metrics(|m| m.validate_timelines(&CAUSAL_STAGES));
    for e in &errs {
        eprintln!("smoke[{app}]: timeline: {e}");
    }
    errs.len()
}

/// Runs the three applications with invariant checking on; returns the
/// total number of violations.
fn run_smoke() -> usize {
    let mut failures = 0usize;

    {
        let sim = Sim::new();
        let (cfg, sink) = checked_cfg();
        let handle = setup_matmul_ncs_with(
            &sim,
            Testbed::SunAtmLanTcp.build(3),
            MatmulConfig {
                dim: 32,
                nodes: 2,
                seed: 0x4D4D,
            },
            cfg,
        );
        sim.run().assert_clean();
        failures += tally("matmul", handle.verify(), &sink);
        failures += check_timelines("matmul", &sim);
    }

    {
        let sim = Sim::new();
        let (cfg, sink) = checked_cfg();
        let handle = fft_ncs_setup_with(
            &sim,
            Testbed::SunAtmLanTcp.build(3),
            FftConfig {
                m: 64,
                sets: 1,
                nodes: 2,
                seed: 0xFF7,
            },
            cfg,
        );
        sim.run().assert_clean();
        failures += tally("fft", handle.verify(), &sink);
        failures += check_timelines("fft", &sim);
    }

    {
        let sim = Sim::new();
        let (cfg, sink) = checked_cfg();
        let handle = setup_jpeg_ncs_with(
            &sim,
            Testbed::SunAtmLanTcp.build(3),
            JpegConfig {
                width: 64,
                height: 64,
                quality: 60,
                entropy: ncs_apps::jpeg::EntropyKind::Huffman,
                nodes: 2,
                seed: 4,
            },
            cfg,
        );
        sim.run().assert_clean();
        failures += tally("jpeg", handle.verify(), &sink);
        failures += check_timelines("jpeg", &sim);
    }

    failures
}
