//! Decimation-in-frequency FFT (paper Section 5.3, Table 3, Figs. 19–21).
//!
//! # The paper's distribution
//!
//! With `M` sample points and `T` units (p4: `T = N` processes; NCS:
//! `T = 2N` threads), each unit owns `c = M/(2T)` butterfly *rows*: arrays
//! `A = V[base .. base+c]` and `B = V[base + D .. base+D+c]`, the top and
//! bottom inputs of its butterflies. Every stage computes
//!
//! ```text
//! X = A + B          (stays in the top sub-problem)
//! Y = (A − B) · Wᵏ   (moves to the bottom sub-problem)
//! ```
//!
//! For the first `log₂ T` stages the partner rows live on another unit:
//! the unit in the lower half of its group keeps `X` and receives the
//! partner's `X` (it continues in the top sub-problem); the upper unit
//! sends its `X`, keeps `Y`, and receives the partner's `Y`. After the
//! exchanges, each unit owns one contiguous sub-problem of size `2c` and
//! finishes with plain local DIF stages — for NCS the **last exchange
//! partner is the sibling thread on the same node**, which is exactly the
//! paper's "the last communication step is local" observation.
//!
//! Everything is verified: the assembled distributed spectrum must match
//! the sequential DIF to ~1e-9 and a naive O(M²) DFT to numerical
//! tolerance.

use bytes::Bytes;
use ncs_core::codec::{bytes_to_complex, complex_to_bytes};
use ncs_core::{NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::{Network, NodeId};
use ncs_p4::create_procgroup;
use ncs_sim::{Dur, Sim, SimRng};
use parking_lot::Mutex;
use std::f64::consts::PI;
use std::sync::Arc;

use crate::costs::AppCosts;
use crate::util::charge_compute;
use crate::workloads::test_signal;

/// A complex sample.
pub type Cx = (f64, f64);

#[inline]
fn cadd(a: Cx, b: Cx) -> Cx {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn csub(a: Cx, b: Cx) -> Cx {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn cmul(a: Cx, b: Cx) -> Cx {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Twiddle factor `W_m^k = exp(-2πik/m)`.
#[inline]
pub fn twiddle(k: usize, m: usize) -> Cx {
    let ang = -2.0 * PI * k as f64 / m as f64;
    (ang.cos(), ang.sin())
}

/// Bit-reverses `i` within `bits` bits.
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

/// In-place sequential DIF FFT; output is left in bit-reversed order.
pub fn dif_fft_in_place(x: &mut [Cx]) {
    let m = x.len();
    assert!(m.is_power_of_two(), "FFT length must be a power of two");
    let mut size = m;
    while size > 1 {
        let half = size / 2;
        for block in (0..m).step_by(size) {
            for j in 0..half {
                let a = x[block + j];
                let b = x[block + j + half];
                x[block + j] = cadd(a, b);
                x[block + j + half] = cmul(csub(a, b), twiddle(j, size));
            }
        }
        size = half;
    }
}

/// Full sequential FFT returning the spectrum in natural order.
pub fn fft(input: &[Cx]) -> Vec<Cx> {
    let mut v = input.to_vec();
    dif_fft_in_place(&mut v);
    let bits = v.len().trailing_zeros();
    let mut out = vec![(0.0, 0.0); v.len()];
    for (p, &val) in v.iter().enumerate() {
        out[bit_reverse(p, bits)] = val;
    }
    out
}

/// Naive O(M²) DFT — the ground truth for tests.
pub fn naive_dft(input: &[Cx]) -> Vec<Cx> {
    let m = input.len();
    (0..m)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (n, &x) in input.iter().enumerate() {
                acc = cadd(acc, cmul(x, twiddle(k * n % m, m)));
            }
            acc
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The per-unit distributed state machine (shared by the p4 and NCS drivers).
// ---------------------------------------------------------------------------

/// One unit's slice of the computation.
pub struct FftUnit {
    m: usize,
    t: usize,
    u: usize,
    c: usize,
    base: usize,
    a: Vec<Cx>,
    b: Vec<Cx>,
}

/// What a unit must do after computing a cross stage.
pub struct Exchange {
    /// Partner unit index.
    pub partner: usize,
    /// Values to send to the partner.
    pub outgoing: Vec<Cx>,
    /// Whether this unit is the lower member (keeps the top sub-problem).
    pub lower: bool,
}

impl FftUnit {
    /// Creates unit `u` of `t` holding its initial `A`/`B` chunks of an
    /// `m`-point problem.
    pub fn new(m: usize, t: usize, u: usize, a: Vec<Cx>, b: Vec<Cx>) -> FftUnit {
        assert!(m.is_power_of_two() && t.is_power_of_two() && t >= 1);
        let c = m / (2 * t);
        assert!(c >= 1, "more units than butterfly rows");
        assert_eq!(a.len(), c);
        assert_eq!(b.len(), c);
        FftUnit {
            m,
            t,
            u,
            c,
            base: u * c,
            a,
            b,
        }
    }

    /// Number of cross (communication) stages.
    pub fn cross_stages(t: usize) -> usize {
        t.trailing_zeros() as usize
    }

    /// Initial `A` chunk positions for unit `u`: `V[u·c .. (u+1)·c]`.
    pub fn init_a_range(m: usize, t: usize, u: usize) -> (usize, usize) {
        let c = m / (2 * t);
        (u * c, (u + 1) * c)
    }

    /// Initial `B` chunk positions: `V[m/2 + u·c ..]`.
    pub fn init_b_range(m: usize, t: usize, u: usize) -> (usize, usize) {
        let c = m / (2 * t);
        (m / 2 + u * c, m / 2 + (u + 1) * c)
    }

    /// Butterflies per stage (for cost charging).
    pub fn rows(&self) -> usize {
        self.c
    }

    /// Computes cross-stage `step` and prepares the exchange.
    pub fn cross_compute(&mut self, step: usize) -> Exchange {
        assert!(step < Self::cross_stages(self.t));
        let size = self.m >> step; // current sub-problem size
        let half = size / 2;
        let mut x = Vec::with_capacity(self.c);
        let mut y = Vec::with_capacity(self.c);
        for j in 0..self.c {
            let p = self.base + j;
            let jj = p % size;
            debug_assert!(jj < half, "A row must sit in the top half");
            let w = twiddle(jj << step, self.m);
            x.push(cadd(self.a[j], self.b[j]));
            y.push(cmul(csub(self.a[j], self.b[j]), w));
        }
        let d = self.t >> (step + 1);
        let lower = (self.u % (2 * d)) < d;
        if lower {
            // Keep X as the new A; partner's X becomes the new B.
            self.a = x;
            Exchange {
                partner: self.u + d,
                outgoing: y,
                lower: true,
            }
        } else {
            // Keep Y as the new B; partner's Y becomes the new A. The owned
            // positions shift down into the bottom sub-problem.
            self.b = y;
            self.base += self.m >> (step + 2);
            Exchange {
                partner: self.u - d,
                outgoing: x,
                lower: false,
            }
        }
    }

    /// Installs the partner's chunk after the exchange for `step`.
    pub fn install(&mut self, ex_lower: bool, incoming: Vec<Cx>) {
        assert_eq!(incoming.len(), self.c);
        if ex_lower {
            self.b = incoming;
        } else {
            self.a = incoming;
        }
    }

    /// Runs the remaining local stages; returns `(first position, values)` —
    /// a contiguous slice of the bit-reversed-order result vector.
    pub fn finish_local(mut self) -> (usize, Vec<Cx>) {
        let mut local: Vec<Cx> = Vec::with_capacity(2 * self.c);
        local.append(&mut self.a);
        local.append(&mut self.b);
        // The local block is exactly one sub-problem: plain DIF finishes it.
        dif_fft_in_place(&mut local);
        (self.base, local)
    }

    /// Local butterfly stage count (for cost charging): `log2(2c)` stages
    /// of `c` butterflies each.
    pub fn local_stages(&self) -> usize {
        (2 * self.c).trailing_zeros() as usize
    }
}

/// Runs the whole distributed dance in-process (no simulation) — the
/// correctness core, also used directly by tests.
pub fn distributed_fft_reference(input: &[Cx], t: usize) -> Vec<Cx> {
    let m = input.len();
    let mut units: Vec<FftUnit> = (0..t)
        .map(|u| {
            let (a0, a1) = FftUnit::init_a_range(m, t, u);
            let (b0, b1) = FftUnit::init_b_range(m, t, u);
            FftUnit::new(m, t, u, input[a0..a1].to_vec(), input[b0..b1].to_vec())
        })
        .collect();
    for step in 0..FftUnit::cross_stages(t) {
        let exchanges: Vec<Exchange> = units
            .iter_mut()
            .map(|unit| unit.cross_compute(step))
            .collect();
        // Deliver all chunks "simultaneously".
        let outgoing: Vec<(usize, Vec<Cx>)> = exchanges
            .iter()
            .map(|e| (e.partner, e.outgoing.clone()))
            .collect();
        for (u, ex) in exchanges.iter().enumerate() {
            let incoming = outgoing
                .iter()
                .find(|(p, _)| *p == u)
                .map(|(_, v)| v.clone())
                .expect("partner symmetric");
            let _ = u;
            units[u].install(ex.lower, incoming);
        }
    }
    let bits = m.trailing_zeros();
    let mut out = vec![(0.0, 0.0); m];
    for unit in units {
        let (base, vals) = unit.finish_local();
        for (q, v) in vals.into_iter().enumerate() {
            out[bit_reverse(base + q, bits)] = v;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Simulated drivers.
// ---------------------------------------------------------------------------

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct FftConfig {
    /// Points per sample set (the paper: 512).
    pub m: usize,
    /// Sample sets processed back to back (the paper: 8).
    pub sets: usize,
    /// Compute nodes.
    pub nodes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl FftConfig {
    /// The paper's Table 3 workload.
    pub fn paper(nodes: usize) -> FftConfig {
        FftConfig {
            m: 512,
            sets: 8,
            nodes,
            seed: 0xFF7,
        }
    }
}

/// Outcome of one run.
#[derive(Clone, Copy, Debug)]
pub struct FftRun {
    /// End-to-end execution time.
    pub elapsed: Dur,
    /// Result matched the sequential FFT on every sample set.
    pub verified: bool,
}

fn workload(cfg: &FftConfig) -> (Vec<Vec<Cx>>, Vec<Vec<Cx>>) {
    let mut rng = SimRng::new(cfg.seed);
    let sets: Vec<Vec<Cx>> = (0..cfg.sets)
        .map(|_| test_signal(cfg.m, &mut rng))
        .collect();
    let expect = sets.iter().map(|s| fft(s)).collect();
    (sets, expect)
}

fn verify(expect: &[Vec<Cx>], got: &Mutex<Vec<Option<Vec<Cx>>>>) -> bool {
    let got = got.lock();
    expect.iter().enumerate().all(|(i, e)| match &got[i] {
        None => false,
        Some(g) => {
            e.len() == g.len()
                && e.iter()
                    .zip(g)
                    .all(|(a, b)| (a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9)
        }
    })
}

/// Message tags.
const TAG_CHUNK_A: u32 = 1;
const TAG_CHUNK_B: u32 = 2;
const TAG_XCHG: u32 = 16; // + step
const TAG_RESULT: u32 = 8;

/// Runs the p4 (one single-threaded process per node) variant.
pub fn fft_p4(net: Arc<dyn Network>, cfg: FftConfig) -> FftRun {
    let sim = Sim::new();
    let (sets, expect) = workload(&cfg);
    let got: Arc<Mutex<Vec<Option<Vec<Cx>>>>> = Arc::new(Mutex::new(vec![None; cfg.sets]));

    if cfg.nodes == 1 {
        let got2 = Arc::clone(&got);
        let host = net.host(NodeId(0)).clone();
        let costs = AppCosts::for_host(&host);
        let m = cfg.m;
        sim.spawn("p4-seq", move |ctx| {
            for (i, s) in sets.iter().enumerate() {
                let out = fft(s);
                let butterflies = (m / 2) as u64 * m.trailing_zeros() as u64;
                charge_compute(
                    ctx,
                    &host,
                    "proc0/main",
                    "fft",
                    butterflies * costs.butterfly_cycles,
                );
                got2.lock()[i] = Some(out);
            }
        });
        let out = sim.run();
        out.assert_clean();
        return FftRun {
            elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
            verified: verify(&expect, &got),
        };
    }

    let t = cfg.nodes; // units = node processes; host is rank 0 of n+1
    assert!(
        t.is_power_of_two(),
        "p4 FFT needs a power-of-two node count"
    );
    let m = cfg.m;
    let n_sets = cfg.sets;
    let sets = Arc::new(sets);
    let got2 = Arc::clone(&got);
    create_procgroup(&sim, net, t + 1, move |ctx, p| {
        let costs = AppCosts::for_host(p.net().host(NodeId(p.my_id() as u32)));
        if p.my_id() == 0 {
            for (si, set) in sets.iter().enumerate() {
                for u in 0..t {
                    let (a0, a1) = FftUnit::init_a_range(m, t, u);
                    let (b0, b1) = FftUnit::init_b_range(m, t, u);
                    p.send(
                        ctx,
                        TAG_CHUNK_A as i32,
                        u + 1,
                        complex_to_bytes(&set[a0..a1]),
                    );
                    p.send(
                        ctx,
                        TAG_CHUNK_B as i32,
                        u + 1,
                        complex_to_bytes(&set[b0..b1]),
                    );
                }
                let bits = m.trailing_zeros();
                let mut out = vec![(0.0, 0.0); m];
                for _ in 0..t {
                    let msg = p.recv(ctx, Some(TAG_RESULT as i32), None);
                    let (base, vals) = decode_result(&msg.data);
                    for (q, v) in vals.into_iter().enumerate() {
                        out[bit_reverse(base + q, bits)] = v;
                    }
                }
                got2.lock()[si] = Some(out);
            }
        } else {
            let u = p.my_id() - 1;
            for _ in 0..n_sets {
                let a = bytes_to_complex(&p.recv(ctx, Some(TAG_CHUNK_A as i32), Some(0)).data);
                let b = bytes_to_complex(&p.recv(ctx, Some(TAG_CHUNK_B as i32), Some(0)).data);
                let mut unit = FftUnit::new(m, t, u, a, b);
                let actor = format!("proc{}/main", p.my_id());
                for step in 0..FftUnit::cross_stages(t) {
                    let ex = unit.cross_compute(step);
                    charge_compute(
                        ctx,
                        p.net().host(NodeId(p.my_id() as u32)),
                        &actor,
                        "fft-stage",
                        unit.rows() as u64 * costs.butterfly_cycles,
                    );
                    p.send(
                        ctx,
                        (TAG_XCHG + step as u32) as i32,
                        ex.partner + 1,
                        complex_to_bytes(&ex.outgoing),
                    );
                    let inc = p.recv(
                        ctx,
                        Some((TAG_XCHG + step as u32) as i32),
                        Some(ex.partner + 1),
                    );
                    unit.install(ex.lower, bytes_to_complex(&inc.data));
                }
                let local_butterflies = unit.rows() as u64 * unit.local_stages() as u64;
                let (base, vals) = unit.finish_local();
                charge_compute(
                    ctx,
                    p.net().host(NodeId(p.my_id() as u32)),
                    &actor,
                    "fft-local",
                    local_butterflies * costs.butterfly_cycles,
                );
                p.send(ctx, TAG_RESULT as i32, 0, encode_result(base, &vals));
                // Re-create the unit next set.
            }
        }
    });
    let out = sim.run();
    out.assert_clean();
    FftRun {
        elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
        verified: verify(&expect, &got),
    }
}

/// Runs the NCS_MTS/p4 variant: two threads per node process (`T = 2N`
/// units); the final exchange partner is the sibling thread, so that hop
/// never touches the wire.
pub fn fft_ncs(net: Arc<dyn Network>, cfg: FftConfig) -> FftRun {
    fft_ncs_with(net, cfg, NcsConfig::default())
}

/// [`fft_ncs`] with an explicit NCS configuration (error control, flow
/// control, retransmission tuning) — what the chaos harness uses to run
/// the transpose-exchange FFT over a faulty transport.
pub fn fft_ncs_with(net: Arc<dyn Network>, cfg: FftConfig, ncs_cfg: NcsConfig) -> FftRun {
    let sim = Sim::new();
    let handle = fft_ncs_setup_with(&sim, net, cfg, ncs_cfg);
    let out = sim.run();
    out.assert_clean();
    FftRun {
        elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
        verified: handle.verify(),
    }
}

/// Correctness handle for a staged FFT run (see [`fft_ncs_setup_with`]).
pub struct FftHandle {
    expect: Vec<Vec<Cx>>,
    got: Arc<Mutex<Vec<Option<Vec<Cx>>>>>,
}

impl FftHandle {
    /// Whether every sample set matched the sequential FFT. Call after
    /// `sim.run()`.
    pub fn verify(&self) -> bool {
        verify(&self.expect, &self.got)
    }
}

/// Stages the FFT onto an existing `sim` without running it, so harnesses
/// that need the simulator afterwards (tracing, metrics export) can drive
/// `sim.run()` themselves. Returns the verification handle.
pub fn fft_ncs_setup_with(
    sim: &Sim,
    net: Arc<dyn Network>,
    cfg: FftConfig,
    ncs_cfg: NcsConfig,
) -> FftHandle {
    let (sets, expect) = workload(&cfg);
    let got: Arc<Mutex<Vec<Option<Vec<Cx>>>>> = Arc::new(Mutex::new(vec![None; cfg.sets]));
    let m = cfg.m;
    let n_sets = cfg.sets;
    let sets = Arc::new(sets);
    let got2 = Arc::clone(&got);

    let (n_procs, t, host_procs) = if cfg.nodes == 1 {
        (1usize, 2usize, 0usize) // single proc: both units local, no host
    } else {
        assert!(cfg.nodes.is_power_of_two());
        (cfg.nodes + 1, 2 * cfg.nodes, 1usize)
    };

    // Unit u lives on proc (u/2 + host_procs), thread (u%2) — except in the
    // single-proc case where both units live on proc 0.
    let unit_addr = move |u: usize| -> ThreadAddr {
        if host_procs == 0 {
            ThreadAddr::new(0, u as u32)
        } else {
            ThreadAddr::new(u / 2 + 1, (u % 2) as u32)
        }
    };

    NcsWorld::launch(
        sim,
        vec![net],
        n_procs,
        ncs_cfg,
        move |id, proc_| {
            let costs = AppCosts::for_host(proc_.host());
            if host_procs == 1 && id == 0 {
                // Host: one thread distributes and collects (Fig. 20's host).
                let sets = Arc::clone(&sets);
                let got = Arc::clone(&got2);
                proc_.t_create("host", 5, move |ncs| {
                    for (si, set) in sets.iter().enumerate() {
                        for u in 0..t {
                            let (a0, a1) = FftUnit::init_a_range(m, t, u);
                            let (b0, b1) = FftUnit::init_b_range(m, t, u);
                            ncs.send(unit_addr(u), TAG_CHUNK_A, complex_to_bytes(&set[a0..a1]));
                            ncs.send(unit_addr(u), TAG_CHUNK_B, complex_to_bytes(&set[b0..b1]));
                        }
                        let bits = m.trailing_zeros();
                        let mut out = vec![(0.0, 0.0); m];
                        for _ in 0..t {
                            let msg = ncs.recv(None, None, Some(TAG_RESULT));
                            let (base, vals) = decode_result(&msg.data);
                            for (q, v) in vals.into_iter().enumerate() {
                                out[bit_reverse(base + q, bits)] = v;
                            }
                        }
                        got.lock()[si] = Some(out);
                    }
                });
                return;
            }
            // Worker process: two unit threads.
            for tid in 0..2usize {
                let u = if host_procs == 0 {
                    tid
                } else {
                    (id - 1) * 2 + tid
                };
                let sets = Arc::clone(&sets);
                let got = Arc::clone(&got2);
                proc_.t_create(format!("fft-t{tid}"), 5, move |ncs| {
                    for si in 0..n_sets {
                        let (a, b) = if host_procs == 0 {
                            // No host: read the input directly (shared memory).
                            let set = &sets[si];
                            let (a0, a1) = FftUnit::init_a_range(m, t, u);
                            let (b0, b1) = FftUnit::init_b_range(m, t, u);
                            (set[a0..a1].to_vec(), set[b0..b1].to_vec())
                        } else {
                            let a = ncs.recv(Some(0), None, Some(TAG_CHUNK_A));
                            let b = ncs.recv(Some(0), None, Some(TAG_CHUNK_B));
                            (bytes_to_complex(&a.data), bytes_to_complex(&b.data))
                        };
                        let mut unit = FftUnit::new(m, t, u, a, b);
                        for step in 0..FftUnit::cross_stages(t) {
                            let ex = unit.cross_compute(step);
                            ncs.compute(unit.rows() as u64 * costs.butterfly_cycles, "fft-stage");
                            ncs.send(
                                unit_addr(ex.partner),
                                TAG_XCHG + step as u32,
                                complex_to_bytes(&ex.outgoing),
                            );
                            let pa = unit_addr(ex.partner);
                            let inc = ncs.recv(
                                Some(pa.proc),
                                Some(pa.thread),
                                Some(TAG_XCHG + step as u32),
                            );
                            unit.install(ex.lower, bytes_to_complex(&inc.data));
                        }
                        let local_butterflies = unit.rows() as u64 * unit.local_stages() as u64;
                        ncs.compute(local_butterflies * costs.butterfly_cycles, "fft-local");
                        let (base, vals) = unit.finish_local();
                        if host_procs == 0 {
                            // Assemble in shared memory.
                            let bits = m.trailing_zeros();
                            let mut g = got.lock();
                            let entry = g[si].get_or_insert_with(|| vec![(0.0, 0.0); m]);
                            for (q, v) in vals.into_iter().enumerate() {
                                entry[bit_reverse(base + q, bits)] = v;
                            }
                        } else {
                            ncs.send(
                                ThreadAddr::new(0, 0),
                                TAG_RESULT,
                                encode_result(base, &vals),
                            );
                        }
                    }
                });
            }
        },
    );
    FftHandle { expect, got }
}

/// Serializes `(base, values)` for the result collection.
fn encode_result(base: usize, vals: &[Cx]) -> Bytes {
    let mut v = Vec::with_capacity(4 + vals.len() * 16);
    v.extend_from_slice(&(base as u32).to_le_bytes());
    v.extend_from_slice(&complex_to_bytes(vals));
    Bytes::from(v)
}

fn decode_result(b: &[u8]) -> (usize, Vec<Cx>) {
    let base = u32::from_le_bytes(b[..4].try_into().unwrap()) as usize;
    (base, bytes_to_complex(&b[4..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::{HostParams, IdealFabric, TcpNet, TcpParams};

    fn fast_net(n: usize) -> Arc<dyn Network> {
        let fabric = Arc::new(IdealFabric::new(n, Dur::from_micros(20)));
        let hosts = (0..n).map(|_| HostParams::test_fast()).collect();
        Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
    }

    #[test]
    fn fft_matches_naive_dft() {
        let mut rng = SimRng::new(3);
        let x = test_signal(64, &mut rng);
        let fast = fft(&x);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.0 - b.0).abs() < 1e-8 && (a.1 - b.1).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![(0.0, 0.0); 32];
        x[0] = (1.0, 0.0);
        for v in fft(&x) {
            assert!((v.0 - 1.0).abs() < 1e-12 && v.1.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_bin() {
        let m = 128;
        let x: Vec<Cx> = (0..m)
            .map(|i| {
                let ang = 2.0 * PI * 5.0 * i as f64 / m as f64;
                (ang.cos(), ang.sin())
            })
            .collect();
        let f = fft(&x);
        for (k, v) in f.iter().enumerate() {
            let mag = (v.0 * v.0 + v.1 * v.1).sqrt();
            if k == 5 {
                assert!((mag - m as f64).abs() < 1e-6, "bin 5 mag {mag}");
            } else {
                assert!(mag < 1e-6, "leak at bin {k}: {mag}");
            }
        }
    }

    #[test]
    fn distributed_reference_matches_sequential() {
        let mut rng = SimRng::new(4);
        let x = test_signal(128, &mut rng);
        let seq = fft(&x);
        for t in [1usize, 2, 4, 8, 16] {
            let dist = distributed_fft_reference(&x, t);
            for (k, (a, b)) in seq.iter().zip(&dist).enumerate() {
                assert!(
                    (a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9,
                    "t={t} bin {k}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn p4_variant_verifies() {
        for nodes in [1usize, 2, 4] {
            let cfg = FftConfig {
                m: 64,
                sets: 2,
                nodes,
                seed: 5,
            };
            let run = fft_p4(fast_net(nodes + 1), cfg);
            assert!(run.verified, "{nodes} nodes");
        }
    }

    #[test]
    fn ncs_variant_verifies() {
        for nodes in [1usize, 2, 4] {
            let cfg = FftConfig {
                m: 64,
                sets: 2,
                nodes,
                seed: 5,
            };
            let run = fft_ncs(fast_net(nodes + 1), cfg);
            assert!(run.verified, "{nodes} nodes");
        }
    }

    #[test]
    fn ncs_last_exchange_is_local() {
        // With T = 2N units, the final cross stage pairs unit 2k with
        // 2k+1 — sibling threads on the same process.
        for nodes in [2usize, 4] {
            let t = 2 * nodes;
            let last = FftUnit::cross_stages(t) - 1;
            let d = t >> (last + 1);
            assert_eq!(d, 1, "last exchange distance must be 1 unit");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The distributed dance equals the sequential FFT for arbitrary
        /// signals and any unit count.
        #[test]
        fn distributed_always_matches(
            seed in 0u64..1000,
            m_pow in 4u32..9,
            t_pow in 0u32..4,
        ) {
            let m = 1usize << m_pow;
            let t = 1usize << t_pow;
            prop_assume!(m / (2 * t) >= 1);
            let mut rng = SimRng::new(seed);
            let x: Vec<Cx> = (0..m)
                .map(|_| (rng.gen_f64_range(-1.0, 1.0), rng.gen_f64_range(-1.0, 1.0)))
                .collect();
            let seq = fft(&x);
            let dist = distributed_fft_reference(&x, t);
            for (a, b) in seq.iter().zip(&dist) {
                prop_assert!((a.0 - b.0).abs() < 1e-9);
                prop_assert!((a.1 - b.1).abs() < 1e-9);
            }
        }
    }
}
