//! The distributed JPEG pipeline (paper Section 5.2, Table 2, Figs. 15–18).
//!
//! Five stages: the host reads the image, ships bands to `N/2` compressor
//! nodes, compressed bands flow to `N/2` decompressor nodes, decompressed
//! bands return to the host, which combines and writes the output.
//!
//! * [`jpeg_p4`] — one thread per process: a compressor sits idle until its
//!   whole band has arrived, and each stage of its band is serialized with
//!   its communication (Figure 16, top).
//! * [`jpeg_ncs`] — two threads per process (Figures 17/18): each thread
//!   owns half its node's band, so compression of the first half overlaps
//!   reception of the second, and the host's thread 1 is unblocked
//!   (`NCS_unblock`) as soon as the image read finishes.
//!
//! The codec really runs: bytes on the wire are the real compressed bands,
//! and the host verifies the combined output against a sequentially
//! computed reference of the same partitioning.

use bytes::Bytes;
use ncs_core::{NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::{Network, NodeId};
use ncs_p4::create_procgroup;
use ncs_sim::{Dur, Sim, SimRng};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::costs::AppCosts;
use crate::jpeg::{compress_with, decompress, EntropyKind};
use crate::util::charge_compute;
use crate::workloads::GrayImage;

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct JpegConfig {
    /// Image width (8-aligned).
    pub width: usize,
    /// Image height (8-aligned; bands must split evenly).
    pub height: usize,
    /// Codec quality.
    pub quality: u8,
    /// Entropy stage (the X5 ablation knob).
    pub entropy: EntropyKind,
    /// Total compute nodes (even: half compress, half decompress).
    pub nodes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl JpegConfig {
    /// The paper's ~600 KB image (960×640 = 614,400 pixels).
    pub fn paper(nodes: usize) -> JpegConfig {
        JpegConfig {
            width: 960,
            height: 640,
            quality: 75,
            entropy: EntropyKind::RleVarint,
            nodes,
            seed: 0x1A6,
        }
    }

    /// The same pipeline with the canonical-Huffman entropy stage.
    pub fn with_huffman(mut self) -> JpegConfig {
        self.entropy = EntropyKind::Huffman;
        self
    }
}

/// Outcome of one run.
#[derive(Clone, Copy, Debug)]
pub struct JpegRun {
    /// End-to-end execution time.
    pub elapsed: Dur,
    /// Output matched the sequential reference of the same partitioning.
    pub verified: bool,
    /// Total compressed bytes that crossed the wire.
    pub compressed_bytes: usize,
}

fn workload(cfg: &JpegConfig) -> GrayImage {
    let mut rng = SimRng::new(cfg.seed);
    GrayImage::synthetic(cfg.width, cfg.height, &mut rng)
}

/// Sequential reference: roundtrips each of `parts` horizontal bands
/// independently and reassembles.
pub fn reference_pipeline(img: &GrayImage, parts: usize, quality: u8) -> GrayImage {
    reference_pipeline_with(img, parts, quality, EntropyKind::RleVarint)
}

/// [`reference_pipeline`] with an explicit entropy stage.
pub fn reference_pipeline_with(
    img: &GrayImage,
    parts: usize,
    quality: u8,
    entropy: EntropyKind,
) -> GrayImage {
    assert!(img.height.is_multiple_of(parts));
    let band_rows = img.height / parts;
    let mut out = GrayImage {
        width: img.width,
        height: img.height,
        pixels: vec![0; img.len()],
    };
    for p in 0..parts {
        let band = img.band(p * band_rows, (p + 1) * band_rows);
        let back = decompress(&compress_with(&band, quality, entropy)).expect("reference codec");
        out.pixels[p * band_rows * img.width..(p + 1) * band_rows * img.width]
            .copy_from_slice(&back.pixels);
    }
    out
}

const TAG_RAW: u32 = 1;
const TAG_COMPRESSED: u32 = 2;
const TAG_OUT: u32 = 3;

/// Deferred verification handle for the pipeline drivers.
pub struct JpegHandle {
    expect: GrayImage,
    got: Arc<Mutex<Option<GrayImage>>>,
    comp_bytes: Arc<Mutex<usize>>,
}

impl JpegHandle {
    /// True once the combined output matches the sequential reference.
    pub fn verify(&self) -> bool {
        self.got.lock().as_ref() == Some(&self.expect)
    }

    /// Compressed bytes that crossed the wire.
    pub fn compressed_bytes(&self) -> usize {
        *self.comp_bytes.lock()
    }
}

/// Runs the p4 pipeline.
pub fn jpeg_p4(net: Arc<dyn Network>, cfg: JpegConfig) -> JpegRun {
    let sim = Sim::new();
    let handle = setup_jpeg_p4(&sim, net, cfg);
    let out = sim.run();
    out.assert_clean();
    JpegRun {
        elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
        verified: handle.verify(),
        compressed_bytes: handle.compressed_bytes(),
    }
}

/// Schedules the p4 pipeline onto an existing simulation (used by the
/// timeline figures); the caller runs the sim.
pub fn setup_jpeg_p4(sim: &Sim, net: Arc<dyn Network>, cfg: JpegConfig) -> JpegHandle {
    assert!(
        cfg.nodes >= 2 && cfg.nodes.is_multiple_of(2),
        "need pairs of nodes"
    );
    let nc = cfg.nodes / 2; // compressors (procs 1..=nc); decompressors nc+1..=2nc
    assert!(cfg.height.is_multiple_of(nc) && (cfg.height / nc).is_multiple_of(8));
    let img = workload(&cfg);
    let expect = reference_pipeline_with(&img, nc, cfg.quality, cfg.entropy);
    let band_rows = cfg.height / nc;

    let got: Arc<Mutex<Option<GrayImage>>> = Arc::new(Mutex::new(None));
    let comp_bytes = Arc::new(Mutex::new(0usize));
    let img = Arc::new(img);
    let got2 = Arc::clone(&got);
    let cb2 = Arc::clone(&comp_bytes);
    create_procgroup(sim, net, cfg.nodes + 1, move |ctx, p| {
        let host_model = p.net().host(NodeId(p.my_id() as u32)).clone();
        let costs = AppCosts::for_host(&host_model);
        let actor = format!("proc{}/main", p.my_id());
        let my = p.my_id();
        if my == 0 {
            // Stage 1: read the image, distribute bands.
            charge_compute(
                ctx,
                &host_model,
                &actor,
                "read-image",
                img.len() as u64 * costs.io_per_byte,
            );
            for j in 1..=nc {
                let band = img.band((j - 1) * band_rows, j * band_rows);
                p.send(ctx, TAG_RAW as i32, j, Bytes::from(band.pixels));
            }
            // Stage 5: collect decompressed bands, combine, write.
            let mut out = GrayImage {
                width: cfg.width,
                height: cfg.height,
                pixels: vec![0; cfg.width * cfg.height],
            };
            for _ in 0..nc {
                let m = p.recv(ctx, Some(TAG_OUT as i32), None);
                let j = m.from - nc; // decompressor j+nc handles band j
                out.pixels[(j - 1) * band_rows * cfg.width..j * band_rows * cfg.width]
                    .copy_from_slice(&m.data);
            }
            charge_compute(
                ctx,
                &host_model,
                &actor,
                "write-image",
                out.len() as u64 * costs.io_per_byte,
            );
            *got2.lock() = Some(out);
        } else if my <= nc {
            // Compressor: stage 2.
            let m = p.recv(ctx, Some(TAG_RAW as i32), Some(0));
            let band = GrayImage {
                width: cfg.width,
                height: band_rows,
                pixels: m.data.to_vec(),
            };
            let compressed = compress_with(&band, cfg.quality, cfg.entropy);
            charge_compute(
                ctx,
                &host_model,
                &actor,
                "compress",
                band.len() as u64 * costs.jpeg_compress_per_byte,
            );
            *cb2.lock() += compressed.len();
            p.send(ctx, TAG_COMPRESSED as i32, my + nc, Bytes::from(compressed));
        } else {
            // Decompressor: stage 4.
            let m = p.recv(ctx, Some(TAG_COMPRESSED as i32), Some(my - nc));
            let band = decompress(&m.data).expect("valid compressed band");
            charge_compute(
                ctx,
                &host_model,
                &actor,
                "decompress",
                band.len() as u64 * costs.jpeg_decompress_per_byte,
            );
            p.send(ctx, TAG_OUT as i32, 0, Bytes::from(band.pixels));
        }
    });
    JpegHandle {
        expect,
        got,
        comp_bytes,
    }
}

/// Runs the NCS_MTS/p4 pipeline (two threads per process).
pub fn jpeg_ncs(net: Arc<dyn Network>, cfg: JpegConfig) -> JpegRun {
    let sim = Sim::new();
    let handle = setup_jpeg_ncs(&sim, net, cfg);
    let out = sim.run();
    out.assert_clean();
    JpegRun {
        elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
        verified: handle.verify(),
        compressed_bytes: handle.compressed_bytes(),
    }
}

/// Schedules the NCS_MTS/p4 pipeline onto an existing simulation.
pub fn setup_jpeg_ncs(sim: &Sim, net: Arc<dyn Network>, cfg: JpegConfig) -> JpegHandle {
    setup_jpeg_ncs_with(sim, net, cfg, NcsConfig::default())
}

/// [`setup_jpeg_ncs`] with an explicit NCS configuration (error control,
/// flow control, retransmission tuning) — what the chaos harness uses to
/// run the pipeline over a faulty transport.
pub fn setup_jpeg_ncs_with(
    sim: &Sim,
    net: Arc<dyn Network>,
    cfg: JpegConfig,
    ncs_cfg: NcsConfig,
) -> JpegHandle {
    assert!(
        cfg.nodes >= 2 && cfg.nodes.is_multiple_of(2),
        "need pairs of nodes"
    );
    let nc = cfg.nodes / 2;
    let band_rows = cfg.height / nc;
    assert!(
        cfg.height.is_multiple_of(nc) && band_rows.is_multiple_of(16),
        "half-bands must be 8-aligned"
    );
    let half_rows = band_rows / 2;
    let img = workload(&cfg);
    // Each thread roundtrips an independent half-band: 2·nc parts.
    let expect = reference_pipeline_with(&img, 2 * nc, cfg.quality, cfg.entropy);

    let got: Arc<Mutex<Option<GrayImage>>> = Arc::new(Mutex::new(None));
    let comp_bytes = Arc::new(Mutex::new(0usize));
    let img = Arc::new(img);
    let got2 = Arc::clone(&got);
    let cb2 = Arc::clone(&comp_bytes);
    let width = cfg.width;
    let height = cfg.height;
    let quality = cfg.quality;
    let entropy = cfg.entropy;

    NcsWorld::launch(
        sim,
        vec![net],
        cfg.nodes + 1,
        ncs_cfg,
        move |id, proc_| {
            let costs = AppCosts::for_host(proc_.host());
            let host_model = proc_.host().clone();
            if id == 0 {
                // Host (Figure 17): thread 0 reads, unblocks thread 1, both
                // distribute their half-bands and collect outputs.
                let out_shared: Arc<Mutex<GrayImage>> = Arc::new(Mutex::new(GrayImage {
                    width,
                    height,
                    pixels: vec![0; width * height],
                }));
                let done = Arc::new(Mutex::new(0usize));
                for t in 0..2u32 {
                    let img = Arc::clone(&img);
                    let out_shared = Arc::clone(&out_shared);
                    let done = Arc::clone(&done);
                    let got = Arc::clone(&got2);
                    let host_model = host_model.clone();
                    proc_.t_create(format!("host-t{t}"), 5, move |ncs| {
                        if t == 0 {
                            // Stage 1: read the whole image, then wake thread 1.
                            ncs.compute(img.len() as u64 * costs.io_per_byte, "read-image");
                            ncs.unblock(1);
                        } else {
                            ncs.block(); // until the image has been read
                        }
                        // Distribute this thread's half of every band.
                        for j in 1..=nc {
                            let lo = (j - 1) * band_rows + (t as usize) * half_rows;
                            let band = img.band(lo, lo + half_rows);
                            ncs.send(ThreadAddr::new(j, t), TAG_RAW, Bytes::from(band.pixels));
                        }
                        // Collect this thread's half-bands from decompressors.
                        for _ in 0..nc {
                            let m = ncs.recv(None, Some(t), Some(TAG_OUT));
                            let j = m.from.proc - nc;
                            let lo = (j - 1) * band_rows + (t as usize) * half_rows;
                            let mut out = out_shared.lock();
                            out.pixels[lo * width..(lo + half_rows) * width]
                                .copy_from_slice(&m.data);
                        }
                        let mut d = done.lock();
                        *d += 1;
                        if *d == 2 {
                            // Stage 5: write the combined image.
                            ncs.compute((width * height) as u64 * costs.io_per_byte, "write-image");
                            *got.lock() = Some(out_shared.lock().clone());
                        }
                        let _ = host_model;
                    });
                }
            } else if id <= nc {
                // Compressor node: each thread compresses its half-band.
                for t in 0..2u32 {
                    let cb = Arc::clone(&cb2);
                    proc_.t_create(format!("comp-t{t}"), 5, move |ncs| {
                        let m = ncs.recv(Some(0), Some(t), Some(TAG_RAW));
                        let band = GrayImage {
                            width,
                            height: half_rows,
                            pixels: m.data.to_vec(),
                        };
                        let compressed = compress_with(&band, quality, entropy);
                        ncs.compute(band.len() as u64 * costs.jpeg_compress_per_byte, "compress");
                        *cb.lock() += compressed.len();
                        let me = ncs.proc().id();
                        ncs.send(
                            ThreadAddr::new(me + nc, t),
                            TAG_COMPRESSED,
                            Bytes::from(compressed),
                        );
                    });
                }
            } else {
                // Decompressor node.
                for t in 0..2u32 {
                    proc_.t_create(format!("decomp-t{t}"), 5, move |ncs| {
                        let me = ncs.proc().id();
                        let m = ncs.recv(Some(me - nc), Some(t), Some(TAG_COMPRESSED));
                        let band = decompress(&m.data).expect("valid compressed band");
                        ncs.compute(
                            band.len() as u64 * costs.jpeg_decompress_per_byte,
                            "decompress",
                        );
                        ncs.send(ThreadAddr::new(0, t), TAG_OUT, Bytes::from(band.pixels));
                    });
                }
            }
        },
    );
    JpegHandle {
        expect,
        got,
        comp_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::{HostParams, IdealFabric, TcpNet, TcpParams};

    fn fast_net(n: usize) -> Arc<dyn Network> {
        let fabric = Arc::new(IdealFabric::new(n, Dur::from_micros(20)));
        let hosts = (0..n).map(|_| HostParams::test_fast()).collect();
        Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
    }

    fn small(nodes: usize) -> JpegConfig {
        JpegConfig {
            width: 64,
            height: 64,
            quality: 75,
            entropy: EntropyKind::RleVarint,
            nodes,
            seed: 21,
        }
    }

    #[test]
    fn p4_pipeline_verifies() {
        for nodes in [2usize, 4] {
            let run = jpeg_p4(fast_net(nodes + 1), small(nodes));
            assert!(run.verified, "{nodes} nodes");
            assert!(run.compressed_bytes > 0);
            assert!(run.compressed_bytes < 64 * 64, "no compression achieved");
        }
    }

    #[test]
    fn ncs_pipeline_verifies() {
        for nodes in [2usize, 4] {
            let run = jpeg_ncs(fast_net(nodes + 1), small(nodes));
            assert!(run.verified, "{nodes} nodes");
            assert!(run.compressed_bytes > 0);
        }
    }

    #[test]
    fn reference_pipeline_is_near_lossless_on_flat() {
        let img = GrayImage {
            width: 32,
            height: 32,
            pixels: vec![128; 1024],
        };
        let out = reference_pipeline(&img, 2, 90);
        assert!(out.psnr(&img) > 40.0);
    }
}
