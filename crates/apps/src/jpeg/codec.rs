//! The assembled grayscale JPEG-style codec.
//!
//! Pipeline per 8×8 block: level shift → DCT → quantize → zig-zag →
//! DC-differential RLE entropy coding. Fully real: compressed sizes (and
//! therefore the bytes the distributed pipeline ships) come from actual
//! encoding of the actual image.

use crate::jpeg::{dct, entropy, huffman, quant, zigzag};
use crate::workloads::GrayImage;

/// Compressed-image header magic.
const MAGIC: u32 = 0x4E43_4A50; // "NCJP"

/// Selectable entropy stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntropyKind {
    /// Byte-aligned zero-run + varint coder (fast, simple).
    RleVarint,
    /// Canonical Huffman with T.81-style (run, size) symbols and appended
    /// magnitude bits — the standard's approach; better ratios, bit-level.
    Huffman,
}

impl EntropyKind {
    fn id(self) -> u8 {
        match self {
            EntropyKind::RleVarint => 0,
            EntropyKind::Huffman => 1,
        }
    }

    fn from_id(v: u8) -> Option<EntropyKind> {
        match v {
            0 => Some(EntropyKind::RleVarint),
            1 => Some(EntropyKind::Huffman),
            _ => None,
        }
    }
}

/// Compression failure (decode side).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Not a compressed image (bad magic or header).
    BadHeader,
    /// Entropy stream damaged (RLE coder).
    Entropy(entropy::EntropyError),
    /// Entropy stream damaged (Huffman coder).
    Huffman(huffman::HuffError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "bad compressed-image header"),
            CodecError::Entropy(e) => write!(f, "entropy: {e}"),
            CodecError::Huffman(e) => write!(f, "huffman: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Compresses a grayscale image at the given quality (1..=100) with the
/// default (RLE/varint) entropy stage.
pub fn compress(img: &GrayImage, quality: u8) -> Vec<u8> {
    compress_with(img, quality, EntropyKind::RleVarint)
}

/// Compresses with an explicit entropy stage.
pub fn compress_with(img: &GrayImage, quality: u8, coder: EntropyKind) -> Vec<u8> {
    assert!(img.width.is_multiple_of(8) && img.height.is_multiple_of(8));
    let table = quant::table_for_quality(quality);
    let mut out = Vec::with_capacity(img.len() / 4 + 16);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(img.width as u32).to_le_bytes());
    out.extend_from_slice(&(img.height as u32).to_le_bytes());
    out.push(quality);
    out.push(coder.id());
    let mut zz_blocks = Vec::with_capacity(img.len() / 64);
    for by in (0..img.height).step_by(8) {
        for bx in (0..img.width).step_by(8) {
            let mut block = [0.0f64; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = f64::from(img.pixels[(by + y) * img.width + bx + x]) - 128.0;
                }
            }
            let coeffs = dct::forward_fast(&block);
            let q = quant::quantize(&coeffs, &table);
            zz_blocks.push(zigzag::to_zigzag(&q));
        }
    }
    match coder {
        EntropyKind::RleVarint => {
            let mut prev_dc = 0i16;
            for zz in &zz_blocks {
                entropy::encode_block(zz, &mut prev_dc, &mut out);
            }
        }
        EntropyKind::Huffman => {
            out.extend_from_slice(&huffman::encode_blocks(&zz_blocks));
        }
    }
    out
}

/// Decompresses a compressed image.
pub fn decompress(data: &[u8]) -> Result<GrayImage, CodecError> {
    if data.len() < 14 || data[..4] != MAGIC.to_le_bytes() {
        return Err(CodecError::BadHeader);
    }
    let width = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
    let height = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
    let quality = data[12];
    let coder = EntropyKind::from_id(data[13]).ok_or(CodecError::BadHeader)?;
    if width == 0 || height == 0 || !width.is_multiple_of(8) || !height.is_multiple_of(8) {
        return Err(CodecError::BadHeader);
    }
    let n_blocks = (width / 8) * (height / 8);
    let body = &data[14..];
    let zz_blocks: Vec<[i16; 64]> = match coder {
        EntropyKind::RleVarint => {
            let mut pos = 0;
            let mut prev_dc = 0i16;
            let mut v = Vec::with_capacity(n_blocks);
            for _ in 0..n_blocks {
                v.push(
                    entropy::decode_block(body, &mut pos, &mut prev_dc)
                        .map_err(CodecError::Entropy)?,
                );
            }
            v
        }
        EntropyKind::Huffman => {
            huffman::decode_blocks(body, n_blocks).map_err(CodecError::Huffman)?
        }
    };
    let table = quant::table_for_quality(quality);
    let mut pixels = vec![0u8; width * height];
    let mut it = zz_blocks.iter();
    for by in (0..height).step_by(8) {
        for bx in (0..width).step_by(8) {
            let zz = it.next().expect("block count checked");
            let q = zigzag::from_zigzag(zz);
            let coeffs = quant::dequantize(&q, &table);
            let block = dct::inverse_fast(&coeffs);
            for y in 0..8 {
                for x in 0..8 {
                    pixels[(by + y) * width + bx + x] =
                        (block[y * 8 + x] + 128.0).round().clamp(0.0, 255.0) as u8;
                }
            }
        }
    }
    Ok(GrayImage {
        width,
        height,
        pixels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_sim::SimRng;

    #[test]
    fn roundtrip_quality_vs_psnr() {
        let mut rng = SimRng::new(11);
        let img = GrayImage::synthetic(64, 64, &mut rng);
        let mut last_psnr = 0.0;
        for quality in [25u8, 50, 75, 95] {
            let compressed = compress(&img, quality);
            let back = decompress(&compressed).unwrap();
            let psnr = back.psnr(&img);
            assert!(psnr > 30.0, "q{quality}: PSNR {psnr:.1} dB too low");
            assert!(
                psnr >= last_psnr,
                "PSNR must not degrade with quality: q{quality} {psnr:.1} < {last_psnr:.1}"
            );
            last_psnr = psnr;
        }
    }

    #[test]
    fn achieves_real_compression() {
        let mut rng = SimRng::new(12);
        let img = GrayImage::synthetic(128, 128, &mut rng);
        let compressed = compress(&img, 75);
        let ratio = img.len() as f64 / compressed.len() as f64;
        assert!(ratio > 3.0, "compression ratio only {ratio:.2}:1");
    }

    #[test]
    fn flat_image_compresses_extremely() {
        let img = GrayImage {
            width: 64,
            height: 64,
            pixels: vec![77; 64 * 64],
        };
        let compressed = compress(&img, 75);
        assert!(compressed.len() < img.len() / 20);
        let back = decompress(&compressed).unwrap();
        assert!(back.psnr(&img) > 45.0);
    }

    #[test]
    fn dimensions_preserved() {
        let mut rng = SimRng::new(13);
        let img = GrayImage::synthetic(48, 24, &mut rng);
        let back = decompress(&compress(&img, 60)).unwrap();
        assert_eq!((back.width, back.height), (48, 24));
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(decompress(b"not an image"), Err(CodecError::BadHeader));
        let mut rng = SimRng::new(14);
        let img = GrayImage::synthetic(16, 16, &mut rng);
        let mut data = compress(&img, 75);
        data.truncate(data.len() - 4);
        assert!(matches!(decompress(&data), Err(CodecError::Entropy(_))));
    }
}

#[cfg(test)]
mod entropy_choice_tests {
    use super::*;
    use ncs_sim::SimRng;

    #[test]
    fn huffman_stage_roundtrips() {
        let mut rng = SimRng::new(31);
        let img = GrayImage::synthetic(64, 64, &mut rng);
        let data = compress_with(&img, 75, EntropyKind::Huffman);
        let back = decompress(&data).unwrap();
        assert!(back.psnr(&img) > 30.0);
    }

    #[test]
    fn both_stages_decode_to_identical_pixels() {
        // Same DCT/quantization, so the lossy output must match exactly.
        let mut rng = SimRng::new(32);
        let img = GrayImage::synthetic(48, 48, &mut rng);
        let a = decompress(&compress_with(&img, 60, EntropyKind::RleVarint)).unwrap();
        let b = decompress(&compress_with(&img, 60, EntropyKind::Huffman)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn huffman_smaller_on_large_images() {
        let mut rng = SimRng::new(33);
        let img = GrayImage::synthetic(256, 256, &mut rng);
        let rle = compress_with(&img, 75, EntropyKind::RleVarint);
        let huf = compress_with(&img, 75, EntropyKind::Huffman);
        assert!(
            huf.len() < rle.len(),
            "huffman {} !< rle {}",
            huf.len(),
            rle.len()
        );
    }

    #[test]
    fn unknown_coder_id_rejected() {
        let mut rng = SimRng::new(34);
        let img = GrayImage::synthetic(16, 16, &mut rng);
        let mut data = compress(&img, 75);
        data[13] = 9;
        assert_eq!(decompress(&data), Err(CodecError::BadHeader));
    }
}
