//! Zig-zag coefficient ordering: low frequencies first, so the quantized
//! tail of zeros is contiguous and run-length codes well.

/// Row-major index of the k-th coefficient in zig-zag order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Reorders a row-major block into zig-zag order.
pub fn to_zigzag(block: &[i16; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for (k, &idx) in ZIGZAG.iter().enumerate() {
        out[k] = block[idx];
    }
    out
}

/// Restores row-major order from zig-zag order.
pub fn from_zigzag(zz: &[i16; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for (k, &idx) in ZIGZAG.iter().enumerate() {
        out[idx] = zz[k];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn starts_dc_then_first_diagonal() {
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn diagonal_monotone_frequency() {
        // Sum of (row, col) — the "frequency shell" — never decreases by
        // more than 0 along the scan and covers 0..=14.
        let mut prev_shell = 0;
        for &idx in &ZIGZAG {
            let shell = idx / 8 + idx % 8;
            assert!(shell + 1 >= prev_shell, "shell jumped backwards at {idx}");
            prev_shell = shell;
        }
    }

    #[test]
    fn roundtrip() {
        let mut block = [0i16; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = i as i16 * 3 - 50;
        }
        assert_eq!(from_zigzag(&to_zigzag(&block)), block);
    }
}
