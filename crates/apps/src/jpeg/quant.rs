//! Quantization — where JPEG throws information away.

/// The ITU-T T.81 Annex K luminance quantization table (quality 50).
pub const BASE_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Scales the base table for a quality factor 1..=100 (libjpeg's rule).
pub fn table_for_quality(quality: u8) -> [u16; 64] {
    let q = quality.clamp(1, 100) as u32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut t = [0u16; 64];
    for (out, &base) in t.iter_mut().zip(BASE_LUMA.iter()) {
        *out = ((u32::from(base) * scale + 50) / 100).clamp(1, 255) as u16;
    }
    t
}

/// Quantizes DCT coefficients (round-to-nearest).
pub fn quantize(coeffs: &[f64; 64], table: &[u16; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        out[i] = (coeffs[i] / f64::from(table[i])).round() as i16;
    }
    out
}

/// Dequantizes back to coefficient space.
pub fn dequantize(q: &[i16; 64], table: &[u16; 64]) -> [f64; 64] {
    let mut out = [0.0; 64];
    for i in 0..64 {
        out[i] = f64::from(q[i]) * f64::from(table[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_50_is_base_table() {
        assert_eq!(table_for_quality(50), BASE_LUMA);
    }

    #[test]
    fn higher_quality_divides_less() {
        let q90 = table_for_quality(90);
        let q10 = table_for_quality(10);
        for i in 0..64 {
            assert!(q90[i] <= BASE_LUMA[i]);
            assert!(q10[i] >= BASE_LUMA[i]);
        }
    }

    #[test]
    fn entries_always_at_least_one() {
        for q in [1u8, 25, 50, 75, 99, 100] {
            assert!(table_for_quality(q).iter().all(|&v| (1..=255).contains(&v)));
        }
    }

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let table = table_for_quality(75);
        let mut coeffs = [0.0; 64];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f64 - 32.0) * 7.3;
        }
        let q = quantize(&coeffs, &table);
        let back = dequantize(&q, &table);
        for i in 0..64 {
            assert!(
                (coeffs[i] - back[i]).abs() <= f64::from(table[i]) / 2.0 + 1e-9,
                "bin {i}"
            );
        }
    }

    #[test]
    fn small_coefficients_vanish() {
        let table = table_for_quality(50);
        let mut coeffs = [0.4; 64];
        coeffs[0] = 500.0;
        let q = quantize(&coeffs, &table);
        assert_ne!(q[0], 0);
        assert!(
            q[1..].iter().all(|&v| v == 0),
            "tiny ACs must quantize to 0"
        );
    }
}
