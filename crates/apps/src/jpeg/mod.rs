//! A real grayscale JPEG-style codec (paper Section 5.2).
//!
//! The paper distributes "the sequential JPEG compression algorithm"; this
//! module provides that sequential algorithm — 8×8 [`dct`], [`quant`]
//! (T.81 tables with libjpeg quality scaling), [`zigzag`] scan and a
//! run-length [`entropy`] coder — assembled in [`codec`].

pub mod codec;
pub mod dct;
pub mod entropy;
pub mod huffman;
pub mod quant;
pub mod zigzag;

pub use codec::{compress, compress_with, decompress, CodecError, EntropyKind};
