//! 8×8 type-II/III discrete cosine transform — the heart of JPEG.

use std::f64::consts::PI;
use std::sync::OnceLock;

/// Block edge length.
pub const N: usize = 8;

/// Cosine basis table: `COS[x][u] = cos((2x+1)·u·π/16)`.
fn cos_table() -> &'static [[f64; N]; N] {
    static TABLE: OnceLock<[[f64; N]; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0; N]; N];
        for (x, row) in t.iter_mut().enumerate() {
            for (u, v) in row.iter_mut().enumerate() {
                *v = ((2 * x + 1) as f64 * u as f64 * PI / 16.0).cos();
            }
        }
        t
    })
}

#[inline]
fn c(u: usize) -> f64 {
    if u == 0 {
        std::f64::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

/// Forward 8×8 DCT (type II, orthonormal JPEG scaling). `block` is
/// row-major spatial samples; returns row-major frequency coefficients.
pub fn forward(block: &[f64; N * N]) -> [f64; N * N] {
    let cos = cos_table();
    let mut out = [0.0; N * N];
    for u in 0..N {
        for v in 0..N {
            let mut sum = 0.0;
            for x in 0..N {
                for y in 0..N {
                    sum += block[x * N + y] * cos[x][u] * cos[y][v];
                }
            }
            out[u * N + v] = 0.25 * c(u) * c(v) * sum;
        }
    }
    out
}

/// Inverse 8×8 DCT (type III).
pub fn inverse(coeffs: &[f64; N * N]) -> [f64; N * N] {
    let cos = cos_table();
    let mut out = [0.0; N * N];
    for x in 0..N {
        for y in 0..N {
            let mut sum = 0.0;
            for u in 0..N {
                for v in 0..N {
                    sum += c(u) * c(v) * coeffs[u * N + v] * cos[x][u] * cos[y][v];
                }
            }
            out[x * N + y] = 0.25 * sum;
        }
    }
    out
}

/// Forward DCT via row–column separation: two passes of 1-D transforms,
/// 8× fewer multiplies than the direct 2-D sum. Bit-for-bit this differs
/// from [`forward`] only by float associativity (≤ 1e-12 per coefficient);
/// the codec uses this path, tests cross-check against the direct form.
pub fn forward_fast(block: &[f64; N * N]) -> [f64; N * N] {
    let cos = cos_table();
    // Rows: g[x][v] = sum_y f[x][y] cos[y][v]
    let mut g = [0.0; N * N];
    for x in 0..N {
        for v in 0..N {
            let mut s = 0.0;
            for y in 0..N {
                s += block[x * N + y] * cos[y][v];
            }
            g[x * N + v] = s;
        }
    }
    // Columns: F[u][v] = 1/4 c(u)c(v) sum_x g[x][v] cos[x][u]
    let mut out = [0.0; N * N];
    for u in 0..N {
        for v in 0..N {
            let mut s = 0.0;
            for x in 0..N {
                s += g[x * N + v] * cos[x][u];
            }
            out[u * N + v] = 0.25 * c(u) * c(v) * s;
        }
    }
    out
}

/// Inverse DCT via row–column separation (see [`forward_fast`]).
pub fn inverse_fast(coeffs: &[f64; N * N]) -> [f64; N * N] {
    let cos = cos_table();
    // Rows: g[u][y] = sum_v c(v) F[u][v] cos[y][v]
    let mut g = [0.0; N * N];
    for u in 0..N {
        for y in 0..N {
            let mut s = 0.0;
            for v in 0..N {
                s += c(v) * coeffs[u * N + v] * cos[y][v];
            }
            g[u * N + y] = s;
        }
    }
    let mut out = [0.0; N * N];
    for x in 0..N {
        for y in 0..N {
            let mut s = 0.0;
            for u in 0..N {
                s += c(u) * g[u * N + y] * cos[x][u];
            }
            out[x * N + y] = 0.25 * s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_block_concentrates_in_dc() {
        let block = [100.0; 64];
        let f = forward(&block);
        // DC of a constant block: 8 * value.
        assert!((f[0] - 800.0).abs() < 1e-9, "DC {}", f[0]);
        for (i, &v) in f.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-9, "AC[{i}] = {v}");
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let mut block = [0.0; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37 + 11) % 256) as f64 - 128.0;
        }
        let back = inverse(&forward(&block));
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut block = [0.0; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as f64 * 0.7).sin() * 50.0;
        }
        let f = forward(&block);
        let e_space: f64 = block.iter().map(|v| v * v).sum();
        let e_freq: f64 = f.iter().map(|v| v * v).sum();
        assert!((e_space - e_freq).abs() / e_space < 1e-9);
    }

    #[test]
    fn fast_paths_match_direct_forms() {
        let mut block = [0.0; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 53 + 7) % 256) as f64 - 128.0;
        }
        let direct = forward(&block);
        let fast = forward_fast(&block);
        for (a, b) in direct.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-9);
        }
        let inv_direct = inverse(&direct);
        let inv_fast = inverse_fast(&direct);
        for (a, b) in inv_direct.iter().zip(&inv_fast) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn horizontal_cosine_hits_single_bin() {
        // f(x,y) = cos((2y+1)·3π/16) is pure frequency v=3, u=0.
        let cos = cos_table();
        let mut block = [0.0; 64];
        for x in 0..8 {
            for y in 0..8 {
                block[x * 8 + y] = cos[y][3];
            }
        }
        let f = forward(&block);
        for u in 0..8 {
            for v in 0..8 {
                let val = f[u * 8 + v];
                if (u, v) == (0, 3) {
                    assert!(val.abs() > 1.0, "expected energy at (0,3): {val}");
                } else {
                    assert!(val.abs() < 1e-9, "leakage at ({u},{v}): {val}");
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Separable and direct transforms agree on arbitrary blocks, and
        /// the roundtrip is the identity.
        #[test]
        fn fast_equals_direct_and_roundtrips(
            raw in proptest::collection::vec(-128.0f64..128.0, 64)
        ) {
            let block: [f64; 64] = raw.try_into().unwrap();
            let direct = forward(&block);
            let fast = forward_fast(&block);
            for (a, b) in direct.iter().zip(&fast) {
                prop_assert!((a - b).abs() < 1e-9);
            }
            let back = inverse_fast(&fast);
            for (a, b) in block.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
