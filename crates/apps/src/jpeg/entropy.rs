//! Entropy coding of quantized coefficients: zero-run-length coding with
//! variable-length integers (a table-free stand-in for JPEG's Huffman
//! stage — lossless, byte-aligned, and compresses the long zero tails the
//! zig-zag scan produces).
//!
//! Stream grammar, per 64-coefficient block (DC first, differentially
//! coded against the previous block):
//!
//! ```text
//! block  := dc_delta:varint  ac*  EOB
//! ac     := run:u8 (0..=62)  value:varint   (value != 0)
//! EOB    := 0xFF
//! ```

/// End-of-block marker byte.
const EOB: u8 = 0xFF;

/// ZigZag-maps a signed value to unsigned for LEB128.
fn zz_enc(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn zz_dec(u: u32) -> i32 {
    ((u >> 1) as i32) ^ -((u & 1) as i32)
}

fn put_varint(out: &mut Vec<u8>, v: i32) {
    let mut u = zz_enc(v);
    loop {
        let byte = (u & 0x7F) as u8;
        u >>= 7;
        if u == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<i32, EntropyError> {
    let mut u: u32 = 0;
    let mut shift = 0;
    loop {
        let &byte = data.get(*pos).ok_or(EntropyError::Truncated)?;
        *pos += 1;
        u |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(zz_dec(u));
        }
        shift += 7;
        if shift > 28 {
            return Err(EntropyError::Malformed);
        }
    }
}

/// Decode failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntropyError {
    /// Stream ended mid-block.
    Truncated,
    /// Grammar violation (bad run length, overlong varint).
    Malformed,
}

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntropyError::Truncated => write!(f, "entropy stream truncated"),
            EntropyError::Malformed => write!(f, "entropy stream malformed"),
        }
    }
}

impl std::error::Error for EntropyError {}

/// Appends one zig-zag-ordered block to `out`. `prev_dc` carries the DC
/// predictor across blocks.
pub fn encode_block(zz: &[i16; 64], prev_dc: &mut i16, out: &mut Vec<u8>) {
    put_varint(out, i32::from(zz[0]) - i32::from(*prev_dc));
    *prev_dc = zz[0];
    let mut run: u8 = 0;
    for &v in &zz[1..] {
        if v == 0 {
            run += 1;
        } else {
            out.push(run);
            put_varint(out, i32::from(v));
            run = 0;
        }
    }
    out.push(EOB);
}

/// Decodes one block starting at `pos` (which advances).
pub fn decode_block(
    data: &[u8],
    pos: &mut usize,
    prev_dc: &mut i16,
) -> Result<[i16; 64], EntropyError> {
    let mut zz = [0i16; 64];
    let dc = i32::from(*prev_dc) + get_varint(data, pos)?;
    *prev_dc = dc as i16;
    zz[0] = dc as i16;
    let mut k = 1;
    loop {
        let &byte = data.get(*pos).ok_or(EntropyError::Truncated)?;
        *pos += 1;
        if byte == EOB {
            return Ok(zz);
        }
        let run = byte as usize;
        k += run;
        if k >= 64 {
            return Err(EntropyError::Malformed);
        }
        let v = get_varint(data, pos)?;
        zz[k] = v as i16;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(blocks: &[[i16; 64]]) {
        let mut out = Vec::new();
        let mut dc = 0i16;
        for b in blocks {
            encode_block(b, &mut dc, &mut out);
        }
        let mut pos = 0;
        let mut dc = 0i16;
        for b in blocks {
            let back = decode_block(&out, &mut pos, &mut dc).unwrap();
            assert_eq!(&back, b);
        }
        assert_eq!(pos, out.len(), "trailing bytes");
    }

    #[test]
    fn roundtrip_sparse_blocks() {
        let mut b1 = [0i16; 64];
        b1[0] = 73;
        b1[5] = -2;
        b1[63] = 1;
        let mut b2 = [0i16; 64];
        b2[0] = 70;
        roundtrip(&[b1, b2]);
    }

    #[test]
    fn roundtrip_dense_block() {
        let mut b = [0i16; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as i16 - 32) * 9;
        }
        roundtrip(&[b]);
    }

    #[test]
    fn all_zero_block_is_two_bytes() {
        let b = [0i16; 64];
        let mut out = Vec::new();
        let mut dc = 0;
        encode_block(&b, &mut dc, &mut out);
        assert_eq!(out, vec![0, EOB]);
    }

    #[test]
    fn truncated_stream_detected() {
        let mut b = [0i16; 64];
        b[0] = 5;
        b[10] = 3;
        let mut out = Vec::new();
        let mut dc = 0;
        encode_block(&b, &mut dc, &mut out);
        out.pop(); // drop the EOB
        let mut pos = 0;
        let mut dc = 0;
        assert_eq!(
            decode_block(&out, &mut pos, &mut dc),
            Err(EntropyError::Truncated)
        );
    }

    #[test]
    fn varint_extremes() {
        for v in [
            0,
            1,
            -1,
            i32::from(i16::MAX),
            i32::from(i16::MIN),
            12345,
            -9876,
        ] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any sequence of blocks roundtrips losslessly through the coder.
        #[test]
        fn any_blocks_roundtrip(
            raw in proptest::collection::vec(
                proptest::collection::vec(-1000i16..1000, 64),
                1..6,
            )
        ) {
            let blocks: Vec<[i16; 64]> = raw
                .into_iter()
                .map(|v| <[i16; 64]>::try_from(v).unwrap())
                .collect();
            let mut out = Vec::new();
            let mut dc = 0i16;
            for b in &blocks {
                encode_block(b, &mut dc, &mut out);
            }
            let mut pos = 0;
            let mut dc = 0i16;
            for b in &blocks {
                let back = decode_block(&out, &mut pos, &mut dc).unwrap();
                prop_assert_eq!(&back, b);
            }
            prop_assert_eq!(pos, out.len());
        }
    }
}
