//! Canonical Huffman coding — the entropy stage the JPEG standard actually
//! uses, as an alternative to the byte-aligned RLE coder in
//! [`crate::jpeg::entropy`].
//!
//! Symbols are JPEG-style `(run, size)` pairs: `run` zero coefficients
//! followed by a value whose magnitude category is `size`, with the value's
//! bits appended raw after the Huffman code (exactly T.81's scheme). Code
//! tables are built per message from symbol frequencies, emitted as a
//! 256-byte code-length header, and reconstructed canonically on decode —
//! so the stream is self-contained.

use std::collections::BinaryHeap;

/// End-of-block symbol (run = 0, size = 0).
const SYM_EOB: u16 = 0;
/// Zero-run-of-16 symbol (T.81's ZRL).
const SYM_ZRL: u16 = 0xF0;

/// Maximum code length we permit (canonical reassignment keeps us ≤ 16,
/// like T.81).
const MAX_CODE_LEN: u8 = 16;

/// Decode failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HuffError {
    /// Stream ended mid-symbol.
    Truncated,
    /// Header or code structure invalid.
    Malformed,
}

impl std::fmt::Display for HuffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffError::Truncated => write!(f, "huffman stream truncated"),
            HuffError::Malformed => write!(f, "huffman stream malformed"),
        }
    }
}

impl std::error::Error for HuffError {}

// --- bit I/O ---------------------------------------------------------------

/// MSB-first bit writer.
#[derive(Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `n` bits of `bits`, MSB first.
    pub fn put(&mut self, bits: u32, n: u8) {
        debug_assert!(n <= 24);
        if n == 0 {
            return;
        }
        let mask = (1u32 << n) - 1;
        self.acc = (self.acc << n) | (bits & mask);
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Pads with 1-bits to a byte boundary and returns the stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1u32 << pad) - 1, pad);
        }
        self.out
    }
}

/// MSB-first bit reader.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u8,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte stream.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Reads one bit.
    pub fn bit(&mut self) -> Result<u32, HuffError> {
        if self.nbits == 0 {
            let &b = self.data.get(self.pos).ok_or(HuffError::Truncated)?;
            self.pos += 1;
            self.acc = u32::from(b);
            self.nbits = 8;
        }
        self.nbits -= 1;
        Ok((self.acc >> self.nbits) & 1)
    }

    /// Reads `n` bits MSB-first.
    pub fn bits(&mut self, n: u8) -> Result<u32, HuffError> {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.bit()?;
        }
        Ok(v)
    }
}

// --- canonical code construction -------------------------------------------

/// Computes canonical code lengths from frequencies (0 = symbol unused).
fn code_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    // Package-merge would be exact; a Huffman tree with depth clamping is
    // plenty here (clamping is a rare fallback re-run with flattened
    // frequencies).
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        idx: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap by weight, ties by index for determinism.
            (other.weight, other.idx).cmp(&(self.weight, self.idx))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut freqs = *freqs;
    loop {
        let used: Vec<usize> = (0..256).filter(|&s| freqs[s] > 0).collect();
        let mut lens = [0u8; 256];
        match used.len() {
            0 => return lens,
            1 => {
                lens[used[0]] = 1;
                return lens;
            }
            _ => {}
        }
        // parents[k] for internal/leaf nodes; leaves are 0..256 by symbol,
        // internals appended after.
        let mut parents: Vec<Option<usize>> = vec![None; 256];
        let mut heap: BinaryHeap<Node> = used
            .iter()
            .map(|&s| Node {
                weight: freqs[s],
                idx: s,
            })
            .collect();
        while heap.len() > 1 {
            let a = heap.pop().unwrap();
            let b = heap.pop().unwrap();
            let parent = parents.len();
            parents.push(None);
            parents[a.idx] = Some(parent);
            parents[b.idx] = Some(parent);
            heap.push(Node {
                weight: a.weight + b.weight,
                idx: parent,
            });
        }
        let mut too_deep = false;
        for &s in &used {
            let mut len = 0u8;
            let mut n = s;
            while let Some(p) = parents[n] {
                len += 1;
                n = p;
            }
            if len > MAX_CODE_LEN {
                too_deep = true;
                break;
            }
            lens[s] = len;
        }
        if !too_deep {
            return lens;
        }
        // Flatten the distribution and retry (bounded: converges to
        // uniform, whose depth is 8).
        for f in freqs.iter_mut() {
            if *f > 0 {
                *f = f.div_ceil(2);
            }
        }
    }
}

/// Assigns canonical codes from lengths: shorter codes first, ties in
/// symbol order.
fn canonical_codes(lens: &[u8; 256]) -> [(u32, u8); 256] {
    let mut symbols: Vec<usize> = (0..256).filter(|&s| lens[s] > 0).collect();
    symbols.sort_by_key(|&s| (lens[s], s));
    let mut codes = [(0u32, 0u8); 256];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &symbols {
        code <<= lens[s] - prev_len;
        codes[s] = (code, lens[s]);
        code += 1;
        prev_len = lens[s];
    }
    codes
}

// --- public coder -----------------------------------------------------------

/// JPEG magnitude category of a value (bits needed for |v|).
fn size_of(v: i32) -> u8 {
    (32 - v.unsigned_abs().leading_zeros()) as u8
}

/// T.81 value coding: positive values as-is; negative values as
/// `v - 1 + 2^size` (one's-complement style).
fn value_bits(v: i32, size: u8) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v - 1 + (1 << size)) as u32
    }
}

fn value_from_bits(bits: u32, size: u8) -> i32 {
    if size == 0 {
        0
    } else if bits >> (size - 1) != 0 {
        bits as i32
    } else {
        bits as i32 - (1 << size) + 1
    }
}

/// Encodes zig-zag blocks with per-message canonical Huffman tables.
/// Stream layout: `[256-byte code-length table][bit stream]`.
pub fn encode_blocks(blocks: &[[i16; 64]]) -> Vec<u8> {
    // Pass 1: symbol stream + frequencies.
    let mut syms: Vec<(u16, i32)> = Vec::new();
    let mut prev_dc = 0i16;
    for zz in blocks {
        let dc_delta = i32::from(zz[0]) - i32::from(prev_dc);
        prev_dc = zz[0];
        // DC coded as (run=0, size) with its own symbol space offset 0x00.
        syms.push((u16::from(size_of(dc_delta)), dc_delta));
        let mut run = 0u16;
        for &v in &zz[1..] {
            if v == 0 {
                run += 1;
            } else {
                while run >= 16 {
                    syms.push((SYM_ZRL, 0));
                    run -= 16;
                }
                let size = size_of(i32::from(v));
                syms.push(((run << 4) | u16::from(size), i32::from(v)));
                run = 0;
            }
        }
        syms.push((SYM_EOB, 0));
    }
    let mut freqs = [0u64; 256];
    for &(s, _) in &syms {
        freqs[s as usize] += 1;
    }
    let lens = code_lengths(&freqs);
    let codes = canonical_codes(&lens);

    let mut out = Vec::with_capacity(256 + syms.len());
    out.extend_from_slice(&lens);
    let mut bw = BitWriter::new();
    for &(s, v) in &syms {
        let (code, len) = codes[s as usize];
        debug_assert!(len > 0, "symbol {s} has no code");
        bw.put(code, len);
        let size = (s & 0x0F) as u8;
        if s != SYM_ZRL && size > 0 {
            bw.put(value_bits(v, size), size);
        }
    }
    out.extend_from_slice(&bw.finish());
    out
}

/// Decodes `n_blocks` zig-zag blocks from a stream made by
/// [`encode_blocks`].
pub fn decode_blocks(data: &[u8], n_blocks: usize) -> Result<Vec<[i16; 64]>, HuffError> {
    if data.len() < 256 {
        return Err(HuffError::Truncated);
    }
    let mut lens = [0u8; 256];
    lens.copy_from_slice(&data[..256]);
    if lens.iter().any(|&l| l > MAX_CODE_LEN) {
        return Err(HuffError::Malformed);
    }
    let codes = canonical_codes(&lens);
    // Decode table: (len, code) -> symbol, via linear scan per bit length
    // (tables are tiny; simplicity over speed).
    let mut by_len: Vec<Vec<(u32, u16)>> = vec![Vec::new(); usize::from(MAX_CODE_LEN) + 1];
    for s in 0..256 {
        if lens[s] > 0 {
            by_len[usize::from(lens[s])].push((codes[s].0, s as u16));
        }
    }
    let mut br = BitReader::new(&data[256..]);
    let read_symbol = |br: &mut BitReader| -> Result<u16, HuffError> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN {
            code = (code << 1) | br.bit()?;
            if let Some(&(_, s)) = by_len[usize::from(len)].iter().find(|&&(c, _)| c == code) {
                return Ok(s);
            }
        }
        Err(HuffError::Malformed)
    };

    let mut blocks = Vec::with_capacity(n_blocks);
    let mut prev_dc = 0i16;
    for _ in 0..n_blocks {
        let mut zz = [0i16; 64];
        // DC.
        let s = read_symbol(&mut br)?;
        if s > 15 {
            return Err(HuffError::Malformed); // DC symbols are pure sizes
        }
        let size = s as u8;
        let delta = value_from_bits(br.bits(size)?, size);
        let dc = i32::from(prev_dc) + delta;
        prev_dc = dc as i16;
        zz[0] = dc as i16;
        // AC.
        let mut k = 1usize;
        loop {
            let s = read_symbol(&mut br)?;
            if s == SYM_EOB {
                break;
            }
            if s == SYM_ZRL {
                k += 16;
                if k > 64 {
                    return Err(HuffError::Malformed);
                }
                continue;
            }
            let run = usize::from(s >> 4);
            let size = (s & 0x0F) as u8;
            k += run;
            if size == 0 || k >= 64 {
                return Err(HuffError::Malformed);
            }
            zz[k] = value_from_bits(br.bits(size)?, size) as i16;
            k += 1;
        }
        blocks.push(zz);
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_block(dc: i16, taps: &[(usize, i16)]) -> [i16; 64] {
        let mut b = [0i16; 64];
        b[0] = dc;
        for &(k, v) in taps {
            b[k] = v;
        }
        b
    }

    #[test]
    fn roundtrip_typical_blocks() {
        let blocks = vec![
            sparse_block(73, &[(1, -3), (5, 2), (20, 1)]),
            sparse_block(70, &[(2, 8)]),
            sparse_block(70, &[]),
            sparse_block(-40, &[(63, -1)]),
        ];
        let enc = encode_blocks(&blocks);
        let dec = decode_blocks(&enc, blocks.len()).unwrap();
        assert_eq!(dec, blocks);
    }

    #[test]
    fn roundtrip_dense_block() {
        let mut b = [0i16; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as i16 % 17) - 8;
        }
        let enc = encode_blocks(&[b]);
        assert_eq!(decode_blocks(&enc, 1).unwrap(), vec![b]);
    }

    #[test]
    fn long_zero_runs_use_zrl() {
        let b = sparse_block(10, &[(40, 5)]); // 39 zeros: 2 ZRLs + run 7
        let enc = encode_blocks(&[b]);
        assert_eq!(decode_blocks(&enc, 1).unwrap(), vec![b]);
    }

    #[test]
    fn beats_plain_bytes_on_sparse_data() {
        let blocks: Vec<[i16; 64]> = (0..64)
            .map(|i| sparse_block(50 + (i % 5) as i16, &[(1, 1), (3, -2)]))
            .collect();
        let enc = encode_blocks(&blocks);
        // 64 blocks × 128 raw bytes = 8192; Huffman with header must be
        // far smaller.
        assert!(
            enc.len() < 1500,
            "huffman stream too large: {} bytes",
            enc.len()
        );
    }

    #[test]
    fn value_bit_coding_matches_t81() {
        for v in [-255, -128, -1, 0, 1, 127, 255] {
            let size = size_of(v);
            if size > 0 {
                assert_eq!(value_from_bits(value_bits(v, size), size), v, "v={v}");
            } else {
                assert_eq!(v, 0);
            }
        }
        assert_eq!(size_of(0), 0);
        assert_eq!(size_of(1), 1);
        assert_eq!(size_of(-1), 1);
        assert_eq!(size_of(255), 8);
    }

    #[test]
    fn truncated_stream_detected() {
        let blocks = vec![sparse_block(5, &[(7, 3)])];
        let mut enc = encode_blocks(&blocks);
        enc.truncate(256); // header only
        assert!(decode_blocks(&enc, 1).is_err());
        assert_eq!(decode_blocks(&enc[..100], 1), Err(HuffError::Truncated));
    }

    #[test]
    fn single_symbol_stream() {
        // All-zero blocks: only DC size-0 and EOB symbols exist.
        let blocks = vec![[0i16; 64]; 3];
        let enc = encode_blocks(&blocks);
        assert_eq!(decode_blocks(&enc, 3).unwrap(), blocks);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Arbitrary coefficient blocks roundtrip losslessly.
        #[test]
        fn any_blocks_roundtrip(
            raw in proptest::collection::vec(
                proptest::collection::vec(-2000i16..2000, 64),
                1..5,
            )
        ) {
            let blocks: Vec<[i16; 64]> = raw
                .into_iter()
                .map(|v| <[i16; 64]>::try_from(v).unwrap())
                .collect();
            let enc = encode_blocks(&blocks);
            let dec = decode_blocks(&enc, blocks.len()).unwrap();
            prop_assert_eq!(dec, blocks);
        }
    }
}
