//! Seeded workload generators: matrices, signals, and synthetic images.

use ncs_sim::SimRng;

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data (`rows * cols`).
    pub data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Uniform random entries in [-1, 1).
    pub fn random(rows: usize, cols: usize, rng: &mut SimRng) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| rng.gen_f64_range(-1.0, 1.0))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// A contiguous block of rows `[lo, hi)`.
    pub fn row_block(&self, lo: usize, hi: usize) -> &[f64] {
        &self.data[lo * self.cols..hi * self.cols]
    }

    /// Maximum absolute element difference against another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// A sampled complex test signal: a few sinusoids plus seeded noise —
/// spectrally interesting input for the FFT benchmark.
pub fn test_signal(m: usize, rng: &mut SimRng) -> Vec<(f64, f64)> {
    let tones = [(3.0, 1.0), (17.0, 0.5), (40.0, 0.25)];
    (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            let mut re = 0.0;
            for (f, a) in tones {
                re += a * (2.0 * std::f64::consts::PI * f * t).cos();
            }
            re += rng.gen_f64_range(-0.05, 0.05);
            (re, 0.0)
        })
        .collect()
}

/// An 8-bit grayscale image.
#[derive(Clone, PartialEq, Debug)]
pub struct GrayImage {
    /// Width in pixels (multiple of 8 for the JPEG codec).
    pub width: usize,
    /// Height in pixels (multiple of 8).
    pub height: usize,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

impl GrayImage {
    /// Synthesizes a photograph-like test image: smooth illumination
    /// gradient, a few soft blobs, and mild seeded grain. Smoothness makes
    /// the JPEG codec compress realistically (roughly 5–15:1).
    pub fn synthetic(width: usize, height: usize, rng: &mut SimRng) -> GrayImage {
        assert!(
            width.is_multiple_of(8) && height.is_multiple_of(8),
            "dimensions must be 8-aligned"
        );
        let blobs: Vec<(f64, f64, f64, f64)> = (0..6)
            .map(|_| {
                (
                    rng.gen_f64_range(0.0, width as f64),
                    rng.gen_f64_range(0.0, height as f64),
                    rng.gen_f64_range(20.0, 80.0),
                    rng.gen_f64_range(width as f64 / 16.0, width as f64 / 4.0),
                )
            })
            .collect();
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let mut v =
                    60.0 + 80.0 * (x as f64 / width as f64) + 40.0 * (y as f64 / height as f64);
                for &(cx, cy, amp, sigma) in &blobs {
                    let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                    v += amp * (-d2 / (2.0 * sigma * sigma)).exp();
                }
                v += rng.gen_f64_range(-2.0, 2.0);
                pixels.push(v.clamp(0.0, 255.0) as u8);
            }
        }
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Total bytes.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Whether the image has no pixels.
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Peak signal-to-noise ratio against a reference image, in dB.
    pub fn psnr(&self, reference: &GrayImage) -> f64 {
        assert_eq!(self.pixels.len(), reference.pixels.len());
        let mse: f64 = self
            .pixels
            .iter()
            .zip(&reference.pixels)
            .map(|(&a, &b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum::<f64>()
            / self.pixels.len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    /// Horizontal band of rows `[lo, hi)` as a sub-image.
    pub fn band(&self, lo: usize, hi: usize) -> GrayImage {
        GrayImage {
            width: self.width,
            height: hi - lo,
            pixels: self.pixels[lo * self.width..hi * self.width].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_random_deterministic() {
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        assert_eq!(
            Matrix::random(16, 16, &mut r1),
            Matrix::random(16, 16, &mut r2)
        );
    }

    #[test]
    fn matrix_indexing() {
        let mut m = Matrix::zeros(3, 4);
        *m.at_mut(2, 3) = 7.5;
        assert_eq!(m.at(2, 3), 7.5);
        assert_eq!(m.row_block(2, 3)[3], 7.5);
    }

    #[test]
    fn signal_has_energy() {
        let mut rng = SimRng::new(1);
        let s = test_signal(512, &mut rng);
        assert_eq!(s.len(), 512);
        let power: f64 = s.iter().map(|(re, im)| re * re + im * im).sum();
        assert!(power > 100.0);
    }

    #[test]
    fn image_smooth_and_in_range() {
        let mut rng = SimRng::new(2);
        let img = GrayImage::synthetic(64, 64, &mut rng);
        assert_eq!(img.len(), 64 * 64);
        // Neighboring pixels mostly close (smoothness for compressibility).
        let mut big_jumps = 0;
        for y in 0..64 {
            for x in 1..64 {
                let a = i32::from(img.pixels[y * 64 + x - 1]);
                let b = i32::from(img.pixels[y * 64 + x]);
                if (a - b).abs() > 24 {
                    big_jumps += 1;
                }
            }
        }
        assert!(big_jumps < 40, "too many discontinuities: {big_jumps}");
    }

    #[test]
    fn psnr_identity_infinite() {
        let mut rng = SimRng::new(3);
        let img = GrayImage::synthetic(32, 32, &mut rng);
        assert!(img.psnr(&img).is_infinite());
    }

    #[test]
    fn band_slices_rows() {
        let mut rng = SimRng::new(4);
        let img = GrayImage::synthetic(16, 32, &mut rng);
        let band = img.band(8, 16);
        assert_eq!(band.height, 8);
        assert_eq!(band.pixels[..], img.pixels[8 * 16..16 * 16]);
    }
}
