//! Calibrated computation cost models.
//!
//! The applications *really execute* their kernels (so results can be
//! verified), but virtual time is charged through these per-platform
//! constants, fitted to the paper's single-node measurements:
//!
//! * matmul 128×128 on one node: 25.77 s (ELC) / 24.89 s (IPX) — Table 1;
//! * FFT M=512 × 8 sample sets on one node: 5.76 s (ELC) / 5.25 s (IPX) —
//!   Table 3;
//! * JPEG stage costs fitted against the 2-node rows of Table 2.
//!
//! The fitted per-operation budgets look enormous by modern standards
//! (hundreds of cycles per multiply-accumulate, ~10⁴ per FFT butterfly).
//! That is what the paper's numbers imply for unoptimized early-90s C with
//! library trig calls, cache-hostile strides, and per-element indexing —
//! we encode the authors' measured reality rather than an idealized FLOP
//! count. `EXPERIMENTS.md` documents the fit.

use ncs_net::HostParams;

/// Per-application cycle budgets for one platform.
#[derive(Clone, Copy, Debug)]
pub struct AppCosts {
    /// Cycles per multiply-accumulate in the matmul inner loop.
    pub mac_cycles: u64,
    /// Cycles per FFT butterfly (complex add, subtract, twiddle multiply,
    /// trig evaluation, indexing).
    pub butterfly_cycles: u64,
    /// JPEG compression cycles per input byte (DCT + quantization + RLE).
    pub jpeg_compress_per_byte: u64,
    /// JPEG decompression cycles per output byte.
    pub jpeg_decompress_per_byte: u64,
    /// Image file read/write cycles per byte (the paper's JPEG pipeline
    /// includes reading and writing the image on the host).
    pub io_per_byte: u64,
}

impl AppCosts {
    /// Costs for the SPARCstation ELC (Ethernet testbed).
    pub fn sparc_elc() -> AppCosts {
        AppCosts {
            mac_cycles: 405,
            butterfly_cycles: 10_300,
            jpeg_compress_per_byte: 270,
            jpeg_decompress_per_byte: 210,
            io_per_byte: 12,
        }
    }

    /// Costs for the SPARCstation IPX (ATM LAN / NYNET testbed).
    pub fn sparc_ipx() -> AppCosts {
        AppCosts {
            mac_cycles: 475,
            butterfly_cycles: 11_400,
            jpeg_compress_per_byte: 210,
            jpeg_decompress_per_byte: 165,
            io_per_byte: 10,
        }
    }

    /// Tiny costs for fast unit tests (compute no longer dominates).
    pub fn test_tiny() -> AppCosts {
        AppCosts {
            mac_cycles: 1,
            butterfly_cycles: 4,
            jpeg_compress_per_byte: 1,
            jpeg_decompress_per_byte: 1,
            io_per_byte: 1,
        }
    }

    /// Picks the calibrated set matching a host model.
    pub fn for_host(host: &HostParams) -> AppCosts {
        if host.name.contains("IPX") {
            AppCosts::sparc_ipx()
        } else if host.name.contains("ELC") {
            AppCosts::sparc_elc()
        } else {
            AppCosts::test_tiny()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_sim::Dur;

    #[test]
    fn single_node_matmul_fits_table1() {
        // 128x128x128 MACs at the calibrated rate must land within 3% of
        // the paper's single-node times.
        let macs = 128u64 * 128 * 128;
        let elc = Dur::for_cycles(macs * AppCosts::sparc_elc().mac_cycles, 33_000_000);
        assert!(
            (elc.as_secs_f64() - 25.77).abs() / 25.77 < 0.03,
            "ELC matmul {}s vs paper 25.77s",
            elc.as_secs_f64()
        );
        let ipx = Dur::for_cycles(macs * AppCosts::sparc_ipx().mac_cycles, 40_000_000);
        assert!(
            (ipx.as_secs_f64() - 24.89).abs() / 24.89 < 0.03,
            "IPX matmul {}s vs paper 24.89s",
            ipx.as_secs_f64()
        );
    }

    #[test]
    fn single_node_fft_fits_table3() {
        // 8 sample sets of M=512: 8 * (M/2) * log2(M) butterflies.
        let bf = 8 * 256 * 9u64;
        let elc = Dur::for_cycles(bf * AppCosts::sparc_elc().butterfly_cycles, 33_000_000);
        assert!(
            (elc.as_secs_f64() - 5.76).abs() / 5.76 < 0.03,
            "ELC FFT {}s vs paper 5.76s",
            elc.as_secs_f64()
        );
        let ipx = Dur::for_cycles(bf * AppCosts::sparc_ipx().butterfly_cycles, 40_000_000);
        assert!(
            (ipx.as_secs_f64() - 5.25).abs() / 5.25 < 0.03,
            "IPX FFT {}s vs paper 5.25s",
            ipx.as_secs_f64()
        );
    }

    #[test]
    fn host_dispatch() {
        assert_eq!(
            AppCosts::for_host(&HostParams::sparc_ipx()).mac_cycles,
            AppCosts::sparc_ipx().mac_cycles
        );
        assert_eq!(
            AppCosts::for_host(&HostParams::sparc_elc()).mac_cycles,
            AppCosts::sparc_elc().mac_cycles
        );
        assert_eq!(
            AppCosts::for_host(&HostParams::test_fast()).mac_cycles,
            AppCosts::test_tiny().mac_cycles
        );
    }
}
