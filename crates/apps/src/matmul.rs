//! Distributed matrix multiplication (paper Section 5.1, Table 1).
//!
//! Host–node model: the host ships the whole B matrix to every node plus
//! an equal block of A's rows; each node computes its block of C = A·B and
//! returns it.
//!
//! Two drivers reproduce the paper's comparison:
//!
//! * [`matmul_p4`] — Figure 13: one single-threaded process per node;
//!   `p4_recv` idles the whole node until its full share has arrived.
//! * [`matmul_ncs`] — Figure 14: two NCS threads per process. Host thread
//!   *t* serves node threads *t*; B is sent to each node **once** (threads
//!   share the address space), and a node's thread 0 starts computing as
//!   soon as its half-share lands while thread 1 is still receiving.
//!
//! The kernels really run; the host verifies the assembled C against a
//! sequential reference before reporting a timing.

use ncs_core::codec::{bytes_to_f64s, f64s_to_bytes};
use ncs_core::{NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::{Network, NodeId};
use ncs_p4::create_procgroup;
use ncs_sim::{Dur, Sim, SimRng};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::costs::AppCosts;
use crate::util::charge_compute;
use crate::workloads::Matrix;

/// Message types (p4 style).
const TYPE_B: i32 = 1;
const TYPE_A: i32 = 2;
const TYPE_C: i32 = 3;

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct MatmulConfig {
    /// Matrix dimension (the paper: 128).
    pub dim: usize,
    /// Number of compute nodes (1, 2, 4, 8).
    pub nodes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl MatmulConfig {
    /// The paper's Table 1 workload.
    pub fn paper(nodes: usize) -> MatmulConfig {
        MatmulConfig {
            dim: 128,
            nodes,
            seed: 0x4D4D,
        }
    }
}

/// Outcome of one run.
#[derive(Clone, Copy, Debug)]
pub struct MatmulRun {
    /// End-to-end execution time (host start to all-done).
    pub elapsed: Dur,
    /// Whether the distributed result matched the sequential reference.
    pub verified: bool,
}

/// Sequential kernel: `c_block = a_rows · b` for `rows` rows. The
/// canonical i-k-j loop; every driver uses this same kernel so distributed
/// results are bitwise equal to the reference.
pub fn multiply_block(a_rows: &[f64], b: &Matrix, rows: usize) -> Vec<f64> {
    let n = b.cols;
    assert_eq!(a_rows.len(), rows * b.rows);
    let mut c = vec![0.0; rows * n];
    for i in 0..rows {
        for k in 0..b.rows {
            let aik = a_rows[i * b.rows + k];
            let brow = &b.data[k * n..(k + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
    c
}

/// Full sequential multiply (reference).
pub fn multiply(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows);
    Matrix {
        rows: a.rows,
        cols: b.cols,
        data: multiply_block(&a.data, b, a.rows),
    }
}

/// MAC count for a `rows × dim` by `dim × dim` block product.
fn block_macs(rows: usize, dim: usize) -> u64 {
    rows as u64 * dim as u64 * dim as u64
}

fn workload(cfg: &MatmulConfig) -> (Matrix, Matrix, Matrix) {
    let mut rng = SimRng::new(cfg.seed);
    let a = Matrix::random(cfg.dim, cfg.dim, &mut rng);
    let b = Matrix::random(cfg.dim, cfg.dim, &mut rng);
    let expect = multiply(&a, &b);
    (a, b, expect)
}

/// Runs the p4 (single-threaded) variant on `net` and reports the timing.
pub fn matmul_p4(net: Arc<dyn Network>, cfg: MatmulConfig) -> MatmulRun {
    let sim = Sim::new();
    let handle = setup_matmul_p4(&sim, net, cfg);
    let out = sim.run();
    out.assert_clean();
    MatmulRun {
        elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
        verified: handle.verify(),
    }
}

/// Runs the NCS_MTS/p4 (two threads per process) variant.
pub fn matmul_ncs(net: Arc<dyn Network>, cfg: MatmulConfig) -> MatmulRun {
    matmul_ncs_configured(net, cfg, ncs_mts::MtsConfig::default())
}

/// [`matmul_ncs`] with an explicit MTS scheduler configuration (used by
/// the context-switch ablation).
pub fn matmul_ncs_configured(
    net: Arc<dyn Network>,
    cfg: MatmulConfig,
    mts: ncs_mts::MtsConfig,
) -> MatmulRun {
    let sim = Sim::new();
    let ncs_cfg = NcsConfig {
        mts,
        ..NcsConfig::default()
    };
    let handle = setup_matmul_ncs_with(&sim, net, cfg, ncs_cfg);
    let out = sim.run();
    out.assert_clean();
    MatmulRun {
        elapsed: out.end_time.since(ncs_sim::SimTime::ZERO),
        verified: handle.verify(),
    }
}

/// Deferred verification handle (the result matrix materializes when the
/// simulation runs).
pub struct MatmulHandle {
    expect: Matrix,
    got: Arc<Mutex<Option<Matrix>>>,
}

impl MatmulHandle {
    /// True if the assembled distributed result matches the reference.
    pub fn verify(&self) -> bool {
        match self.got.lock().as_ref() {
            Some(c) => c.max_abs_diff(&self.expect) == 0.0,
            None => false,
        }
    }
}

/// Schedules the p4 variant onto an existing simulation (used by the
/// timeline figures); the caller runs the sim.
pub fn setup_matmul_p4(sim: &Sim, net: Arc<dyn Network>, cfg: MatmulConfig) -> MatmulHandle {
    let (a, b, expect) = workload(&cfg);
    let got: Arc<Mutex<Option<Matrix>>> = Arc::new(Mutex::new(None));
    let dim = cfg.dim;
    let nodes = cfg.nodes;
    assert!(
        dim.is_multiple_of(nodes),
        "dim must divide evenly across nodes"
    );

    if nodes == 1 {
        // Sequential baseline on one workstation: no communication.
        let got2 = Arc::clone(&got);
        let host = net.host(NodeId(0)).clone();
        let costs = AppCosts::for_host(&host);
        sim.spawn("p4-seq", move |ctx| {
            let c = multiply(&a, &b);
            charge_compute(
                ctx,
                &host,
                "proc0/main",
                "matmul",
                block_macs(dim, dim) * costs.mac_cycles,
            );
            *got2.lock() = Some(c);
        });
        return MatmulHandle { expect, got };
    }

    let rows_per = dim / nodes;
    let a = Arc::new(a);
    let b = Arc::new(b);
    let got2 = Arc::clone(&got);
    create_procgroup(sim, net, nodes + 1, move |ctx, p| {
        let costs = AppCosts::for_host(p.net().host(NodeId(p.my_id() as u32)));
        if p.my_id() == 0 {
            // Host (Figure 13): distribute, then collect.
            let b_bytes = f64s_to_bytes(&b.data);
            for i in 1..=nodes {
                p.send(ctx, TYPE_B, i, b_bytes.clone());
                let lo = (i - 1) * rows_per;
                p.send(
                    ctx,
                    TYPE_A,
                    i,
                    f64s_to_bytes(a.row_block(lo, lo + rows_per)),
                );
            }
            let mut c = Matrix::zeros(dim, dim);
            for _ in 1..=nodes {
                let m = p.recv(ctx, Some(TYPE_C), None);
                let lo = (m.from - 1) * rows_per;
                c.data[lo * dim..(lo + rows_per) * dim].copy_from_slice(&bytes_to_f64s(&m.data));
            }
            *got2.lock() = Some(c);
        } else {
            // Node: receive everything, compute, reply.
            let bm = p.recv(ctx, Some(TYPE_B), Some(0));
            let am = p.recv(ctx, Some(TYPE_A), Some(0));
            let b = Matrix {
                rows: dim,
                cols: dim,
                data: bytes_to_f64s(&bm.data),
            };
            let a_rows = bytes_to_f64s(&am.data);
            let c = multiply_block(&a_rows, &b, rows_per);
            charge_compute(
                ctx,
                p.net().host(NodeId(p.my_id() as u32)),
                &format!("proc{}/main", p.my_id()),
                "matmul",
                block_macs(rows_per, dim) * costs.mac_cycles,
            );
            p.send(ctx, TYPE_C, 0, f64s_to_bytes(&c));
        }
    });
    MatmulHandle { expect, got }
}

/// Schedules the NCS_MTS/p4 variant (Figure 14) onto an existing
/// simulation.
pub fn setup_matmul_ncs(sim: &Sim, net: Arc<dyn Network>, cfg: MatmulConfig) -> MatmulHandle {
    setup_matmul_ncs_with(sim, net, cfg, NcsConfig::default())
}

/// [`setup_matmul_ncs`] with an explicit NCS configuration.
pub fn setup_matmul_ncs_with(
    sim: &Sim,
    net: Arc<dyn Network>,
    cfg: MatmulConfig,
    ncs_cfg: NcsConfig,
) -> MatmulHandle {
    let (a, b, expect) = workload(&cfg);
    let got: Arc<Mutex<Option<Matrix>>> = Arc::new(Mutex::new(None));
    let dim = cfg.dim;
    let nodes = cfg.nodes;
    assert!(
        dim.is_multiple_of(nodes) && (dim / nodes).is_multiple_of(2),
        "rows must split across 2 threads"
    );
    let rows_per = dim / nodes; // per node
    let rows_half = rows_per / 2; // per thread

    let a = Arc::new(a);
    let b = Arc::new(b);
    let got2 = Arc::clone(&got);

    if nodes == 1 {
        // Two threads split the work locally; the comparison point for the
        // paper's single-node "threading overhead" rows.
        let host = net.host(NodeId(0)).clone();
        let costs = AppCosts::for_host(&host);
        let c_shared: Arc<Mutex<Matrix>> = Arc::new(Mutex::new(Matrix::zeros(dim, dim)));
        let done: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        NcsWorld::launch(sim, vec![net], 1, ncs_cfg, move |_, proc_| {
            let half = dim / 2;
            for t in 0..2usize {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                let c_shared = Arc::clone(&c_shared);
                let done = Arc::clone(&done);
                let got = Arc::clone(&got2);
                proc_.t_create(format!("compute{t}"), 5, move |ncs| {
                    let lo = t * half;
                    let block = multiply_block(a.row_block(lo, lo + half), &b, half);
                    ncs.compute(block_macs(half, dim) * costs.mac_cycles, "matmul");
                    let mut c = c_shared.lock();
                    c.data[lo * dim..(lo + half) * dim].copy_from_slice(&block);
                    let mut d = done.lock();
                    *d += 1;
                    if *d == 2 {
                        *got.lock() = Some(c.clone());
                    }
                });
            }
        });
        return MatmulHandle { expect, got };
    }

    NcsWorld::launch(sim, vec![net], nodes + 1, ncs_cfg, move |id, proc_| {
        let costs = AppCosts::for_host(proc_.host());
        if id == 0 {
            // Host threads (Figure 14): thread t serves node threads t.
            let c_shared: Arc<Mutex<Matrix>> = Arc::new(Mutex::new(Matrix::zeros(dim, dim)));
            let done: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
            for t in 0..2u32 {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                let c_shared = Arc::clone(&c_shared);
                let done = Arc::clone(&done);
                let got = Arc::clone(&got2);
                proc_.t_create(format!("host-t{t}"), 5, move |ncs| {
                    let b_bytes = f64s_to_bytes(&b.data);
                    for i in 1..=nodes {
                        if t == 0 {
                            // B goes to each node exactly once, via thread 0.
                            ncs.send(ThreadAddr::new(i, 0), TYPE_B as u32, b_bytes.clone());
                        }
                        let lo = (i - 1) * rows_per + (t as usize) * rows_half;
                        ncs.send(
                            ThreadAddr::new(i, t),
                            TYPE_A as u32,
                            f64s_to_bytes(a.row_block(lo, lo + rows_half)),
                        );
                    }
                    for _ in 1..=nodes {
                        let m = ncs.recv(None, Some(t), Some(TYPE_C as u32));
                        let lo = (m.from.proc - 1) * rows_per + (t as usize) * rows_half;
                        let mut c = c_shared.lock();
                        c.data[lo * dim..(lo + rows_half) * dim]
                            .copy_from_slice(&bytes_to_f64s(&m.data));
                    }
                    let mut d = done.lock();
                    *d += 1;
                    if *d == 2 {
                        *got.lock() = Some(c_shared.lock().clone());
                    }
                });
            }
        } else {
            // Node threads: thread 0 also receives B and shares it.
            let b_slot: Arc<Mutex<Option<Arc<Matrix>>>> = Arc::new(Mutex::new(None));
            for t in 0..2u32 {
                let b_slot = Arc::clone(&b_slot);
                proc_.t_create(format!("node-t{t}"), 5, move |ncs| {
                    if t == 0 {
                        let bm = ncs.recv(Some(0), Some(0), Some(TYPE_B as u32));
                        *b_slot.lock() = Some(Arc::new(Matrix {
                            rows: dim,
                            cols: dim,
                            data: bytes_to_f64s(&bm.data),
                        }));
                        // B is in shared memory now; wake the sibling.
                        ncs.signal(ThreadAddr::new(ncs.proc().id(), 1));
                    } else {
                        ncs.wait_signal(Some(ThreadAddr::new(ncs.proc().id(), 0)));
                    }
                    let bmat = Arc::clone(b_slot.lock().as_ref().expect("B present"));
                    let am = ncs.recv(Some(0), Some(t), Some(TYPE_A as u32));
                    let a_rows = bytes_to_f64s(&am.data);
                    let block = multiply_block(&a_rows, &bmat, rows_half);
                    ncs.compute(block_macs(rows_half, dim) * costs.mac_cycles, "matmul");
                    ncs.send(ThreadAddr::new(0, t), TYPE_C as u32, f64s_to_bytes(&block));
                });
            }
        }
    });
    MatmulHandle { expect, got }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::{HostParams, IdealFabric, TcpNet, TcpParams};

    fn fast_net(n: usize) -> Arc<dyn Network> {
        let fabric = Arc::new(IdealFabric::new(n, Dur::from_micros(20)));
        let hosts = (0..n).map(|_| HostParams::test_fast()).collect();
        Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
    }

    #[test]
    fn sequential_kernel_matches_naive() {
        let mut rng = SimRng::new(1);
        let a = Matrix::random(16, 16, &mut rng);
        let b = Matrix::random(16, 16, &mut rng);
        let c = multiply(&a, &b);
        // Naive triple loop in i-j-k order.
        for i in 0..16 {
            for j in 0..16 {
                let mut s = 0.0;
                for k in 0..16 {
                    s += a.at(i, k) * b.at(k, j);
                }
                assert!((c.at(i, j) - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn p4_variant_verifies() {
        for nodes in [1, 2, 4] {
            let cfg = MatmulConfig {
                dim: 32,
                nodes,
                seed: 7,
            };
            let run = matmul_p4(fast_net(nodes + 1), cfg);
            assert!(run.verified, "{nodes} nodes");
            assert!(run.elapsed > Dur::ZERO);
        }
    }

    #[test]
    fn ncs_variant_verifies() {
        for nodes in [1, 2, 4] {
            let cfg = MatmulConfig {
                dim: 32,
                nodes,
                seed: 7,
            };
            let run = matmul_ncs(fast_net(nodes + 1), cfg);
            assert!(run.verified, "{nodes} nodes");
            assert!(run.elapsed > Dur::ZERO);
        }
    }

    #[test]
    fn both_variants_same_result_different_time() {
        let cfg = MatmulConfig {
            dim: 32,
            nodes: 2,
            seed: 9,
        };
        let a = matmul_p4(fast_net(3), cfg);
        let b = matmul_ncs(fast_net(3), cfg);
        assert!(a.verified && b.verified);
        assert_ne!(a.elapsed, b.elapsed);
    }
}
