//! Small helpers shared by the distributed application drivers.

use ncs_net::HostParams;
use ncs_sim::{Ctx, Sim, SpanKind};

/// Charges `cycles` of computation to a plain green thread (the p4 drivers,
/// which have no NCS context) and records a compute span.
pub fn charge_compute(ctx: &Ctx, host: &HostParams, actor: &str, label: &'static str, cycles: u64) {
    let t0 = ctx.now();
    host.compute(ctx, cycles);
    let t1 = ctx.now();
    ctx.sim().with_tracer(|tr| {
        tr.span(actor, SpanKind::Compute, label, t0, t1);
    });
}

/// Records a communication span on `actor` covering `f`'s execution.
pub fn comm_span<R>(sim: &Sim, actor: &str, label: &'static str, f: impl FnOnce() -> R) -> R {
    let t0 = sim.now();
    let r = f();
    let t1 = sim.now();
    sim.with_tracer(|tr| {
        tr.span(actor, SpanKind::Comm, label, t0, t1);
    });
    r
}
