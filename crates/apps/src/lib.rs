//! # ncs-apps — the paper's benchmark applications
//!
//! Real implementations of the three workloads the paper evaluates NCS on,
//! each in two distributed variants: single-threaded p4 (the baseline) and
//! multithreaded NCS_MTS/p4 (two threads per process):
//!
//! * [`matmul`] — host–node matrix multiplication (Table 1, Figures 13/14);
//! * [`jpeg`] + [`jpeg_dist`] — a real DCT/quantization/RLE image codec and
//!   the compress-half/decompress-half pipeline (Table 2, Figures 15–18);
//! * [`fft`] — decimation-in-frequency FFT with the paper's block-pair
//!   distribution (Table 3, Figures 19–21).
//!
//! Kernels execute for real and results are verified against sequential
//! references; virtual time is charged through the calibrated [`costs`]
//! models so simulated runs land on the paper's single-node measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod fft;
pub mod jpeg;
pub mod jpeg_dist;
pub mod matmul;
pub mod util;
pub mod workloads;

pub use costs::AppCosts;
pub use workloads::{GrayImage, Matrix};
