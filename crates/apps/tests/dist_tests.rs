//! Cross-feature tests of the distributed applications: every app on every
//! transport, overlap ordering properties, and determinism.

use ncs_apps::fft::{fft_ncs, fft_p4, FftConfig};
use ncs_apps::jpeg_dist::{jpeg_ncs, jpeg_p4, JpegConfig};
use ncs_apps::matmul::{matmul_ncs, matmul_p4, MatmulConfig};
use ncs_net::Testbed;

const TESTBEDS: [Testbed; 5] = [
    Testbed::SunEthernet,
    Testbed::SunAtmLanTcp,
    Testbed::NynetTcp,
    Testbed::SunAtmLanApi,
    Testbed::NynetApi,
];

#[test]
fn fft_verifies_on_every_testbed_both_variants() {
    let cfg = FftConfig {
        m: 64,
        sets: 1,
        nodes: 2,
        seed: 3,
    };
    for tb in TESTBEDS {
        assert!(fft_p4(tb.build(3), cfg).verified, "p4 on {}", tb.id());
        assert!(fft_ncs(tb.build(3), cfg).verified, "NCS on {}", tb.id());
    }
}

#[test]
fn jpeg_verifies_on_every_testbed_both_variants() {
    let cfg = JpegConfig {
        width: 64,
        height: 64,
        quality: 60,
        entropy: ncs_apps::jpeg::EntropyKind::Huffman,
        nodes: 2,
        seed: 4,
    };
    for tb in TESTBEDS {
        assert!(jpeg_p4(tb.build(3), cfg).verified, "p4 on {}", tb.id());
        assert!(jpeg_ncs(tb.build(3), cfg).verified, "NCS on {}", tb.id());
    }
}

#[test]
fn hsm_transport_speeds_up_both_variants() {
    // Same app, same fabric, HSM vs NSM stack: both variants get faster.
    let cfg = MatmulConfig {
        dim: 64,
        nodes: 2,
        seed: 8,
    };
    let p4_nsm = matmul_p4(Testbed::SunAtmLanTcp.build(3), cfg);
    let p4_hsm = matmul_p4(Testbed::SunAtmLanApi.build(3), cfg);
    let ncs_nsm = matmul_ncs(Testbed::SunAtmLanTcp.build(3), cfg);
    let ncs_hsm = matmul_ncs(Testbed::SunAtmLanApi.build(3), cfg);
    assert!(p4_hsm.verified && ncs_hsm.verified);
    assert!(
        p4_hsm.elapsed < p4_nsm.elapsed,
        "HSM must beat NSM for p4: {} !< {}",
        p4_hsm.elapsed,
        p4_nsm.elapsed
    );
    assert!(
        ncs_hsm.elapsed < ncs_nsm.elapsed,
        "HSM must beat NSM for NCS: {} !< {}",
        ncs_hsm.elapsed,
        ncs_nsm.elapsed
    );
}

#[test]
fn paper_scale_matmul_shape_at_two_nodes() {
    // The Table-1 anchor at full 128x128 scale, Ethernet: p4 slower than
    // NCS by 10-25%, both within 20% of the paper's absolute numbers.
    let cfg = MatmulConfig::paper(2);
    let p4 = matmul_p4(Testbed::SunEthernet.build(3), cfg);
    let ncs = matmul_ncs(Testbed::SunEthernet.build(3), cfg);
    assert!(p4.verified && ncs.verified);
    let p4_s = p4.elapsed.as_secs_f64();
    let ncs_s = ncs.elapsed.as_secs_f64();
    assert!(
        (p4_s - 16.89).abs() / 16.89 < 0.20,
        "p4 2-node drifted from Table 1: {p4_s:.2}s vs 16.89s"
    );
    let improvement = (p4_s - ncs_s) / p4_s;
    assert!(
        (0.08..=0.30).contains(&improvement),
        "NCS improvement {improvement:.3} left the paper's band"
    );
}

#[test]
fn runs_are_deterministic_per_testbed() {
    let cfg = FftConfig {
        m: 64,
        sets: 1,
        nodes: 2,
        seed: 12,
    };
    for tb in [Testbed::SunEthernet, Testbed::SunAtmLanApi] {
        let a = fft_ncs(tb.build(3), cfg).elapsed;
        let b = fft_ncs(tb.build(3), cfg).elapsed;
        assert_eq!(a, b, "{} replay mismatch", tb.id());
    }
}

#[test]
fn different_seeds_change_data_not_structure() {
    // Timing depends only on data sizes, so different seeds with the same
    // shape produce identical schedules in the fixed-cost model.
    let mk = |seed| MatmulConfig {
        dim: 32,
        nodes: 2,
        seed,
    };
    let a = matmul_ncs(Testbed::SunAtmLanTcp.build(3), mk(1));
    let b = matmul_ncs(Testbed::SunAtmLanTcp.build(3), mk(2));
    assert!(a.verified && b.verified);
    assert_eq!(a.elapsed, b.elapsed, "structure-equal runs must time equal");
}
