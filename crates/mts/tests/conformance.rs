//! Scheduler conformance suite for the NCS_MTS runtime: the paper's
//! contract of 16 strict priority levels with round-robin service within a
//! level, checked both on hand-built direct cases and property-style over
//! seeded random thread populations.
//!
//! The dispatch rules under test (cooperative scheduler, so "preemption"
//! happens at yield points):
//!
//! 1. **Strict priority** — whenever a thread is dispatched, no runnable
//!    thread of a higher (numerically lower) level exists.
//! 2. **Round-robin fairness** — within one level, between two consecutive
//!    slices of a thread every other live thread of that level runs
//!    exactly once (bounded wait of `k - 1` slices).

use ncs_mts::{Mts, MtsConfig, MtsTid, PRIORITY_LEVELS};
use ncs_sim::{Dur, Sim, SimRng};
use parking_lot::Mutex;
use std::sync::Arc;

fn zero_cs() -> MtsConfig {
    MtsConfig {
        context_switch: Dur::ZERO,
        ..MtsConfig::default()
    }
}

/// Spawns `threads` as `(priority, rounds)` pairs, each thread logging
/// `(priority, index)` once per round then yielding; returns the global
/// slice order.
fn run_yield_loop(threads: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let sim = Sim::new();
    let log: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let l0 = Arc::clone(&log);
    let threads = threads.to_vec();
    sim.spawn("main", move |ctx| {
        let mts = Mts::new(ctx.sim(), "p0", zero_cs());
        for (i, &(prio, rounds)) in threads.iter().enumerate() {
            let l = Arc::clone(&l0);
            mts.spawn(format!("t{i}"), prio, move |m| {
                for _ in 0..rounds {
                    l.lock().push((prio, i));
                    m.yield_now();
                }
            });
        }
        mts.start(ctx);
    });
    sim.run().assert_clean();
    let out = log.lock().clone();
    out
}

/// Rule 1 on a pure yield workload: since yielding leaves a thread
/// runnable, every slice of a lower-priority thread proves all
/// higher-priority threads had exited — so the slice sequence must be
/// non-decreasing in priority.
fn assert_strict_priority(order: &[(usize, usize)]) {
    for w in order.windows(2) {
        assert!(
            w[1].0 >= w[0].0,
            "priority {} ran while priority {} was still runnable: {order:?}",
            w[1].0,
            w[0].0
        );
    }
}

/// Rule 2: within each priority level, while `k` threads are live their
/// slices cycle through all `k` in a fixed order (gap between consecutive
/// slices of one thread is exactly `k`).
fn assert_round_robin(order: &[(usize, usize)], threads: &[(usize, usize)]) {
    for level in 0..PRIORITY_LEVELS {
        let slices: Vec<usize> = order
            .iter()
            .filter(|&&(p, _)| p == level)
            .map(|&(_, i)| i)
            .collect();
        if slices.is_empty() {
            continue;
        }
        // Walk the schedule keeping each thread's remaining-round budget;
        // a thread may reappear only after every other live thread of the
        // level has had its turn.
        let mut remaining: Vec<(usize, usize)> = threads
            .iter()
            .enumerate()
            .filter(|&(_, &(p, r))| p == level && r > 0)
            .map(|(i, &(_, r))| (i, r))
            .collect();
        let mut pos = 0;
        while !remaining.is_empty() {
            let live = remaining.len();
            let round: Vec<usize> = slices[pos..pos + live].to_vec();
            let mut expect: Vec<usize> = remaining.iter().map(|&(i, _)| i).collect();
            expect.sort_unstable();
            let mut got = round.clone();
            got.sort_unstable();
            assert_eq!(
                got, expect,
                "level {level}: one full round must serve every live thread once \
                 (slices {slices:?})"
            );
            pos += live;
            for r in remaining.iter_mut() {
                r.1 -= 1;
            }
            remaining.retain(|&(_, r)| r > 0);
        }
        assert_eq!(pos, slices.len(), "level {level}: stray slices");
    }
}

#[test]
fn two_levels_run_in_strict_order() {
    let threads = [(2, 3), (5, 2), (2, 3)];
    let order = run_yield_loop(&threads);
    assert_strict_priority(&order);
    assert_eq!(
        order,
        vec![(2, 0), (2, 2), (2, 0), (2, 2), (2, 0), (2, 2), (5, 1), (5, 1)],
        "high level round-robins to completion before the low level runs"
    );
}

#[test]
fn round_robin_within_a_level_is_fair() {
    let threads = [(4, 5), (4, 5), (4, 5), (4, 5)];
    let order = run_yield_loop(&threads);
    // 4 threads x 5 rounds: each thread's slices are exactly 4 apart.
    for t in 0..4 {
        let idxs: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|&(_, &(_, i))| i == t)
            .map(|(n, _)| n)
            .collect();
        assert_eq!(idxs.len(), 5);
        for w in idxs.windows(2) {
            assert_eq!(w[1] - w[0], 4, "thread {t} waited more than k-1 slices");
        }
    }
}

#[test]
fn woken_high_priority_thread_wins_the_next_yield_point() {
    // A blocked high-priority thread, once unblocked mid-run, is dispatched
    // at the very next yield point — ahead of an already-runnable
    // lower-priority sibling.
    let sim = Sim::new();
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let (la, lb, lh) = (Arc::clone(&log), Arc::clone(&log), Arc::clone(&log));
    sim.spawn("main", move |ctx| {
        let mts = Mts::new(ctx.sim(), "p0", zero_cs());
        let high: Arc<Mutex<Option<MtsTid>>> = Arc::new(Mutex::new(None));
        let h2 = Arc::clone(&high);
        let tid = mts.spawn("high", 1, move |m| {
            m.block(); // parked until A signals
            lh.lock().push("H");
        });
        *high.lock() = Some(tid);
        mts.spawn("a", 6, move |m| {
            la.lock().push("A1");
            m.yield_now(); // B runs
            la.lock().push("A2");
            m.unblock(h2.lock().expect("spawned"));
            m.yield_now(); // H must win this yield point, not B
            la.lock().push("A3");
        });
        mts.spawn("b", 6, move |m| {
            lb.lock().push("B1");
            m.yield_now();
            lb.lock().push("B2");
            m.yield_now();
        });
        mts.start(ctx);
    });
    sim.run().assert_clean();
    assert_eq!(
        *log.lock(),
        vec!["A1", "B1", "A2", "H", "B2", "A3"],
        "the woken priority-1 thread must preempt the level-6 round at the yield point"
    );
}

#[test]
fn property_random_populations_schedule_conformantly() {
    // Property-style sweep: random thread populations (sizes, priorities,
    // round counts) over fixed seeds must all satisfy both rules.
    for seed in 0..24u64 {
        let mut rng = SimRng::new(0xC0FF_EE00 + seed);
        let n = 2 + (rng.next_u64() % 7) as usize;
        let threads: Vec<(usize, usize)> = (0..n)
            .map(|_| {
                let prio = (rng.next_u64() % PRIORITY_LEVELS as u64) as usize;
                let rounds = 1 + (rng.next_u64() % 6) as usize;
                (prio, rounds)
            })
            .collect();
        let order = run_yield_loop(&threads);
        let total: usize = threads.iter().map(|&(_, r)| r).sum();
        assert_eq!(order.len(), total, "seed {seed}: every round runs exactly once");
        assert_strict_priority(&order);
        assert_round_robin(&order, &threads);
    }
}

#[test]
fn property_runs_are_deterministic() {
    // The same population twice gives the identical slice schedule — the
    // scheduler itself introduces no nondeterminism.
    for seed in 0..6u64 {
        let mut rng = SimRng::new(0xDE7E_0000 + seed);
        let n = 2 + (rng.next_u64() % 5) as usize;
        let threads: Vec<(usize, usize)> = (0..n)
            .map(|_| {
                (
                    (rng.next_u64() % 8) as usize,
                    1 + (rng.next_u64() % 4) as usize,
                )
            })
            .collect();
        assert_eq!(
            run_yield_loop(&threads),
            run_yield_loop(&threads),
            "seed {seed}"
        );
    }
}
