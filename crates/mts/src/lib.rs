//! # ncs-mts — the NCS multithread subsystem (NCS_MTS)
//!
//! The paper's user-level thread package (Section 4.1), rebuilt on the
//! deterministic simulation kernel: 16 priority levels with round-robin
//! scheduling, doubly-linked runnable/blocked queues, cooperative
//! (non-preemptive) dispatch with an explicit context-switch cost, and the
//! blocking primitives (`block` / `unblock` / thread-level `sleep` /
//! `external_block`) that the NCS message-passing layer builds its send,
//! receive, and flow-control system threads on.
//!
//! [`sync`] adds the synchronization objects the paper lists as NCS_MTS
//! services (semaphores, barriers, events) built purely on block/unblock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dlist;
pub mod runtime;
pub mod sync;

pub use runtime::{
    Mts, MtsConfig, MtsCtx, MtsStats, MtsThreadReport, MtsThreadState, MtsTid, SchedPolicy,
    PRIORITY_LEVELS,
};
pub use sync::{MtsBarrier, MtsEvent, MtsSemaphore};
