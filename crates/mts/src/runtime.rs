//! The NCS_MTS runtime: user-level threads over one process's CPU.
//!
//! Faithful to Section 4.1 of the paper:
//!
//! * **N = 16 priority levels**, round-robin within a level, implemented as
//!   doubly-linked queues ([`crate::dlist`]);
//! * a doubly-linked **blocked queue**;
//! * thread states **running / runnable / blocked** (plus bookkeeping
//!   states for creation, kernel-level waits, and exit);
//! * **cooperative** scheduling: a thread runs until it blocks, yields, or
//!   exits — there is no preemption, exactly like QuickThreads-based
//!   user-level packages;
//! * a context-switch cost charged at every dispatch (this is the small
//!   single-node *penalty* visible in the paper's Tables 1 and 3).
//!
//! One [`Mts`] instance models one Unix process. Exactly one of its threads
//! owns the CPU at any virtual instant; everything a thread does between
//! scheduler calls (including [`ncs_sim::Ctx::sleep`]-modeled computation
//! and protocol processing) happens with the CPU held. Kernel-level blocking
//! (e.g. parking on an empty socket) therefore blocks the *whole process* —
//! unless done through [`MtsCtx::external_block`], which is how NCS's
//! receive thread waits for the network while sibling threads keep running.

use ncs_sim::{
    ActorId, AnalysisConfig, ChoicePoint, Ctx, Dur, Sim, SimTime, SpanKind, ThreadId, WaitGraph,
};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::dlist::{LinkArena, ListHead};

/// Number of priority levels (the paper's current implementation: N = 16).
pub const PRIORITY_LEVELS: usize = 16;

/// Identifier of an MTS thread within its process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MtsTid(pub u32);

impl std::fmt::Display for MtsTid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Scheduling state of an MTS thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// In a runnable queue (including not-yet-first-run threads).
    Runnable,
    /// Owns the CPU.
    Running,
    /// In the blocked queue.
    Blocked,
    /// Released the CPU for a kernel-level wait ([`MtsCtx::external_block`]).
    External,
    /// Finished.
    Exited,
}

struct Tcb {
    name: String,
    /// Interned `proc/thread` label, so per-event tracing never allocates.
    actor: ActorId,
    priority: usize,
    state: TState,
    green: Option<ThreadId>,
    /// Earliest instant the thread may run after its latest dispatch
    /// (dispatch time + context-switch cost).
    run_at: SimTime,
    /// A pending unblock permit (unblock arrived before the block).
    permit: bool,
    /// Generation counter distinguishing timed sleeps from later blocks.
    sleep_gen: u64,
    blocked_since: Option<SimTime>,
    total_blocked: Dur,
    /// When the current run slice started (dispatch + context-switch cost).
    run_since: Option<SimTime>,
    /// When the thread last entered a runnable queue.
    runnable_since: Option<SimTime>,
    dispatches: u64,
    /// MTS threads waiting in [`MtsCtx::join`] for this one to exit.
    exit_waiters: Vec<MtsTid>,
    /// The sibling this thread is blocked on, when known — a wait-for edge
    /// for deadlock detection. `None` for timed sleeps and anonymous
    /// blocks (anything may wake those).
    wait_on: Option<MtsTid>,
}

struct Inner {
    proc_name: String,
    cs_cost: Dur,
    policy: SchedPolicy,
    started: bool,
    arena: LinkArena,
    runnable: [ListHead; PRIORITY_LEVELS],
    blocked: ListHead,
    tcbs: Vec<Tcb>,
    running: Option<MtsTid>,
    live: usize,
    all_done_waiters: Vec<ThreadId>,
    switches: u64,
    idle_since: Option<SimTime>,
    total_idle: Dur,
    analysis: AnalysisConfig,
    /// Deadlock cycles already reported, so a stuck process does not spam
    /// one violation per idle transition.
    reported_cycles: Vec<Vec<u32>>,
}

impl Inner {
    /// Queues `slot` at the tail of its runnable list: its priority level
    /// under multilevel round robin, the single level-0 queue under FIFO.
    fn push_runnable(&mut self, slot: u32) {
        let prio = match self.policy {
            SchedPolicy::MultilevelRoundRobin => self.tcbs[slot as usize].priority,
            SchedPolicy::GlobalFifo => 0,
        };
        let Inner {
            runnable, arena, ..
        } = self;
        runnable[prio].push_back(arena, slot);
    }

    /// Pops the highest-priority runnable thread (round robin within
    /// level). When a schedule-exploration policy is installed on the
    /// kernel, the policy picks *which* thread of the top non-empty level
    /// dispatches — the round-robin rotation within a level is a
    /// convention, not a requirement, so any member is a legal choice.
    /// Strict priority *between* levels is a hard rule and never offered
    /// as a choice. With no policy installed the list head pops on the
    /// pre-existing code path.
    fn pop_runnable_via(&mut self, sim: &Sim) -> Option<u32> {
        let Inner {
            runnable, arena, ..
        } = self;
        let level = runnable.iter_mut().find(|l| !l.is_empty())?;
        let n = level.len();
        if n >= 2 && sim.has_schedule_policy() {
            let pick = sim.schedule_choice(ChoicePoint::RunnableRotation, n);
            let slot = level.iter(arena).nth(pick).expect("pick within level");
            level.unlink(arena, slot);
            Some(slot)
        } else {
            level.pop_front(arena)
        }
    }

    fn push_blocked(&mut self, slot: u32) {
        let Inner { blocked, arena, .. } = self;
        blocked.push_back(arena, slot);
    }

    fn unlink_blocked(&mut self, slot: u32) {
        let Inner { blocked, arena, .. } = self;
        blocked.unlink(arena, slot);
    }

    /// Whether a runnable thread exists that a yielding thread of
    /// `priority` would actually hand the CPU to (its own level or higher).
    /// Strictly-lower levels never win a yield, so yielding to them is a
    /// no-op — re-dispatching the yielder itself would wake the green
    /// thread that is still running, which the kernel (correctly) rejects.
    fn any_runnable_at_or_above(&self, priority: usize) -> bool {
        let cut = match self.policy {
            SchedPolicy::MultilevelRoundRobin => priority,
            SchedPolicy::GlobalFifo => 0,
        };
        self.runnable[..=cut].iter().any(|l| !l.is_empty())
    }
}

/// Scheduling discipline (the paper: "NCS_MTS can support several
/// scheduling and synchronization techniques"; the default is its current
/// implementation — N = 16 priority levels with round robin).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedPolicy {
    /// Multilevel priority queue, round robin within a level (Figure 9).
    #[default]
    MultilevelRoundRobin,
    /// Single global FIFO: creation/readiness order, priorities ignored.
    GlobalFifo,
}

/// Configuration of one MTS instance.
#[derive(Clone, Debug)]
pub struct MtsConfig {
    /// User-level context-switch cost charged at each dispatch. QuickThreads
    /// switches in a few microseconds on a 1990s SPARC; the default includes
    /// queue management.
    pub context_switch: Dur,
    /// Scheduling discipline.
    pub policy: SchedPolicy,
    /// Runtime analysis pass (deadlock detection, queue-invariant
    /// validation). Off by default; see [`AnalysisConfig::recording`].
    pub analysis: AnalysisConfig,
}

impl Default for MtsConfig {
    fn default() -> MtsConfig {
        MtsConfig {
            context_switch: Dur::from_micros(15),
            policy: SchedPolicy::default(),
            analysis: AnalysisConfig::off(),
        }
    }
}

/// Scheduler statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MtsStats {
    /// Total dispatches performed.
    pub switches: u64,
    /// Total time the process CPU sat idle (no runnable thread).
    pub total_idle: Dur,
}

/// One process's user-level thread runtime (the paper's NCS_MTS).
#[derive(Clone)]
pub struct Mts {
    sim: Sim,
    inner: Arc<Mutex<Inner>>,
}

impl Mts {
    /// Creates the runtime for process `proc_name` (the `NCS_init` half
    /// that sets up threading; system threads are layered on top by
    /// ncs-core).
    pub fn new(sim: &Sim, proc_name: impl Into<String>, config: MtsConfig) -> Mts {
        if config.analysis.active() {
            // Arm the kernel-side lost-wakeup report with the same sink.
            sim.set_analysis(config.analysis.clone());
        }
        Mts {
            sim: sim.clone(),
            inner: Arc::new(Mutex::new(Inner {
                proc_name: proc_name.into(),
                cs_cost: config.context_switch,
                policy: config.policy,
                started: false,
                arena: LinkArena::new(),
                runnable: [ListHead::new(); PRIORITY_LEVELS],
                blocked: ListHead::new(),
                tcbs: Vec::new(),
                running: None,
                live: 0,
                all_done_waiters: Vec::new(),
                switches: 0,
                idle_since: None,
                total_idle: Dur::ZERO,
                analysis: config.analysis,
                reported_cycles: Vec::new(),
            })),
        }
    }

    /// Creates an MTS thread (`NCS_t_create`). Threads do not run until
    /// [`Mts::start`]; threads created after `start` become runnable
    /// immediately. Priority 0 is highest; must be below
    /// [`PRIORITY_LEVELS`].
    pub fn spawn(
        &self,
        name: impl Into<String>,
        priority: usize,
        body: impl FnOnce(&MtsCtx) + Send + 'static,
    ) -> MtsTid {
        assert!(priority < PRIORITY_LEVELS, "priority out of range");
        let name = name.into();
        let green_name = {
            let inner = self.inner.lock();
            format!("{}/{}", inner.proc_name, name)
        };
        // Intern the actor label once; every later trace event for this
        // thread records the small id instead of re-allocating the string.
        let actor = self.sim.with_tracer(|tr| tr.intern(&green_name));
        let tid;
        {
            let mut inner = self.inner.lock();
            let slot = inner.arena.add_slot();
            tid = MtsTid(slot);
            let now = self.sim.now();
            inner.tcbs.push(Tcb {
                name: name.clone(),
                actor,
                priority,
                state: TState::Runnable,
                green: None,
                run_at: SimTime::ZERO,
                permit: false,
                sleep_gen: 0,
                blocked_since: None,
                total_blocked: Dur::ZERO,
                run_since: None,
                runnable_since: Some(now),
                dispatches: 0,
                exit_waiters: Vec::new(),
                wait_on: None,
            });
            inner.push_runnable(slot);
            inner.live += 1;
            self.queue_check(&inner, "spawn");
        }
        let mts = self.clone();
        let green = self.sim.spawn(green_name, move |ctx| {
            let mctx = MtsCtx {
                mts: mts.clone(),
                ctx,
                tid,
            };
            mctx.wait_for_dispatch();
            body(&mctx);
            mts.thread_exited(ctx, tid);
        });
        self.inner.lock().tcbs[tid.0 as usize].green = Some(green);
        tid
    }

    /// Starts scheduling (`NCS_start`) and blocks the calling green thread
    /// (the process "main") until every MTS thread has exited.
    pub fn start(&self, ctx: &Ctx) {
        {
            let mut inner = self.inner.lock();
            assert!(!inner.started, "NCS_start called twice");
            inner.started = true;
            if inner.live == 0 {
                return;
            }
            self.dispatch_next(&mut inner, ctx.now());
        }
        loop {
            {
                let mut inner = self.inner.lock();
                if inner.live == 0 {
                    return;
                }
                inner.all_done_waiters.push(ctx.tid());
            }
            ctx.park();
        }
    }

    /// Unblocks a thread (`NCS_unblock`). If the target is not currently
    /// blocked, a permit is recorded and its next [`MtsCtx::block`] returns
    /// immediately — the race-free semantics application code expects.
    /// Callable from any green thread or event callback of the simulation.
    pub fn unblock(&self, sim: &Sim, tid: MtsTid) {
        let mut inner = self.inner.lock();
        match inner.tcbs[tid.0 as usize].state {
            TState::Blocked => {
                inner.unlink_blocked(tid.0);
                self.note_unblocked(&mut inner, tid, sim.now());
                self.make_runnable_or_dispatch(&mut inner, tid, sim);
            }
            TState::Exited => {}
            _ => inner.tcbs[tid.0 as usize].permit = true,
        }
        self.queue_check(&inner, "unblock");
    }

    /// Whether any thread is waiting in a runnable queue.
    pub fn has_runnable(&self) -> bool {
        let inner = self.inner.lock();
        inner.runnable.iter().any(|l| !l.is_empty())
    }

    /// Scheduler statistics so far.
    pub fn stats(&self) -> MtsStats {
        let inner = self.inner.lock();
        MtsStats {
            switches: inner.switches,
            total_idle: inner.total_idle,
        }
    }

    /// Total time `tid` has spent blocked.
    pub fn blocked_time(&self, tid: MtsTid) -> Dur {
        self.inner.lock().tcbs[tid.0 as usize].total_blocked
    }

    /// The process name this runtime models.
    pub fn proc_name(&self) -> String {
        self.inner.lock().proc_name.clone()
    }

    /// Actor label (`proc/thread`) for tracing.
    pub fn actor(&self, tid: MtsTid) -> String {
        let inner = self.inner.lock();
        format!("{}/{}", inner.proc_name, inner.tcbs[tid.0 as usize].name)
    }

    /// Interned tracer actor for `tid` — the allocation-free handle for
    /// hot-path span recording ([`ncs_sim::Tracer::span_on`]).
    pub fn actor_id(&self, tid: MtsTid) -> ActorId {
        self.inner.lock().tcbs[tid.0 as usize].actor
    }

    // -- internals ---------------------------------------------------------

    fn note_unblocked(&self, inner: &mut Inner, tid: MtsTid, now: SimTime) {
        let (actor, since) = {
            let tcb = &mut inner.tcbs[tid.0 as usize];
            match tcb.blocked_since.take() {
                None => return,
                Some(since) => {
                    tcb.total_blocked += now.saturating_since(since);
                    (tcb.actor, since)
                }
            }
        };
        self.sim.with_tracer(|tr| {
            tr.span_on(actor, SpanKind::Idle, "blocked", since, now);
        });
    }

    /// Closes the current run slice of `tid` (a scheduler timeline span at
    /// detail level, plus the always-on run-slice histogram). Call at every
    /// Running → (Runnable|Blocked|External|Exited) transition.
    fn note_run_end(&self, inner: &mut Inner, tid: MtsTid, now: SimTime) {
        let (actor, since) = {
            let tcb = &mut inner.tcbs[tid.0 as usize];
            match tcb.run_since.take() {
                None => return,
                Some(since) => (tcb.actor, since),
            }
        };
        self.sim
            .with_metrics(|m| m.observe("mts.run_slice", now.saturating_since(since)));
        self.sim.with_tracer(|tr| {
            if tr.detail_enabled() {
                tr.span_on(actor, SpanKind::Compute, "run", since, now);
            }
        });
    }

    /// Puts an unblocked thread on the CPU if it is idle, else queues it.
    fn make_runnable_or_dispatch(&self, inner: &mut Inner, tid: MtsTid, sim: &Sim) {
        {
            let tcb = &mut inner.tcbs[tid.0 as usize];
            tcb.state = TState::Runnable;
            tcb.runnable_since = Some(sim.now());
            tcb.wait_on = None;
        }
        inner.push_runnable(tid.0);
        if inner.started && inner.running.is_none() {
            self.dispatch_next_at(inner, sim.now());
        }
    }

    /// Picks the next thread (highest priority, round robin) and hands it
    /// the CPU. `inner.running` must be `None`.
    fn dispatch_next(&self, inner: &mut Inner, now: SimTime) {
        self.dispatch_next_at(inner, now);
    }

    fn dispatch_next_at(&self, inner: &mut Inner, now: SimTime) {
        debug_assert!(inner.running.is_none());
        match inner.pop_runnable_via(&self.sim) {
            Some(slot) => {
                let tid = MtsTid(slot);
                if let Some(since) = inner.idle_since.take() {
                    inner.total_idle += now.saturating_since(since);
                }
                inner.switches += 1;
                let run_at = now + inner.cs_cost;
                let (actor, queued_since) = {
                    let tcb = &mut inner.tcbs[slot as usize];
                    tcb.state = TState::Running;
                    tcb.run_at = run_at;
                    tcb.run_since = Some(run_at);
                    tcb.dispatches += 1;
                    (tcb.actor, tcb.runnable_since.take())
                };
                inner.running = Some(tid);
                self.sim.with_metrics(|m| {
                    m.inc("mts.dispatches", 1);
                    if let Some(since) = queued_since {
                        m.observe("mts.runnable_wait", now.saturating_since(since));
                    }
                });
                self.sim.with_tracer(|tr| {
                    if tr.detail_enabled() {
                        if let Some(since) = queued_since {
                            tr.span_on(actor, SpanKind::Runnable, "runnable", since, now);
                        }
                    }
                    if !inner.cs_cost.is_zero() {
                        tr.span_on(actor, SpanKind::Overhead, "ctx-switch", now, run_at);
                    }
                });
                if let Some(green) = inner.tcbs[slot as usize].green {
                    self.sim.wake(green);
                }
            }
            None => {
                inner.running = None;
                if inner.idle_since.is_none() {
                    inner.idle_since = Some(now);
                    // The process just went idle: every thread is blocked or
                    // gone, the moment a wait-for cycle becomes a deadlock.
                    if inner.analysis.active() {
                        Self::deadlock_scan(inner);
                    }
                }
            }
        }
        self.queue_check(inner, "dispatch");
    }

    /// Reports each not-yet-seen wait-for cycle among blocked threads.
    fn deadlock_scan(inner: &mut Inner) {
        for cycle in Self::wait_cycles(inner) {
            if inner.reported_cycles.contains(&cycle) {
                continue;
            }
            let edges: Vec<String> = cycle
                .iter()
                .map(|&t| {
                    let tcb = &inner.tcbs[t as usize];
                    let target = match tcb.wait_on {
                        Some(w) => format!("t{}/{}", w.0, inner.tcbs[w.0 as usize].name),
                        None => "?".to_string(),
                    };
                    format!("t{t}/{} -> {target}", tcb.name)
                })
                .collect();
            inner.analysis.report(
                "deadlock",
                inner.proc_name.clone(),
                format!("cyclic wait among blocked threads: {}", edges.join(", ")),
            );
            inner.reported_cycles.push(cycle);
        }
    }

    /// Wait-for cycles among currently blocked threads, as sorted slot
    /// groups (deterministic order).
    fn wait_cycles(inner: &Inner) -> Vec<Vec<u32>> {
        let mut g = WaitGraph::new(inner.tcbs.len());
        for (i, tcb) in inner.tcbs.iter().enumerate() {
            if tcb.state != TState::Blocked {
                continue;
            }
            if let Some(w) = tcb.wait_on {
                if inner.tcbs[w.0 as usize].state == TState::Blocked {
                    g.add_edge(i, w.0 as usize);
                }
            }
        }
        g.cycles()
            .into_iter()
            .map(|c| c.into_iter().map(|x| x as u32).collect())
            .collect()
    }

    /// Runs the promoted dlist invariants over every scheduler queue when
    /// the analysis pass is active.
    fn queue_check(&self, inner: &Inner, op: &'static str) {
        if !inner.analysis.active() {
            return;
        }
        for problem in Self::validate_inner(inner) {
            inner.analysis.report(
                "queue-invariant",
                inner.proc_name.clone(),
                format!("after {op}: {problem}"),
            );
        }
    }

    fn validate_inner(inner: &Inner) -> Vec<String> {
        let mut problems = Vec::new();
        let mut membership = vec![0u32; inner.arena.slots()];
        let mut lists: Vec<(String, &ListHead)> = inner
            .runnable
            .iter()
            .enumerate()
            .map(|(p, l)| (format!("runnable[{p}]"), l))
            .collect();
        lists.push(("blocked".to_string(), &inner.blocked));
        for (label, list) in lists {
            match list.validate(&inner.arena) {
                Ok(walk) => {
                    for s in walk {
                        membership[s as usize] += 1;
                    }
                }
                Err(e) => problems.push(format!("{label}: {e}")),
            }
        }
        for (i, &count) in membership.iter().enumerate() {
            if count > 1 {
                problems.push(format!("t{i} is on {count} lists at once"));
            }
            if let Some(tcb) = inner.tcbs.get(i) {
                let queued = matches!(tcb.state, TState::Runnable | TState::Blocked);
                if queued != (count == 1) && count <= 1 {
                    problems.push(format!(
                        "t{i}/{} is {:?} but on {count} scheduler lists",
                        tcb.name, tcb.state
                    ));
                }
            }
        }
        problems
    }

    fn thread_exited(&self, ctx: &Ctx, tid: MtsTid) {
        let joiners;
        {
            let mut inner = self.inner.lock();
            debug_assert_eq!(inner.running, Some(tid));
            self.note_run_end(&mut inner, tid, ctx.now());
            inner.tcbs[tid.0 as usize].state = TState::Exited;
            joiners = std::mem::take(&mut inner.tcbs[tid.0 as usize].exit_waiters);
            inner.running = None;
            inner.live -= 1;
            self.dispatch_next(&mut inner, ctx.now());
            if inner.live == 0 {
                for w in inner.all_done_waiters.drain(..) {
                    self.sim.wake(w);
                }
            }
        }
        for j in joiners {
            self.unblock(ctx.sim(), j);
        }
    }

    /// Whether thread `tid` has exited.
    pub fn has_exited(&self, tid: MtsTid) -> bool {
        self.inner.lock().tcbs[tid.0 as usize].state == TState::Exited
    }

    /// Snapshot of every thread's scheduling state and wait edge — what a
    /// post-run analysis pass uses to classify stuck threads.
    pub fn thread_report(&self) -> Vec<MtsThreadReport> {
        let inner = self.inner.lock();
        inner
            .tcbs
            .iter()
            .enumerate()
            .map(|(i, tcb)| MtsThreadReport {
                tid: MtsTid(i as u32),
                name: tcb.name.clone(),
                state: match tcb.state {
                    TState::Runnable => MtsThreadState::Runnable,
                    TState::Running => MtsThreadState::Running,
                    TState::Blocked => MtsThreadState::Blocked,
                    TState::External => MtsThreadState::External,
                    TState::Exited => MtsThreadState::Exited,
                },
                wait_on: tcb.wait_on,
                blocked_since: tcb.blocked_since,
            })
            .collect()
    }

    /// Wait-for cycles among the currently blocked threads. Each cycle is
    /// sorted by thread id; an empty result means no deadlock is provable
    /// from the recorded wait edges.
    pub fn deadlock_cycles(&self) -> Vec<Vec<MtsTid>> {
        let inner = self.inner.lock();
        Self::wait_cycles(&inner)
            .into_iter()
            .map(|c| c.into_iter().map(MtsTid).collect())
            .collect()
    }

    /// Runs the promoted dlist queue invariants over every scheduler list
    /// right now, returning a description of each corruption found (empty
    /// when all queues are sound).
    pub fn validate_queues(&self) -> Vec<String> {
        Self::validate_inner(&self.inner.lock())
    }
}

/// Externally visible scheduling state in a [`MtsThreadReport`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MtsThreadState {
    /// Waiting in a runnable queue.
    Runnable,
    /// Owns the process CPU.
    Running,
    /// In the blocked queue.
    Blocked,
    /// Parked in a kernel-level wait ([`MtsCtx::external_block`]).
    External,
    /// Finished.
    Exited,
}

/// One thread's scheduling snapshot (see [`Mts::thread_report`]).
#[derive(Clone, Debug)]
pub struct MtsThreadReport {
    /// Thread id within the process.
    pub tid: MtsTid,
    /// Thread name.
    pub name: String,
    /// Scheduling state at snapshot time.
    pub state: MtsThreadState,
    /// Recorded wait-for edge, if the thread named what it waits on.
    pub wait_on: Option<MtsTid>,
    /// When the thread last blocked, if currently blocked.
    pub blocked_since: Option<SimTime>,
}

/// Per-thread handle passed to MTS thread bodies.
pub struct MtsCtx<'a> {
    mts: Mts,
    ctx: &'a Ctx,
    tid: MtsTid,
}

impl MtsCtx<'_> {
    /// The runtime this thread belongs to.
    pub fn mts(&self) -> &Mts {
        &self.mts
    }

    /// The underlying simulation thread context. Use for modeling CPU time
    /// (`ctx().sleep(..)` holds the process CPU — correct for computation
    /// and protocol processing).
    pub fn ctx(&self) -> &Ctx {
        self.ctx
    }

    /// This thread's MTS id.
    pub fn tid(&self) -> MtsTid {
        self.tid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Voluntarily yields the CPU; round-robins within this priority level.
    pub fn yield_now(&self) {
        {
            let mut inner = self.mts.inner.lock();
            debug_assert_eq!(inner.running, Some(self.tid));
            // Fast path: nothing that could win the CPU — skip the switch
            // entirely. This includes the case where only strictly-lower
            // priority threads are runnable: round robin never hands the
            // CPU down a level while the yielder is still runnable.
            let my_prio = inner.tcbs[self.tid.0 as usize].priority;
            if !inner.any_runnable_at_or_above(my_prio) {
                return;
            }
            let now = self.ctx.now();
            self.mts.note_run_end(&mut inner, self.tid, now);
            {
                let tcb = &mut inner.tcbs[self.tid.0 as usize];
                tcb.state = TState::Runnable;
                tcb.runnable_since = Some(now);
            }
            inner.push_runnable(self.tid.0);
            inner.running = None;
            self.mts.dispatch_next(&mut inner, now);
        }
        self.wait_for_dispatch();
    }

    /// Blocks this thread (`NCS_block`) until someone calls
    /// [`Mts::unblock`]. Returns immediately if a permit is pending.
    pub fn block(&self) {
        self.block_inner(None);
    }

    /// [`MtsCtx::block`], recording that this thread is waiting for
    /// sibling `on` to act — a wait-for edge the analysis pass feeds into
    /// deadlock detection. Semantics are otherwise identical to `block`;
    /// any thread may still perform the unblock.
    pub fn block_on(&self, on: MtsTid) {
        assert_ne!(on, self.tid, "a thread cannot wait on itself");
        self.block_inner(Some(on));
    }

    fn block_inner(&self, wait_on: Option<MtsTid>) {
        {
            let mut inner = self.mts.inner.lock();
            debug_assert_eq!(inner.running, Some(self.tid));
            if std::mem::take(&mut inner.tcbs[self.tid.0 as usize].permit) {
                return;
            }
            let now = self.ctx.now();
            self.mts.note_run_end(&mut inner, self.tid, now);
            {
                let tcb = &mut inner.tcbs[self.tid.0 as usize];
                tcb.state = TState::Blocked;
                tcb.blocked_since = Some(now);
                tcb.sleep_gen += 1;
                tcb.wait_on = wait_on;
            }
            inner.push_blocked(self.tid.0);
            inner.running = None;
            self.mts.dispatch_next(&mut inner, now);
        }
        self.wait_for_dispatch();
    }

    /// Blocks for `d` of virtual time, letting sibling threads run — the
    /// thread-level (as opposed to process-level) sleep.
    pub fn sleep(&self, d: Dur) {
        if d.is_zero() {
            self.yield_now();
            return;
        }
        let gen;
        {
            let mut inner = self.mts.inner.lock();
            debug_assert_eq!(inner.running, Some(self.tid));
            let now = self.ctx.now();
            self.mts.note_run_end(&mut inner, self.tid, now);
            {
                let tcb = &mut inner.tcbs[self.tid.0 as usize];
                tcb.state = TState::Blocked;
                tcb.blocked_since = Some(now);
                tcb.sleep_gen += 1;
                gen = tcb.sleep_gen;
            }
            inner.push_blocked(self.tid.0);
            inner.running = None;
            self.mts.dispatch_next(&mut inner, now);
        }
        let mts = self.mts.clone();
        let tid = self.tid;
        self.ctx.sim().schedule_in(d, move |sim| {
            let fire = {
                let inner = mts.inner.lock();
                let tcb = &inner.tcbs[tid.0 as usize];
                tcb.state == TState::Blocked && tcb.sleep_gen == gen
            };
            if fire {
                mts.unblock(sim, tid);
            }
        });
        self.wait_for_dispatch();
    }

    /// Unblocks a sibling thread (`NCS_unblock`).
    pub fn unblock(&self, tid: MtsTid) {
        self.mts.unblock(self.ctx.sim(), tid);
    }

    /// Blocks until sibling thread `tid` exits.
    pub fn join(&self, tid: MtsTid) {
        assert_ne!(tid, self.tid, "a thread cannot join itself");
        loop {
            {
                let mut inner = self.mts.inner.lock();
                if inner.tcbs[tid.0 as usize].state == TState::Exited {
                    return;
                }
                inner.tcbs[tid.0 as usize].exit_waiters.push(self.tid);
            }
            self.block_on(tid);
        }
    }

    /// Releases the CPU, performs a kernel-level blocking operation `f`
    /// (e.g. waiting on a network inbox), then re-acquires the CPU.
    ///
    /// This is how NCS's receive system thread waits for the wire without
    /// stalling sibling compute threads. While inside `f`, sibling threads
    /// are scheduled normally.
    pub fn external_block<R>(&self, f: impl FnOnce() -> R) -> R {
        let t_ext = self.ctx.now();
        {
            let mut inner = self.mts.inner.lock();
            debug_assert_eq!(inner.running, Some(self.tid));
            self.mts.note_run_end(&mut inner, self.tid, t_ext);
            inner.tcbs[self.tid.0 as usize].state = TState::External;
            inner.running = None;
            self.mts.dispatch_next(&mut inner, t_ext);
        }
        let r = f();
        let (ext_actor, t_back) = {
            let inner = self.mts.inner.lock();
            (inner.tcbs[self.tid.0 as usize].actor, self.ctx.now())
        };
        self.ctx.sim().with_tracer(|tr| {
            if tr.detail_enabled() {
                tr.span_on(ext_actor, SpanKind::Idle, "kernel-wait", t_ext, t_back);
            }
        });
        // Re-acquire the CPU.
        let direct = {
            let mut inner = self.mts.inner.lock();
            if inner.running.is_none() {
                if let Some(since) = inner.idle_since.take() {
                    let now = self.ctx.now();
                    inner.total_idle += now.saturating_since(since);
                }
                inner.switches += 1;
                let run_at = self.ctx.now() + inner.cs_cost;
                {
                    let tcb = &mut inner.tcbs[self.tid.0 as usize];
                    tcb.state = TState::Running;
                    tcb.run_at = run_at;
                    tcb.run_since = Some(run_at);
                    tcb.dispatches += 1;
                }
                inner.running = Some(self.tid);
                self.ctx.sim().with_metrics(|m| m.inc("mts.dispatches", 1));
                true
            } else {
                // CPU busy: queue like any runnable thread and wait.
                {
                    let tcb = &mut inner.tcbs[self.tid.0 as usize];
                    tcb.state = TState::Runnable;
                    tcb.runnable_since = Some(self.ctx.now());
                }
                inner.push_runnable(self.tid.0);
                false
            }
        };
        if direct {
            // Charge the context switch for the direct re-acquisition.
            let run_at = self.mts.inner.lock().tcbs[self.tid.0 as usize].run_at;
            let wait = run_at.saturating_since(self.ctx.now());
            if !wait.is_zero() {
                self.ctx.sleep(wait);
            }
        } else {
            self.wait_for_dispatch();
        }
        r
    }

    /// Waits until this thread has been dispatched, then charges the
    /// remaining context-switch cost.
    fn wait_for_dispatch(&self) {
        loop {
            let running = {
                let inner = self.mts.inner.lock();
                inner.tcbs[self.tid.0 as usize].state == TState::Running
            };
            if running {
                break;
            }
            self.ctx.park();
        }
        let run_at = self.mts.inner.lock().tcbs[self.tid.0 as usize].run_at;
        let wait = run_at.saturating_since(self.ctx.now());
        if !wait.is_zero() {
            self.ctx.sleep(wait);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn zero_cs() -> MtsConfig {
        MtsConfig {
            context_switch: Dur::ZERO,
            ..MtsConfig::default()
        }
    }

    #[test]
    fn threads_run_after_start() {
        let sim = Sim::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            for i in 0..3 {
                let h = Arc::clone(&h);
                mts.spawn(format!("t{i}"), 1, move |_| {
                    h.fetch_add(1, Ordering::SeqCst);
                });
            }
            assert_eq!(h.load(Ordering::SeqCst), 0, "nothing runs before start");
            mts.start(ctx);
            assert_eq!(h.load(Ordering::SeqCst), 3, "start runs all to completion");
        });
        sim.run().assert_clean();
    }

    #[test]
    fn cooperative_no_preemption() {
        // A long-computing thread is never preempted by an equal-priority
        // sibling: the sibling runs only after the first yields or exits.
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            mts.spawn("worker", 1, move |m| {
                l1.lock().push("w-start");
                m.ctx().sleep(Dur::from_millis(10)); // compute, CPU held
                l1.lock().push("w-end");
            });
            mts.spawn("other", 1, move |m| {
                l2.lock().push("o-run");
                m.ctx().sleep(Dur::from_millis(1));
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(*log.lock(), vec!["w-start", "w-end", "o-run"]);
    }

    #[test]
    fn priority_order_respected() {
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            // Created in reverse priority order; must run by priority.
            for prio in [5usize, 2, 9, 0, 2] {
                let log = Arc::clone(&log);
                mts.spawn(format!("p{prio}"), prio, move |_| {
                    log.lock().push(prio);
                });
            }
            mts.start(ctx);
            assert_eq!(*log.lock(), vec![0, 2, 2, 5, 9]);
        });
        sim.run().assert_clean();
    }

    #[test]
    fn round_robin_within_level() {
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let log_outer = Arc::clone(&log);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            for i in 0..3u32 {
                let log = Arc::clone(&log);
                mts.spawn(format!("t{i}"), 4, move |m| {
                    for _ in 0..3 {
                        log.lock().push(i);
                        m.yield_now();
                    }
                });
            }
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(*log_outer.lock(), vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn block_unblock_switches_threads() {
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            let t_blocked = {
                let l1 = Arc::clone(&l1);
                mts.spawn("blocked", 1, move |m| {
                    l1.lock().push("b-before");
                    m.block();
                    l1.lock().push("b-after");
                })
            };
            mts.spawn("waker", 1, move |m| {
                l2.lock().push("w-compute");
                m.ctx().sleep(Dur::from_micros(100));
                m.unblock(t_blocked);
                l2.lock().push("w-done");
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(
            *log.lock(),
            vec!["b-before", "w-compute", "w-done", "b-after"]
        );
    }

    #[test]
    fn unblock_before_block_leaves_permit() {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            let mts2 = mts.clone();
            let t2 = mts.spawn("late-blocker", 2, move |m| {
                // Runs second (lower priority); the permit is already here.
                let t0 = m.now();
                m.block();
                assert_eq!(m.now(), t0, "block with permit must not wait");
            });
            mts.spawn("early-waker", 1, move |m| {
                mts2.unblock(m.ctx().sim(), t2);
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
    }

    #[test]
    fn mts_sleep_lets_sibling_run() {
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            mts.spawn("sleeper", 1, move |m| {
                l1.lock().push("s-sleep");
                m.sleep(Dur::from_millis(5));
                l1.lock().push("s-wake");
                assert_eq!(m.now(), SimTime::ZERO + Dur::from_millis(5));
            });
            mts.spawn("sibling", 1, move |m| {
                l2.lock().push("sib-run");
                m.ctx().sleep(Dur::from_millis(1));
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(*log.lock(), vec!["s-sleep", "sib-run", "s-wake"]);
    }

    #[test]
    fn context_switch_cost_charged() {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    context_switch: Dur::from_micros(10),
                    ..MtsConfig::default()
                },
            );
            mts.spawn("a", 1, move |m| {
                // First dispatch charged 10us.
                assert_eq!(m.now(), SimTime::ZERO + Dur::from_micros(10));
                m.yield_now();
                // b ran (10us switch), then back to a (another 10us).
                assert_eq!(m.now(), SimTime::ZERO + Dur::from_micros(30));
            });
            mts.spawn("b", 1, |_| {});
            mts.start(ctx);
        });
        sim.run().assert_clean();
    }

    #[test]
    fn external_block_frees_cpu_for_siblings() {
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            let ch: ncs_sim::SimChannel<u8> = ncs_sim::SimChannel::unbounded("net");
            let ch2 = ch.clone();
            mts.spawn("receiver", 0, move |m| {
                l1.lock().push("r-wait");
                let v = m.external_block(|| ch2.recv(m.ctx()).unwrap());
                l1.lock().push("r-got");
                assert_eq!(v, 42);
            });
            mts.spawn("computer", 1, move |m| {
                l2.lock().push("c-run");
                m.ctx().sleep(Dur::from_millis(2));
                l2.lock().push("c-done");
            });
            let tx = ch.clone();
            ctx.sim().schedule_in(Dur::from_millis(1), move |sim| {
                tx.offer(sim, 42).unwrap();
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
        // Receiver waits without holding the CPU; computer runs meanwhile.
        // The message arrives at 1 ms, but the CPU is busy until 2 ms, so
        // the receiver re-acquires only after the computer finishes... it
        // actually queues as runnable and runs after c-done.
        assert_eq!(*log.lock(), vec!["r-wait", "c-run", "c-done", "r-got"]);
    }

    #[test]
    fn external_block_reacquires_idle_cpu_immediately() {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            let ch: ncs_sim::SimChannel<u8> = ncs_sim::SimChannel::unbounded("net");
            let ch2 = ch.clone();
            mts.spawn("receiver", 0, move |m| {
                m.external_block(|| ch2.recv(m.ctx()).unwrap());
                assert_eq!(m.now(), SimTime::ZERO + Dur::from_millis(3));
            });
            let tx = ch.clone();
            ctx.sim().schedule_in(Dur::from_millis(3), move |sim| {
                tx.offer(sim, 1).unwrap();
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
    }

    #[test]
    fn stats_count_switches_and_idle() {
        let sim = Sim::new();
        let stats = Arc::new(Mutex::new(MtsStats::default()));
        let s2 = Arc::clone(&stats);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            mts.spawn("a", 1, |m| m.sleep(Dur::from_millis(4)));
            mts.start(ctx);
            *s2.lock() = mts.stats();
        });
        sim.run().assert_clean();
        let st = *stats.lock();
        assert!(st.switches >= 2, "switches {}", st.switches);
        // While 'a' slept there was nothing to run.
        assert_eq!(st.total_idle, Dur::from_millis(4));
    }

    #[test]
    fn threads_created_after_start_run() {
        let sim = Sim::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            let mts2 = mts.clone();
            let h2 = Arc::clone(&h);
            mts.spawn("parent", 1, move |m| {
                let h3 = Arc::clone(&h2);
                mts2.spawn("child", 1, move |_| {
                    h3.fetch_add(1, Ordering::SeqCst);
                });
                m.yield_now();
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn blocked_time_accounted() {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", zero_cs());
            let mts2 = mts.clone();
            let t = mts.spawn("b", 1, |m| m.block());
            mts.spawn("w", 1, move |m| {
                m.ctx().sleep(Dur::from_millis(7));
                m.unblock(t);
            });
            mts.start(ctx);
            assert_eq!(mts2.blocked_time(t), Dur::from_millis(7));
        });
        sim.run().assert_clean();
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    #[test]
    fn global_fifo_ignores_priorities() {
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let log_outer = Arc::clone(&log);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    context_switch: Dur::ZERO,
                    policy: SchedPolicy::GlobalFifo,
                    analysis: AnalysisConfig::default(),
                },
            );
            // Created in descending priority: FIFO must run creation order.
            for (i, prio) in [9usize, 0, 5].into_iter().enumerate() {
                let log = Arc::clone(&log);
                mts.spawn(format!("t{i}"), prio, move |_| {
                    log.lock().push(i);
                });
            }
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(*log_outer.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn multilevel_default_still_honors_priorities() {
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let log_outer = Arc::clone(&log);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(ctx.sim(), "p0", MtsConfig::default());
            for (i, prio) in [9usize, 0, 5].into_iter().enumerate() {
                let log = Arc::clone(&log);
                mts.spawn(format!("t{i}"), prio, move |_| {
                    log.lock().push(i);
                });
            }
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(*log_outer.lock(), vec![1, 2, 0]);
    }
}

#[cfg(test)]
mod join_tests {
    use super::*;

    #[test]
    fn join_waits_for_exit() {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    context_switch: Dur::ZERO,
                    ..MtsConfig::default()
                },
            );
            let mts2 = mts.clone();
            let worker = mts.spawn("worker", 1, |m| {
                m.sleep(Dur::from_millis(7));
            });
            mts.spawn("joiner", 1, move |m| {
                m.join(worker);
                assert_eq!(m.now(), SimTime::ZERO + Dur::from_millis(7));
                assert!(mts2.has_exited(worker));
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
    }

    #[test]
    fn join_on_exited_returns_immediately() {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    context_switch: Dur::ZERO,
                    ..MtsConfig::default()
                },
            );
            let quick = mts.spawn("quick", 0, |_| {});
            mts.spawn("late-joiner", 2, move |m| {
                m.sleep(Dur::from_millis(1));
                let t0 = m.now();
                m.join(quick);
                assert_eq!(m.now(), t0);
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
    }
}

#[cfg(test)]
mod external_tests {
    use super::*;

    #[test]
    fn two_threads_external_block_concurrently() {
        // Both the send and receive system threads of a real NCS process
        // can be in kernel-level waits at once; the CPU must flow to
        // whoever's wait completes first, then the other.
        let sim = Sim::new();
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        let o3 = Arc::clone(&order);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    context_switch: Dur::ZERO,
                    ..MtsConfig::default()
                },
            );
            let ch_a: ncs_sim::SimChannel<u8> = ncs_sim::SimChannel::unbounded("a");
            let ch_b: ncs_sim::SimChannel<u8> = ncs_sim::SimChannel::unbounded("b");
            let (ca, cb) = (ch_a.clone(), ch_b.clone());
            mts.spawn("waiter-a", 1, move |m| {
                m.external_block(|| ca.recv(m.ctx()).unwrap());
                o1.lock().push("a-woke");
            });
            mts.spawn("waiter-b", 1, move |m| {
                m.external_block(|| cb.recv(m.ctx()).unwrap());
                o2.lock().push("b-woke");
            });
            mts.spawn("worker", 2, move |m| {
                o3.lock().push("worker-ran");
                m.ctx().sleep(Dur::from_millis(1));
            });
            let (ta, tb) = (ch_a.clone(), ch_b.clone());
            ctx.sim().schedule_in(Dur::from_millis(5), move |sim| {
                tb.offer(sim, 1).unwrap(); // b's wait completes first
            });
            ctx.sim().schedule_in(Dur::from_millis(9), move |sim| {
                ta.offer(sim, 2).unwrap();
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(*order.lock(), vec!["worker-ran", "b-woke", "a-woke"]);
    }

    #[test]
    fn external_wake_queues_behind_higher_priority_runnable() {
        // A thread returning from a kernel wait does not preempt: it queues
        // and runs when the scheduler reaches it.
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    context_switch: Dur::ZERO,
                    ..MtsConfig::default()
                },
            );
            let ch: ncs_sim::SimChannel<u8> = ncs_sim::SimChannel::unbounded("c");
            let cr = ch.clone();
            mts.spawn("ext", 3, move |m| {
                m.external_block(|| cr.recv(m.ctx()).unwrap());
                l1.lock().push("ext-resumed");
            });
            mts.spawn("long-compute", 1, move |m| {
                // Runs 10 ms solid; the external wake at 2 ms must wait.
                m.ctx().sleep(Dur::from_millis(10));
                l2.lock().push("compute-done");
            });
            let tx = ch.clone();
            ctx.sim().schedule_in(Dur::from_millis(2), move |sim| {
                tx.offer(sim, 1).unwrap();
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(*log.lock(), vec!["compute-done", "ext-resumed"]);
    }
}

#[cfg(test)]
mod sleep_tests {
    use super::*;

    #[test]
    fn sleep_can_be_cut_short_by_unblock() {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    context_switch: Dur::ZERO,
                    ..MtsConfig::default()
                },
            );
            let sleeper = mts.spawn("sleeper", 1, |m| {
                m.sleep(Dur::from_secs(10)); // nominally very long
                assert_eq!(m.now(), SimTime::ZERO + Dur::from_millis(3), "woken early");
                // The stale timer at t=10s must not disturb later blocks.
                m.sleep(Dur::from_millis(2));
                assert_eq!(m.now(), SimTime::ZERO + Dur::from_millis(5));
            });
            mts.spawn("waker", 1, move |m| {
                m.sleep(Dur::from_millis(3));
                m.unblock(sleeper);
            });
            mts.start(ctx);
        });
        sim.run().assert_clean();
    }

    #[test]
    fn many_sleepers_wake_in_time_order() {
        let sim = Sim::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let order2 = Arc::clone(&order);
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                MtsConfig {
                    context_switch: Dur::ZERO,
                    ..MtsConfig::default()
                },
            );
            for i in 0..6u64 {
                let order = Arc::clone(&order2);
                mts.spawn(format!("s{i}"), 1, move |m| {
                    m.sleep(Dur::from_millis(10 - i)); // reverse durations
                    order.lock().push(i);
                });
            }
            mts.start(ctx);
        });
        sim.run().assert_clean();
        assert_eq!(*order.lock(), vec![5, 4, 3, 2, 1, 0]);
    }
}
