//! Synchronization objects for MTS threads.
//!
//! The paper lists synchronization (barrier, wait, signal) among the
//! NCS_MTS services added on top of QuickThreads. All three objects here
//! are built purely from `block`/`unblock`, so their cost model is exactly
//! the scheduler's context-switch accounting.
//!
//! These synchronize threads *within one process*. Cross-process
//! synchronization (the `NCS_barrier` of the paper's API) lives in
//! ncs-core, built on messages.

use ncs_sim::Sim;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::runtime::{Mts, MtsCtx, MtsTid};

/// A counting semaphore with FIFO handoff.
#[derive(Clone)]
pub struct MtsSemaphore {
    mts: Mts,
    inner: Arc<Mutex<SemInner>>,
}

struct SemInner {
    count: u64,
    waiters: VecDeque<MtsTid>,
}

impl MtsSemaphore {
    /// Creates a semaphore with `initial` units.
    pub fn new(mts: &Mts, initial: u64) -> MtsSemaphore {
        MtsSemaphore {
            mts: mts.clone(),
            inner: Arc::new(Mutex::new(SemInner {
                count: initial,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Acquires one unit (P), blocking the calling thread if none are
    /// available. Units released while waiters queue are handed directly
    /// to the longest waiter.
    pub fn acquire(&self, mctx: &MtsCtx) {
        {
            let mut s = self.inner.lock();
            if s.count > 0 {
                s.count -= 1;
                return;
            }
            s.waiters.push_back(mctx.tid());
        }
        mctx.block();
    }

    /// Tries to acquire without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut s = self.inner.lock();
        if s.count > 0 && s.waiters.is_empty() {
            s.count -= 1;
            true
        } else {
            false
        }
    }

    /// Releases one unit (V). Callable from threads or event callbacks.
    pub fn release(&self, sim: &Sim) {
        let next = {
            let mut s = self.inner.lock();
            match s.waiters.pop_front() {
                Some(w) => Some(w),
                None => {
                    s.count += 1;
                    None
                }
            }
        };
        if let Some(w) = next {
            self.mts.unblock(sim, w);
        }
    }

    /// Units currently available.
    pub fn available(&self) -> u64 {
        self.inner.lock().count
    }
}

/// A one-shot (per generation) event: threads wait until it is signaled.
#[derive(Clone)]
pub struct MtsEvent {
    mts: Mts,
    inner: Arc<Mutex<EventInner>>,
}

struct EventInner {
    set: bool,
    waiters: Vec<MtsTid>,
}

impl MtsEvent {
    /// Creates an unset event.
    pub fn new(mts: &Mts) -> MtsEvent {
        MtsEvent {
            mts: mts.clone(),
            inner: Arc::new(Mutex::new(EventInner {
                set: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Blocks until the event is signaled (returns immediately if it
    /// already is).
    pub fn wait(&self, mctx: &MtsCtx) {
        {
            let mut e = self.inner.lock();
            if e.set {
                return;
            }
            e.waiters.push(mctx.tid());
        }
        mctx.block();
    }

    /// Signals the event, waking every waiter. Callable from callbacks.
    pub fn signal(&self, sim: &Sim) {
        let waiters = {
            let mut e = self.inner.lock();
            e.set = true;
            std::mem::take(&mut e.waiters)
        };
        for w in waiters {
            self.mts.unblock(sim, w);
        }
    }

    /// Clears the event for reuse.
    pub fn reset(&self) {
        self.inner.lock().set = false;
    }

    /// Whether the event is currently signaled.
    pub fn is_set(&self) -> bool {
        self.inner.lock().set
    }
}

/// A cyclic barrier for `parties` MTS threads.
#[derive(Clone)]
pub struct MtsBarrier {
    mts: Mts,
    inner: Arc<Mutex<BarrierInner>>,
}

struct BarrierInner {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<MtsTid>,
}

impl MtsBarrier {
    /// Creates a barrier for `parties` threads (must be ≥ 1).
    pub fn new(mts: &Mts, parties: usize) -> MtsBarrier {
        assert!(parties >= 1);
        MtsBarrier {
            mts: mts.clone(),
            inner: Arc::new(Mutex::new(BarrierInner {
                parties,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Waits until all parties arrive. Returns `true` for the last arriver
    /// (the "leader") of each generation.
    pub fn wait(&self, mctx: &MtsCtx) -> bool {
        let leader = {
            let mut b = self.inner.lock();
            b.arrived += 1;
            if b.arrived == b.parties {
                b.arrived = 0;
                b.generation += 1;
                let waiters = std::mem::take(&mut b.waiters);
                drop(b);
                for w in waiters {
                    self.mts.unblock(mctx.ctx().sim(), w);
                }
                true
            } else {
                b.waiters.push(mctx.tid());
                false
            }
        };
        if !leader {
            mctx.block();
        }
        leader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_sim::{Dur, SimTime};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn with_mts(f: impl FnOnce(&ncs_sim::Ctx, Mts) + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let mts = Mts::new(
                ctx.sim(),
                "p0",
                crate::runtime::MtsConfig {
                    context_switch: Dur::ZERO,
                    ..Default::default()
                },
            );
            f(ctx, mts);
        });
        sim.run().assert_clean();
    }

    #[test]
    fn semaphore_limits_concurrency() {
        with_mts(|ctx, mts| {
            let sem = MtsSemaphore::new(&mts, 2);
            let active = Arc::new(AtomicUsize::new(0));
            let peak = Arc::new(AtomicUsize::new(0));
            for i in 0..6 {
                let sem = sem.clone();
                let active = Arc::clone(&active);
                let peak = Arc::clone(&peak);
                mts.spawn(format!("t{i}"), 1, move |m| {
                    sem.acquire(m);
                    let a = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(a, Ordering::SeqCst);
                    m.sleep(Dur::from_micros(10));
                    active.fetch_sub(1, Ordering::SeqCst);
                    sem.release(m.ctx().sim());
                });
            }
            mts.start(ctx);
            assert_eq!(peak.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn semaphore_fifo_handoff() {
        with_mts(|ctx, mts| {
            let sem = MtsSemaphore::new(&mts, 1);
            let order = Arc::new(Mutex::new(Vec::new()));
            for i in 0..4u32 {
                let sem = sem.clone();
                let order = Arc::clone(&order);
                mts.spawn(format!("t{i}"), 1, move |m| {
                    sem.acquire(m);
                    order.lock().push(i);
                    m.sleep(Dur::from_micros(5));
                    sem.release(m.ctx().sim());
                });
            }
            mts.start(ctx);
            assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn try_acquire_respects_waiters() {
        with_mts(|ctx, mts| {
            let sem = MtsSemaphore::new(&mts, 1);
            assert!(sem.try_acquire());
            assert!(!sem.try_acquire());
            let sem2 = sem.clone();
            mts.spawn("releaser", 1, move |m| {
                sem2.release(m.ctx().sim());
                assert_eq!(sem2.available(), 1);
                assert!(sem2.try_acquire());
                sem2.release(m.ctx().sim());
            });
            mts.start(ctx);
        });
    }

    #[test]
    fn event_wakes_all_waiters() {
        with_mts(|ctx, mts| {
            let ev = MtsEvent::new(&mts);
            let woken = Arc::new(AtomicUsize::new(0));
            for i in 0..3 {
                let ev = ev.clone();
                let woken = Arc::clone(&woken);
                mts.spawn(format!("w{i}"), 1, move |m| {
                    ev.wait(m);
                    woken.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(m.now(), SimTime::ZERO + Dur::from_micros(50));
                });
            }
            let ev2 = ev.clone();
            mts.spawn("signaler", 2, move |m| {
                m.sleep(Dur::from_micros(50));
                ev2.signal(m.ctx().sim());
            });
            mts.start(ctx);
            assert_eq!(woken.load(Ordering::SeqCst), 3);
            assert!(ev.is_set());
        });
    }

    #[test]
    fn event_wait_after_signal_is_immediate() {
        with_mts(|ctx, mts| {
            let ev = MtsEvent::new(&mts);
            let ev2 = ev.clone();
            mts.spawn("signaler", 0, move |m| {
                ev2.signal(m.ctx().sim());
            });
            let ev3 = ev.clone();
            mts.spawn("waiter", 1, move |m| {
                let t0 = m.now();
                ev3.wait(m);
                assert_eq!(m.now(), t0);
            });
            mts.start(ctx);
        });
    }

    #[test]
    fn barrier_synchronizes_and_reuses() {
        with_mts(|ctx, mts| {
            let bar = MtsBarrier::new(&mts, 3);
            let leaders = Arc::new(AtomicUsize::new(0));
            for i in 0..3u64 {
                let bar = bar.clone();
                let leaders = Arc::clone(&leaders);
                mts.spawn(format!("t{i}"), 1, move |m| {
                    for round in 0..2u64 {
                        m.sleep(Dur::from_micros((i + 1) * 10 * (round + 1)));
                        if bar.wait(m) {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                        // After the barrier, the slowest arrival gates all.
                        let expect = Dur::from_micros(30 * (round + 1))
                            + if round == 0 {
                                Dur::ZERO
                            } else {
                                Dur::from_micros(30)
                            };
                        assert_eq!(m.now(), SimTime::ZERO + expect, "round {round}");
                    }
                });
            }
            mts.start(ctx);
            assert_eq!(leaders.load(Ordering::SeqCst), 2, "one leader per round");
        });
    }
}
