//! Intrusive doubly-linked thread queues (the paper's Figure 9).
//!
//! NCS_MTS keeps its runnable threads in a multilevel priority queue —
//! one circular doubly-linked list per priority — and its blocked threads
//! in a doubly-linked *blocked queue* "to speed up search during
//! unblocking". We reproduce the structure: every thread owns one pair of
//! `prev`/`next` links in a shared [`LinkArena`], and each queue is a
//! [`ListHead`] threading through them. All operations are O(1), including
//! removing a thread from the middle of the blocked queue.
//!
//! A thread can be on at most one list at a time (its scheduling states are
//! mutually exclusive), which is what makes the intrusive sharing sound;
//! the arena enforces it with debug assertions.

/// Index of a thread's link node (the MTS thread id).
pub type Slot = u32;

#[derive(Clone, Copy, Debug, Default)]
struct Links {
    prev: Option<Slot>,
    next: Option<Slot>,
    on_list: bool,
}

/// Shared storage of per-thread links.
#[derive(Default, Debug)]
pub struct LinkArena {
    links: Vec<Links>,
}

impl LinkArena {
    /// Creates an empty arena.
    pub fn new() -> LinkArena {
        LinkArena::default()
    }

    /// Registers one more thread; returns its slot.
    pub fn add_slot(&mut self) -> Slot {
        self.links.push(Links::default());
        (self.links.len() - 1) as Slot
    }

    /// Number of registered slots.
    pub fn slots(&self) -> usize {
        self.links.len()
    }

    /// Whether `s` is currently on some list.
    pub fn on_list(&self, s: Slot) -> bool {
        self.links[s as usize].on_list
    }

    /// The raw `(prev, next)` links of `s` (queue-invariant validation).
    pub fn prev_next(&self, s: Slot) -> (Option<Slot>, Option<Slot>) {
        let l = &self.links[s as usize];
        (l.prev, l.next)
    }
}

/// Head/tail of one doubly-linked queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct ListHead {
    head: Option<Slot>,
    tail: Option<Slot>,
    len: usize,
}

impl ListHead {
    /// An empty list.
    pub fn new() -> ListHead {
        ListHead::default()
    }

    /// Number of queued slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The front slot, if any.
    pub fn front(&self) -> Option<Slot> {
        self.head
    }

    /// Appends `s` at the tail. Panics (debug) if `s` is already queued.
    pub fn push_back(&mut self, arena: &mut LinkArena, s: Slot) {
        let l = &mut arena.links[s as usize];
        debug_assert!(!l.on_list, "slot {s} already on a list");
        l.on_list = true;
        l.prev = self.tail;
        l.next = None;
        match self.tail {
            Some(t) => arena.links[t as usize].next = Some(s),
            None => self.head = Some(s),
        }
        self.tail = Some(s);
        self.len += 1;
    }

    /// Removes and returns the front slot.
    pub fn pop_front(&mut self, arena: &mut LinkArena) -> Option<Slot> {
        let s = self.head?;
        self.unlink(arena, s);
        Some(s)
    }

    /// Removes `s` from anywhere in the list (the blocked-queue unblock
    /// path). Panics (debug) if `s` is not queued.
    pub fn unlink(&mut self, arena: &mut LinkArena, s: Slot) {
        let (prev, next) = {
            let l = &mut arena.links[s as usize];
            debug_assert!(l.on_list, "slot {s} not on this list");
            l.on_list = false;
            let pn = (l.prev, l.next);
            l.prev = None;
            l.next = None;
            pn
        };
        match prev {
            Some(p) => arena.links[p as usize].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => arena.links[n as usize].prev = prev,
            None => self.tail = prev,
        }
        self.len -= 1;
    }

    /// Walks the whole list checking the structural invariants that the
    /// debug assertions only probe pointwise: every linked slot is marked
    /// on a list, back-links mirror forward links (what makes O(1)
    /// [`ListHead::unlink`] sound), the walk terminates within the arena
    /// size (no circularity), and the cached length is accurate.
    ///
    /// Returns the slots front-to-back on success, or a description of the
    /// first corruption found. This is the promoted, always-available form
    /// of the queue invariants; the runtime analysis pass runs it after
    /// scheduling operations when enabled.
    pub fn validate(&self, arena: &LinkArena) -> Result<Vec<Slot>, String> {
        let cap = arena.slots();
        let mut seen: Vec<Slot> = Vec::new();
        let mut prev: Option<Slot> = None;
        let mut cur = self.head;
        while let Some(s) = cur {
            if seen.len() >= cap {
                return Err(format!(
                    "list is circular: walked {} slots in an arena of {cap}",
                    seen.len() + 1
                ));
            }
            if (s as usize) >= cap {
                return Err(format!("slot {s} is outside the arena of {cap}"));
            }
            if !arena.on_list(s) {
                return Err(format!("slot {s} is linked but not marked on a list"));
            }
            let (p, n) = arena.prev_next(s);
            if p != prev {
                return Err(format!(
                    "slot {s} back-link {p:?} does not match predecessor {prev:?}"
                ));
            }
            seen.push(s);
            prev = Some(s);
            cur = n;
        }
        if self.tail != prev {
            return Err(format!(
                "tail {:?} does not match last walked slot {prev:?}",
                self.tail
            ));
        }
        if self.len != seen.len() {
            return Err(format!(
                "cached length {} does not match walked length {}",
                self.len,
                seen.len()
            ));
        }
        Ok(seen)
    }

    /// Iterates front-to-back (diagnostics and tests).
    pub fn iter<'a>(&self, arena: &'a LinkArena) -> ListIter<'a> {
        ListIter {
            arena,
            cur: self.head,
        }
    }
}

/// Iterator over a list's slots.
pub struct ListIter<'a> {
    arena: &'a LinkArena,
    cur: Option<Slot>,
}

impl Iterator for ListIter<'_> {
    type Item = Slot;

    fn next(&mut self) -> Option<Slot> {
        let s = self.cur?;
        self.cur = self.arena.links[s as usize].next;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(l: &ListHead, a: &LinkArena) -> Vec<Slot> {
        l.iter(a).collect()
    }

    #[test]
    fn push_pop_fifo() {
        let mut a = LinkArena::new();
        let s: Vec<Slot> = (0..5).map(|_| a.add_slot()).collect();
        let mut l = ListHead::new();
        for &x in &s {
            l.push_back(&mut a, x);
        }
        assert_eq!(collect(&l, &a), s);
        for &x in &s {
            assert_eq!(l.pop_front(&mut a), Some(x));
        }
        assert!(l.is_empty());
        assert_eq!(l.pop_front(&mut a), None);
    }

    #[test]
    fn unlink_middle() {
        let mut a = LinkArena::new();
        let s: Vec<Slot> = (0..5).map(|_| a.add_slot()).collect();
        let mut l = ListHead::new();
        for &x in &s {
            l.push_back(&mut a, x);
        }
        l.unlink(&mut a, s[2]);
        assert_eq!(collect(&l, &a), vec![s[0], s[1], s[3], s[4]]);
        l.unlink(&mut a, s[0]);
        l.unlink(&mut a, s[4]);
        assert_eq!(collect(&l, &a), vec![s[1], s[3]]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn slot_reusable_across_lists() {
        let mut a = LinkArena::new();
        let s = a.add_slot();
        let mut run = ListHead::new();
        let mut blocked = ListHead::new();
        run.push_back(&mut a, s);
        assert!(a.on_list(s));
        run.unlink(&mut a, s);
        assert!(!a.on_list(s));
        blocked.push_back(&mut a, s);
        assert_eq!(collect(&blocked, &a), vec![s]);
        assert!(run.is_empty());
    }

    #[test]
    fn round_robin_rotation() {
        // pop front, push back: the paper's within-priority round robin.
        let mut a = LinkArena::new();
        let s: Vec<Slot> = (0..3).map(|_| a.add_slot()).collect();
        let mut l = ListHead::new();
        for &x in &s {
            l.push_back(&mut a, x);
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let x = l.pop_front(&mut a).unwrap();
            order.push(x);
            l.push_back(&mut a, x);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn validate_accepts_well_formed_lists() {
        let mut a = LinkArena::new();
        let s: Vec<Slot> = (0..5).map(|_| a.add_slot()).collect();
        let mut l = ListHead::new();
        assert_eq!(l.validate(&a).unwrap(), Vec::<Slot>::new());
        for &x in &s {
            l.push_back(&mut a, x);
        }
        assert_eq!(l.validate(&a).unwrap(), s);
        l.unlink(&mut a, s[2]);
        assert_eq!(l.validate(&a).unwrap(), vec![s[0], s[1], s[3], s[4]]);
    }

    #[test]
    fn validate_reports_corruption() {
        // The test module sees private fields, so it can corrupt a list in
        // ways safe callers cannot — exactly what validate() must catch.
        let mut a = LinkArena::new();
        let s: Vec<Slot> = (0..3).map(|_| a.add_slot()).collect();
        let mut l = ListHead::new();
        for &x in &s {
            l.push_back(&mut a, x);
        }
        // Cached length drifts.
        let mut bad = l;
        bad.len = 5;
        assert!(bad.validate(&a).unwrap_err().contains("length"));
        // Back-link broken (O(1) unlink would corrupt the queue).
        let mut a2 = LinkArena::new();
        for _ in 0..3 {
            a2.add_slot();
        }
        let mut l2 = ListHead::new();
        for &x in &s {
            l2.push_back(&mut a2, x);
        }
        a2.links[2].prev = Some(0);
        assert!(l2.validate(&a2).unwrap_err().contains("back-link"));
        // Circular list terminates with an error instead of hanging.
        let mut a3 = LinkArena::new();
        for _ in 0..2 {
            a3.add_slot();
        }
        let mut l3 = ListHead::new();
        l3.push_back(&mut a3, 0);
        l3.push_back(&mut a3, 1);
        a3.links[1].next = Some(0);
        assert!(l3.validate(&a3).unwrap_err().contains("circular"));
        // Linked slot not marked on a list.
        let mut a4 = LinkArena::new();
        for _ in 0..2 {
            a4.add_slot();
        }
        let mut l4 = ListHead::new();
        l4.push_back(&mut a4, 0);
        l4.push_back(&mut a4, 1);
        a4.links[1].on_list = false;
        assert!(l4.validate(&a4).unwrap_err().contains("not marked"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "already on a list")]
    fn double_insert_caught() {
        let mut a = LinkArena::new();
        let s = a.add_slot();
        let mut l = ListHead::new();
        l.push_back(&mut a, s);
        l.push_back(&mut a, s);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[derive(Clone, Debug)]
    enum Op {
        PushBack(u8),
        PopFront,
        Unlink(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..16).prop_map(Op::PushBack),
            Just(Op::PopFront),
            (0u8..16).prop_map(Op::Unlink),
        ]
    }

    proptest! {
        /// The intrusive list behaves exactly like a VecDeque model under
        /// arbitrary push/pop/unlink sequences.
        #[test]
        fn matches_vecdeque_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
            let mut arena = LinkArena::new();
            for _ in 0..16 { arena.add_slot(); }
            let mut list = ListHead::new();
            let mut model: VecDeque<Slot> = VecDeque::new();
            for op in ops {
                match op {
                    Op::PushBack(s) => {
                        let s = Slot::from(s);
                        if !model.contains(&s) {
                            list.push_back(&mut arena, s);
                            model.push_back(s);
                        }
                    }
                    Op::PopFront => {
                        prop_assert_eq!(list.pop_front(&mut arena), model.pop_front());
                    }
                    Op::Unlink(s) => {
                        let s = Slot::from(s);
                        if let Some(pos) = model.iter().position(|&x| x == s) {
                            list.unlink(&mut arena, s);
                            model.remove(pos);
                        }
                    }
                }
                prop_assert_eq!(list.len(), model.len());
                let got: Vec<Slot> = list.iter(&arena).collect();
                let want: Vec<Slot> = model.iter().copied().collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
