//! Fault-recovery scenes for the WAN-scale chaos work: crash-stop in the
//! middle of a chunked transfer, partition fail-fast with post-flap
//! recovery, and a link flap cutting a cell train on the HSM stack. Each
//! scene checks the *graceful* part of degradation — typed exceptions and
//! reclaimed buffers instead of hangs, leaks, or spurious dead peers.

use bytes::Bytes;
use ncs_core::{
    ErrorControl, NcsConfig, NcsWorld, RtoConfig, ThreadAddr, EXC_DELIVERY_FAILED,
};
use ncs_net::atm::{AtmLanFabric, AtmLanParams};
use ncs_net::{
    AtmApiNet, AtmApiParams, ChaosNet, ChaosParams, ChaosTopology, HostParams, IdealFabric,
    Network, NodeId, SwitchedFabric, TcpNet, TcpParams,
};
use ncs_sim::{Dur, Sim, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

fn fast_net(n: usize, latency: Dur) -> Arc<dyn Network> {
    let fabric = Arc::new(IdealFabric::new(n, latency));
    let hosts = (0..n).map(|_| HostParams::test_fast()).collect();
    Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
}

#[test]
fn crash_stop_mid_reassembly_reclaims_and_fails_cleanly() {
    // The receiver crash-stops after the first chunks of a fragmented
    // transfer have landed. The sender must burn its budget and raise
    // EXC_DELIVERY_FAILED (its send thread was parked on I/O buffers for
    // the dead peer — the purge has to unwedge it); the receiver's partial
    // reassembly buffer must be reclaimed by the timeout reaper, not leak.
    let sim = Sim::new();
    let base = fast_net(2, Dur::from_millis(3));
    let chaos = ChaosNet::new(base, ChaosParams::clean(42));
    chaos.crash_at(NodeId(1), SimTime::from_ps(4_000_000_000)); // t = 4 ms
    let net: Arc<dyn Network> = Arc::clone(&chaos) as Arc<dyn Network>;
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: RtoConfig::from_base(Dur::from_millis(5)),
        max_retries: 3,
        io_buffer_bytes: 1024,
        reassembly_timeout: Some(Dur::from_millis(50)),
        poll_cost: Dur::from_nanos(100),
        ..NcsConfig::default()
    };
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                // 8 KB over 1 KB I/O buffers: an 8-chunk train.
                ncs.send(ThreadAddr::new(1, 0), 9, Bytes::from(vec![0x5A; 8 * 1024]));
            });
        }
        // Process 1 posts no receive; the crash eats the rest of the train.
    });
    let out = sim.run();
    assert!(out.panics.is_empty(), "{:?}", out.panics);
    let sender = &world.procs()[0];
    let receiver = &world.procs()[1];
    assert!(
        sender.is_peer_dead(1),
        "retry exhaustion against the crashed node must mark it dead"
    );
    let exceptions = sender.pending_exceptions();
    assert!(
        !exceptions.is_empty() && exceptions.iter().all(|e| e.code == EXC_DELIVERY_FAILED),
        "sender must fail with typed exceptions, not hang: {exceptions:?}"
    );
    let rstats = receiver.error_stats();
    assert!(
        rstats.reassembly_reclaimed >= 1,
        "partial reassembly must be reclaimed by the reaper: {rstats:?}"
    );
    assert_eq!(
        receiver.reassembly_backlog(),
        0,
        "no half-assembled transfer may leak past reclamation"
    );
    assert!(
        chaos.stats().snapshot().crash_drops > 0,
        "the crash must have eaten part of the train"
    );
    sim.finish();
}

#[test]
fn partition_failfast_then_recovery_after_flap() {
    // A link outage long enough to trip the partition detector: the
    // in-flight message fails fast with a typed exception (no dead-peer
    // mark, no full retry burn), and the first send after the link comes
    // back is delivered — the partition mark must drop on recovery.
    let sim = Sim::new();
    let (fabric, net) = ChaosTopology::Lan.build_chaos(2, 0, None);
    // Host 1 loses its access link from 5 ms to 300 ms.
    fabric
        .downlink_of(NodeId(1))
        .schedule_flap(SimTime::from_ps(5_000_000_000), SimTime::from_ps(300_000_000_000));
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: RtoConfig::from_base(Dur::from_millis(2)),
        max_retries: 8,
        poll_cost: Dur::from_micros(1),
        ..NcsConfig::default()
    };
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = Arc::clone(&got);
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
        let g = Arc::clone(&g2);
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                // Into the outage window: lost on the wire, and the
                // loss-recovery timer finds the whole route down.
                ncs.ctx().sleep(Dur::from_millis(10));
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"into the outage"));
                // Well past the window: recovery must be possible.
                ncs.ctx().sleep(Dur::from_millis(500));
                ncs.send(ThreadAddr::new(1, 0), 2, Bytes::from_static(b"after the outage"));
            });
        } else {
            proc_.t_create("receiver", 5, move |ncs| {
                let m = ncs.recv(Some(0), None, Some(2));
                g.lock().push(m.tag);
            });
        }
    });
    let out = sim.run();
    assert!(out.panics.is_empty(), "{:?}", out.panics);
    let sender = &world.procs()[0];
    let stats = sender.error_stats();
    assert!(
        stats.partition_failfasts >= 1,
        "the detector must have fired during the outage: {stats:?}"
    );
    assert!(
        !sender.is_peer_dead(1),
        "a partition is not a death sentence: fresh sends must stay possible"
    );
    assert!(
        !sender.is_peer_partitioned(1),
        "the partition mark must drop once a fresh send finds the route up"
    );
    let exceptions = sender.pending_exceptions();
    assert!(
        exceptions.iter().all(|e| e.code == EXC_DELIVERY_FAILED),
        "{exceptions:?}"
    );
    assert_eq!(
        *got.lock(),
        vec![2],
        "the post-outage message must be delivered"
    );
    assert!(
        fabric.flap_loss_count() > 0,
        "the outage window never ate a transmission"
    );
    sim.finish();
}

#[test]
fn link_flap_during_train_recovers_bit_exact() {
    // HSM stack (NCS ATM API), chunked transfer: a short flap window cuts
    // the cell train mid-flight. Error control must retransmit the missing
    // chunks after the link returns and the application must see the full
    // payload bit-exact — with zero delivery failures and no dead peer.
    let sim = Sim::new();
    let fabric = Arc::new(AtmLanFabric::new(AtmLanParams::fore_lan(2)));
    // Cut host 1's receive path for 10 ms in the middle of the train.
    fabric
        .downlink_of(NodeId(1))
        .schedule_flap(SimTime::from_ps(5_000_000_000), SimTime::from_ps(15_000_000_000));
    let hosts = vec![HostParams::sparc_ipx(); 2];
    let net: Arc<dyn Network> = Arc::new(AtmApiNet::new(
        Arc::clone(&fabric),
        hosts,
        AtmApiParams::default(),
    ));
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: RtoConfig::from_base(Dur::from_millis(5)),
        max_retries: 16,
        io_buffer_bytes: 4096,
        poll_cost: Dur::from_micros(1),
        ..NcsConfig::default()
    };
    const BYTES: usize = 64 * 1024; // 16-chunk train over 4 KB buffers
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
        let ok = Arc::clone(&ok2);
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                let payload: Vec<u8> = (0..BYTES).map(|j| (j % 251) as u8).collect();
                ncs.send(ThreadAddr::new(1, 0), 7, Bytes::from(payload));
            } else {
                let m = ncs.recv(Some(0), None, Some(7));
                assert_eq!(m.data.len(), BYTES);
                assert!(
                    m.data.iter().enumerate().all(|(j, &b)| b == (j % 251) as u8),
                    "payload corrupted across the flap"
                );
                *ok.lock() = true;
            }
        });
    });
    sim.run().assert_clean();
    assert!(*ok.lock(), "transfer never completed");
    let stats = world.procs()[0].error_stats();
    assert!(
        stats.retransmits > 0,
        "the flap must have forced retransmission: {stats:?}"
    );
    assert_eq!(stats.delivery_failures, 0, "{stats:?}");
    assert!(stats.dead_peers.is_empty(), "{stats:?}");
    assert!(
        fabric.flap_losses() > 0,
        "the flap window never ate a cell train"
    );
}
