//! Property test of the pipelined (Approach-2) data path: for arbitrary
//! payload sizes up to 200 KiB — far past the old 64 KiB AAL5 panic — a
//! chunked transfer through the I/O-buffer pool delivers bytes identical
//! to a monolithic one.

use bytes::Bytes;
use ncs_core::{ErrorControl, FlowControl, NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::{HostParams, IdealFabric, Network, TcpNet, TcpParams};
use ncs_sim::{Dur, Sim, SimRng};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// Sends `payload` from proc 0 to proc 1 with the given I/O-buffer
/// geometry; returns the bytes the receiving thread saw.
fn transfer(payload: &[u8], io_buffers: u32, io_buffer_bytes: usize) -> Vec<u8> {
    let sim = Sim::new();
    let fabric = Arc::new(IdealFabric::new(2, Dur::from_micros(10)));
    let hosts = vec![HostParams::test_fast(); 2];
    let net: Arc<dyn Network> = Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()));
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        error: ErrorControl::ChecksumRetransmit,
        io_buffers,
        io_buffer_bytes,
        poll_cost: Dur::from_nanos(100),
        ..NcsConfig::default()
    };
    let sent = Bytes::from(payload.to_vec());
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
        let sent = sent.clone();
        let got = Arc::clone(&got2);
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                ncs.send(ThreadAddr::new(1, 0), 1, sent.clone());
            } else {
                let m = ncs.recv(Some(0), None, Some(1));
                *got.lock() = m.data.to_vec();
            }
        });
    });
    sim.run().assert_clean();
    let out = got.lock().clone();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chunked_matches_monolithic(
        len in 0usize..=200_000,
        seed in 0u64..1000,
        buffers in 1u32..=8,
    ) {
        let mut rng = SimRng::new(seed);
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let chunked = transfer(&payload, buffers, 16 * 1024);
        prop_assert_eq!(&chunked[..], &payload[..], "chunked transfer mangled bytes");
        let monolithic = transfer(&payload, buffers, usize::MAX);
        prop_assert_eq!(&monolithic[..], &chunked[..], "paths disagree");
    }
}
