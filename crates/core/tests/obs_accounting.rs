//! Latency-decomposition accounting: every tracked data message's causal
//! timeline must be well-ordered against the canonical stage walk, and its
//! per-stage components must sum *exactly* to the observed end-to-end
//! latency — on both the monolithic and the chunked (pipelined,
//! multiple-I/O-buffer) data paths.

use bytes::Bytes;
use ncs_core::{FlowControl, NcsConfig, NcsWorld, ThreadAddr, CAUSAL_STAGES};
use ncs_net::{HostParams, IdealFabric, Network, TcpNet, TcpParams};
use ncs_sim::{Dur, Sim, SimTime};
use std::sync::Arc;

fn net(nodes: usize) -> Arc<dyn Network> {
    let fabric = Arc::new(IdealFabric::new(nodes, Dur::from_micros(20)));
    let hosts = vec![HostParams::test_fast(); nodes];
    Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
}

/// Runs a ping-pong of `msgs` messages of `bytes` each and returns the sim
/// for timeline inspection.
fn run_transfer(bytes: usize, msgs: usize, io_buffer_bytes: usize) -> Sim {
    let sim = Sim::new();
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        io_buffer_bytes,
        ..NcsConfig::default()
    };
    let payload = Bytes::from(vec![0xA5u8; bytes]);
    NcsWorld::launch(&sim, vec![net(2)], 2, cfg, move |id, proc_| {
        let payload = payload.clone();
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for k in 0..msgs {
                    ncs.send(ThreadAddr::new(1, 0), k as u32, payload.clone());
                    ncs.recv(Some(1), None, Some(k as u32));
                }
            } else {
                for k in 0..msgs {
                    let m = ncs.recv(Some(0), None, Some(k as u32));
                    assert_eq!(m.data.len(), payload.len());
                    assert_ne!(m.causal(), 0, "remote data must be tracked");
                    ncs.send(ThreadAddr::new(0, 0), k as u32, Bytes::from(vec![1u8]));
                }
            }
        });
    });
    sim.run().assert_clean();
    sim
}

/// The accounting checks shared by both paths. Returns the number of
/// delivered (complete) timelines and how many visited `reassembled`.
fn check_books(sim: &Sim, ctx: &str) -> (usize, usize) {
    sim.with_metrics(|m| {
        let errs = m.validate_timelines(&CAUSAL_STAGES);
        assert!(errs.is_empty(), "{ctx}: disordered timelines: {errs:?}");
        let mut delivered = 0;
        let mut reassembled = 0;
        for (causal, tl) in m.timelines() {
            assert!(!tl.is_empty(), "{ctx}: empty timeline {causal}");
            if tl.last().expect("non-empty").0 != "delivered" {
                continue;
            }
            delivered += 1;
            if tl.iter().any(|&(s, _)| s == "reassembled") {
                reassembled += 1;
            }
            // A delivered message must have walked the full wire path.
            for stage in ["enqueued", "sq_popped", "wire_start", "arrived", "picked"] {
                assert!(
                    tl.iter().any(|&(s, _)| s == stage),
                    "{ctx}: causal {causal} missing stage {stage}: {tl:?}"
                );
            }
            // Exact accounting: consecutive stage diffs telescope to the
            // end-to-end latency, with no gaps and no double counting.
            let first = tl.first().expect("non-empty").1;
            let last = tl.last().expect("non-empty").1;
            let mut sum = Dur::ZERO;
            let mut prev: Option<SimTime> = None;
            for &(_, t) in tl.iter() {
                if let Some(p) = prev {
                    sum += t.since(p); // panics if time runs backwards
                }
                prev = Some(t);
            }
            assert_eq!(
                sum,
                last.since(first),
                "{ctx}: causal {causal}: components must sum exactly to end-to-end"
            );
        }
        (delivered, reassembled)
    })
}

#[test]
fn monolithic_path_components_sum_to_e2e() {
    // 2 KiB < the 16 KiB I/O buffer: single-frame sends, no reassembly.
    let sim = run_transfer(2048, 4, 16 * 1024);
    let (delivered, reassembled) = check_books(&sim, "monolithic");
    // 4 pings + 4 pongs, all tracked.
    assert_eq!(delivered, 8, "all remote data messages must complete");
    assert_eq!(reassembled, 0, "no message should visit reassembly");
}

#[test]
fn chunked_path_components_sum_to_e2e() {
    // 8 KiB over 1 KiB I/O buffers: the pipelined Frag path, one shared
    // causal id per logical message, `reassembled` stamped on completion.
    let sim = run_transfer(8 * 1024, 3, 1024);
    let (delivered, reassembled) = check_books(&sim, "chunked");
    assert_eq!(delivered, 6, "all remote data messages must complete");
    assert_eq!(reassembled, 3, "each chunked ping must visit reassembly");
}

#[test]
fn local_delivery_is_untracked() {
    let sim = Sim::new();
    NcsWorld::launch(
        &sim,
        vec![net(2)],
        1,
        NcsConfig::default(),
        move |_, proc_| {
            proc_.t_create("tx", 5, move |ncs| {
                ncs.send(ThreadAddr::new(0, 1), 9, Bytes::from(vec![7u8; 64]));
            });
            proc_.t_create("rx", 5, move |ncs| {
                let m = ncs.recv(None, None, Some(9));
                assert_eq!(m.causal(), 0, "local delivery never hits the wire");
            });
        },
    );
    sim.run().assert_clean();
    let timelines = sim.with_metrics(|m| m.timelines().count());
    assert_eq!(timelines, 0, "no causal ids allocated for local traffic");
}

#[test]
fn component_histograms_are_fed() {
    let sim = run_transfer(2048, 4, 16 * 1024);
    sim.with_metrics(|m| {
        for name in ["obs.queue_wait", "obs.wire", "obs.pickup", "obs.deliver", "obs.e2e"] {
            let st = m.stat(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(st.summary().count(), 8, "{name}: one sample per message");
        }
        // Totals cross-check: components cover e2e exactly.
        let comp_total: Dur = [
            "obs.queue_wait",
            "obs.inject",
            "obs.wire",
            "obs.pickup",
            "obs.reassembly",
            "obs.deliver",
        ]
        .iter()
        .filter_map(|n| m.stat(n))
        .fold(Dur::ZERO, |acc, st| acc + st.summary().total());
        let e2e = m.stat("obs.e2e").expect("e2e").summary().total();
        assert_eq!(comp_total, e2e);
    });
}
