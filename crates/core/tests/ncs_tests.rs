//! End-to-end tests of the NCS environment: the paper's API and, most
//! importantly, its core claim — that NCS_recv blocks only the calling
//! thread, so computation overlaps communication.

use bytes::Bytes;
use ncs_core::faulty::FaultyNet;
use ncs_core::filters::{MpiFilter, P4Filter, PvmFilter};
use ncs_core::group::{all_to_all, gather, reduce_f64, scatter, ReduceOp};
use ncs_core::{ErrorControl, FlowControl, NcsConfig, NcsWorld, ThreadAddr};
use ncs_net::{HostParams, IdealFabric, Network, TcpNet, TcpParams, Testbed};
use ncs_sim::{Dur, Sim, SimTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fast_net(n: usize, latency: Dur) -> Arc<dyn Network> {
    let fabric = Arc::new(IdealFabric::new(n, latency));
    let hosts = (0..n).map(|_| HostParams::test_fast()).collect();
    Arc::new(TcpNet::new(fabric, hosts, TcpParams::ip_over_atm()))
}

fn quick_cfg() -> NcsConfig {
    NcsConfig {
        poll_cost: Dur::from_nanos(100),
        ..NcsConfig::default()
    }
}

#[test]
fn ping_pong_between_threads() {
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(20));
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |id, proc_| {
        proc_.t_create("worker", 5, move |ncs| {
            if ncs.proc().id() == 0 {
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"ping"));
                let m = ncs.recv(Some(1), None, Some(2));
                assert_eq!(&m.data[..], b"pong");
            } else {
                let m = ncs.recv(Some(0), None, Some(1));
                assert_eq!(&m.data[..], b"ping");
                ncs.send(m.from, 2, Bytes::from_static(b"pong"));
            }
        });
        let _ = id;
    });
    sim.run().assert_clean();
}

#[test]
fn recv_blocks_only_calling_thread() {
    // The paper's core claim. Process 1 has two threads: one waits for a
    // message that arrives late, the other computes. With NCS the compute
    // thread finishes on schedule; the process CPU never idles while
    // useful work exists.
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    let compute_done_at = Arc::new(Mutex::new(SimTime::ZERO));
    let cd = Arc::clone(&compute_done_at);
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), move |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                // Send only after 50 ms of "thinking".
                ncs.ctx().sleep(Dur::from_millis(50));
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"late"));
            });
        } else {
            proc_.t_create("receiver", 5, |ncs| {
                let m = ncs.recv_any();
                assert_eq!(&m.data[..], b"late");
                assert!(ncs.ctx().now() >= SimTime::ZERO + Dur::from_millis(50));
            });
            let cd = Arc::clone(&cd);
            proc_.t_create("computer", 6, move |ncs| {
                ncs.compute(10_000_000, "work"); // 10 ms at 1 GHz
                *cd.lock() = ncs.ctx().now();
            });
        }
    });
    sim.run().assert_clean();
    let done = *compute_done_at.lock();
    // The computer must NOT have waited for the receiver's message: it
    // finishes in ~10 ms, far before the 50 ms message.
    assert!(
        done < SimTime::ZERO + Dur::from_millis(20),
        "compute finished at {done}, was blocked behind recv"
    );
}

#[test]
fn single_threaded_process_blocks_like_p4() {
    // Sanity check of the baseline-vs-NCS distinction: if the same process
    // does recv-then-compute in ONE thread, the compute is delayed.
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    let compute_done_at = Arc::new(Mutex::new(SimTime::ZERO));
    let cd = Arc::clone(&compute_done_at);
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), move |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                ncs.ctx().sleep(Dur::from_millis(50));
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"late"));
            });
        } else {
            let cd = Arc::clone(&cd);
            proc_.t_create("serial", 5, move |ncs| {
                let _ = ncs.recv_any();
                ncs.compute(10_000_000, "work");
                *cd.lock() = ncs.ctx().now();
            });
        }
    });
    sim.run().assert_clean();
    assert!(*compute_done_at.lock() >= SimTime::ZERO + Dur::from_millis(60));
}

#[test]
fn local_send_between_sibling_threads() {
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 1, quick_cfg(), |_, proc_| {
        proc_.t_create("producer", 5, |ncs| {
            ncs.send(ThreadAddr::new(0, 1), 7, Bytes::from_static(b"local"));
        });
        proc_.t_create("consumer", 5, |ncs| {
            let m = ncs.recv(Some(0), Some(0), Some(7));
            assert_eq!(&m.data[..], b"local");
            assert_eq!(m.from, ThreadAddr::new(0, 0));
        });
    });
    sim.run().assert_clean();
}

#[test]
fn wildcard_and_tag_matching() {
    let sim = Sim::new();
    let net = fast_net(3, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 3, quick_cfg(), |id, proc_| {
        proc_.t_create("w", 5, move |ncs| match id {
            0 => {
                // Two messages arrive; take tag 9 first regardless of order.
                let m9 = ncs.recv(None, None, Some(9));
                assert_eq!(m9.from.proc, 2);
                let m8 = ncs.recv(None, None, None);
                assert_eq!(m8.tag, 8);
                assert_eq!(m8.from.proc, 1);
            }
            1 => ncs.send(ThreadAddr::new(0, 0), 8, Bytes::from_static(b"a")),
            _ => ncs.send(ThreadAddr::new(0, 0), 9, Bytes::from_static(b"b")),
        });
    });
    sim.run().assert_clean();
}

#[test]
fn bcast_reaches_listed_threads() {
    let sim = Sim::new();
    let net = fast_net(4, Dur::from_micros(10));
    let got = Arc::new(AtomicUsize::new(0));
    let g = Arc::clone(&got);
    NcsWorld::launch(&sim, vec![net], 4, quick_cfg(), move |id, proc_| {
        let g = Arc::clone(&g);
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                let list: Vec<ThreadAddr> = (1..4).map(|p| ThreadAddr::new(p, 0)).collect();
                ncs.bcast(&list, 3, Bytes::from_static(b"hello"));
            } else {
                let m = ncs.recv(Some(0), None, Some(3));
                assert_eq!(&m.data[..], b"hello");
                g.fetch_add(1, Ordering::SeqCst);
            }
        });
    });
    sim.run().assert_clean();
    assert_eq!(got.load(Ordering::SeqCst), 3);
}

#[test]
fn signal_and_wait() {
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                ncs.ctx().sleep(Dur::from_millis(3));
                ncs.signal(ThreadAddr::new(1, 0));
            } else {
                ncs.wait_signal(Some(ThreadAddr::new(0, 0)));
                assert!(ncs.ctx().now() >= SimTime::ZERO + Dur::from_millis(3));
            }
        });
    });
    sim.run().assert_clean();
}

#[test]
fn cross_process_barrier() {
    let sim = Sim::new();
    let net = fast_net(4, Dur::from_micros(10));
    let after = Arc::new(Mutex::new(Vec::new()));
    let a2 = Arc::clone(&after);
    NcsWorld::launch(&sim, vec![net], 4, quick_cfg(), move |id, proc_| {
        let after = Arc::clone(&a2);
        proc_.t_create("w", 5, move |ncs| {
            ncs.ctx().sleep(Dur::from_millis(id as u64)); // skewed arrivals
            let parties: Vec<ThreadAddr> = (0..4).map(|p| ThreadAddr::new(p, 0)).collect();
            ncs.barrier(&parties);
            after.lock().push(ncs.ctx().now());
        });
    });
    sim.run().assert_clean();
    let after = after.lock();
    assert_eq!(after.len(), 4);
    let min = after.iter().min().unwrap();
    // Nobody leaves before the slowest (3 ms) arrival.
    assert!(*min >= SimTime::ZERO + Dur::from_millis(3));
}

#[test]
fn block_unblock_paper_jpeg_pattern() {
    // Figure 17: thread 1 reads the image, then NCS_unblock(tid2);
    // thread 2 NCS_block()s until then.
    let sim = Sim::new();
    let net = fast_net(1, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 1, quick_cfg(), |_, proc_| {
        proc_.t_create("t1", 5, |ncs| {
            ncs.ctx().sleep(Dur::from_millis(2)); // read file
            ncs.unblock(1);
        });
        proc_.t_create("t2", 5, |ncs| {
            ncs.block();
            assert!(ncs.ctx().now() >= SimTime::ZERO + Dur::from_millis(2));
        });
    });
    sim.run().assert_clean();
}

#[test]
fn credit_flow_control_paces_sender() {
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        ..quick_cfg()
    };
    let received = Arc::new(AtomicUsize::new(0));
    let r2 = Arc::clone(&received);
    NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
        let r = Arc::clone(&r2);
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..20u32 {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![0u8; 256]));
                }
            } else {
                for i in 0..20u32 {
                    let m = ncs.recv(Some(0), None, Some(i));
                    assert_eq!(m.data.len(), 256);
                    r.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
    });
    let out = sim.run();
    out.assert_clean();
    assert_eq!(received.load(Ordering::SeqCst), 20);
}

#[test]
fn error_control_recovers_from_corruption() {
    let sim = Sim::new();
    let base = fast_net(2, Dur::from_micros(10));
    let faulty: Arc<FaultyNet> = Arc::new(FaultyNet::new(base, 0.3, 42));
    let faulty_dyn: Arc<dyn Network> = Arc::clone(&faulty) as Arc<dyn Network>;
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        ..quick_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![faulty_dyn], 2, cfg, |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..30u32 {
                    let payload: Vec<u8> = (0..64).map(|k| (i as u8) ^ (k as u8)).collect();
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(payload));
                }
            } else {
                for i in 0..30u32 {
                    let m = ncs.recv(Some(0), None, Some(i));
                    // Every delivered payload must be intact.
                    for (k, &b) in m.data.iter().enumerate() {
                        assert_eq!(b, (i as u8) ^ (k as u8), "msg {i} byte {k}");
                    }
                }
            }
        });
    });
    let out = sim.run();
    out.assert_clean();
    assert!(faulty.corrupted_count() > 0, "fault injection never fired");
    assert!(
        world.procs()[0].retransmits() >= faulty.corrupted_count(),
        "every corruption must trigger a retransmit"
    );
}

#[test]
fn two_tier_nsm_hsm_selection() {
    let sim = Sim::new();
    let nsm = Testbed::SunAtmLanTcp.build(2);
    let hsm = Testbed::SunAtmLanApi.build(2);
    NcsWorld::launch(&sim, vec![hsm, nsm], 2, quick_cfg(), |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                ncs.send_via(0, ThreadAddr::new(1, 0), 1, Bytes::from(vec![1u8; 4096]));
                ncs.send_via(1, ThreadAddr::new(1, 0), 2, Bytes::from(vec![2u8; 4096]));
            } else {
                let a = ncs.recv(None, None, Some(1));
                let b = ncs.recv(None, None, Some(2));
                assert_eq!(a.data[0], 1);
                assert_eq!(b.data[0], 2);
            }
        });
    });
    sim.run().assert_clean();
}

#[test]
fn group_gather_scatter_reduce_alltoall() {
    let sim = Sim::new();
    let net = fast_net(4, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 4, quick_cfg(), |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            let parties: Vec<ThreadAddr> = (0..4).map(|p| ThreadAddr::new(p, 0)).collect();
            // gather
            let mine = Bytes::from(vec![id as u8; 3]);
            let g = gather(ncs, &parties, mine);
            if id == 0 {
                let g = g.unwrap();
                for (p, b) in g.iter().enumerate() {
                    assert_eq!(&b[..], &[p as u8; 3]);
                }
            } else {
                assert!(g.is_none());
            }
            // scatter
            let parts = if id == 0 {
                Some((0..4).map(|p| Bytes::from(vec![p as u8 + 10; 2])).collect())
            } else {
                None
            };
            let part = scatter(ncs, &parties, parts);
            assert_eq!(&part[..], &[id as u8 + 10; 2]);
            // reduce
            let v = vec![id as f64, 1.0];
            let r = reduce_f64(ncs, &parties, &v, ReduceOp::Sum);
            if id == 0 {
                assert_eq!(r.unwrap(), vec![6.0, 4.0]);
            }
            // all-to-all: party i sends value 10*i+j to party j
            let parts: Vec<Bytes> = (0..4)
                .map(|j| Bytes::from(vec![(10 * id + j) as u8]))
                .collect();
            let got = all_to_all(ncs, &parties, parts);
            for (i, b) in got.iter().enumerate() {
                assert_eq!(b[0], (10 * i + id) as u8);
            }
        });
    });
    sim.run().assert_clean();
}

#[test]
fn p4_filter_ports_p4_style_code() {
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |_, proc_| {
        proc_.t_create("main", 5, |ncs| {
            let p4 = P4Filter::new(ncs);
            if p4.my_id() == 0 {
                p4.send(5, 1, Bytes::from_static(b"data"));
                let (t, from, d) = p4.recv(None, None);
                assert_eq!((t, from), (6, 1));
                assert_eq!(&d[..], b"result");
            } else {
                let (t, from, d) = p4.recv(Some(5), Some(0));
                assert_eq!((t, from), (5, 0));
                assert_eq!(&d[..], b"data");
                p4.send(6, 0, Bytes::from_static(b"result"));
            }
        });
    });
    sim.run().assert_clean();
}

#[test]
fn pvm_and_mpi_filters() {
    let sim = Sim::new();
    let net = fast_net(3, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 3, quick_cfg(), |_, proc_| {
        proc_.t_create("main", 5, |ncs| {
            let mpi = MpiFilter::new(ncs);
            // MPI_Bcast from rank 1.
            let data = if mpi.rank() == 1 {
                Some(Bytes::from_static(b"cast"))
            } else {
                None
            };
            let got = mpi.bcast(1, data);
            assert_eq!(&got[..], b"cast");
            mpi.barrier();
            // PVM-style exchange ring: i -> (i+1) % 3.
            let pvm = PvmFilter::new(ncs);
            let me = pvm.mytid();
            pvm.send((me + 1) % 3, 77, Bytes::from(vec![me as u8]));
            let (from, tag, d) = pvm.recv(None, Some(77));
            assert_eq!(tag, 77);
            assert_eq!(from, (me + 2) % 3);
            assert_eq!(d[0], ((me + 2) % 3) as u8);
        });
    });
    sim.run().assert_clean();
}

#[test]
fn message_counters_track_traffic() {
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    let world = NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..5 {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from_static(b"m"));
                }
            } else {
                for i in 0..5 {
                    ncs.recv(None, None, Some(i));
                }
            }
        });
    });
    sim.run().assert_clean();
    assert_eq!(world.procs()[0].msg_counts().0, 5);
    assert_eq!(world.procs()[1].msg_counts().1, 5);
}

#[test]
fn deterministic_replay() {
    let run = || {
        let sim = Sim::new();
        let net = fast_net(3, Dur::from_micros(15));
        NcsWorld::launch(&sim, vec![net], 3, quick_cfg(), |id, proc_| {
            proc_.t_create("a", 5, move |ncs| {
                for i in 0..10u32 {
                    let peer = (id + 1) % 3;
                    ncs.send(
                        ThreadAddr::new(peer, 0),
                        i,
                        Bytes::from(vec![id as u8; 100]),
                    );
                    let m = ncs.recv(None, None, Some(i));
                    assert_eq!(m.data.len(), 100);
                }
            });
        });
        let out = sim.run();
        out.assert_clean();
        (out.end_time, sim.trace_hash())
    };
    assert_eq!(run(), run());
}

#[test]
fn exception_service_delivers_to_handler() {
    use std::sync::atomic::AtomicU32;
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    let seen = Arc::new(AtomicU32::new(0));
    let s2 = Arc::clone(&seen);
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), move |id, proc_| {
        if id == 1 {
            let s3 = Arc::clone(&s2);
            proc_.on_exception(move |e| {
                assert_eq!(e.from.proc, 0);
                assert_eq!(&e.detail[..], b"disk full");
                s3.store(e.code, Ordering::SeqCst);
            });
        }
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                ncs.raise(1, 507, Bytes::from_static(b"disk full"));
                // Data traffic still flows alongside exceptions.
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"x"));
            } else {
                ncs.recv(Some(0), None, Some(1));
            }
        });
    });
    sim.run().assert_clean();
    assert_eq!(seen.load(Ordering::SeqCst), 507);
}

#[test]
fn exceptions_buffer_until_handler_installed() {
    let sim = Sim::new();
    let net = fast_net(1, Dur::from_micros(10));
    let world = NcsWorld::launch(&sim, vec![net], 1, quick_cfg(), |_, proc_| {
        proc_.t_create("w", 5, |ncs| {
            ncs.raise(0, 42, Bytes::from_static(b"self"));
        });
    });
    sim.run().assert_clean();
    let pending = world.procs()[0].pending_exceptions();
    assert_eq!(pending.len(), 1);
    assert_eq!(pending[0].code, 42);
}

#[test]
fn probe_and_recv_timeout() {
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                ncs.ctx().sleep(Dur::from_millis(20));
                ncs.send(ThreadAddr::new(1, 0), 9, Bytes::from_static(b"eventually"));
            } else {
                assert!(!ncs.probe(None, None, None), "nothing buffered yet");
                // Times out before the 20 ms message.
                let t0 = ncs.ctx().now();
                let r = ncs.recv_timeout(Some(0), None, Some(9), Dur::from_millis(5));
                assert!(r.is_none(), "must time out");
                assert!(ncs.ctx().now().since(t0) >= Dur::from_millis(5));
                // Succeeds with a generous timeout.
                let r = ncs.recv_timeout(Some(0), None, Some(9), Dur::from_secs(1));
                assert_eq!(&r.expect("delivered").data[..], b"eventually");
                // And probe sees nothing afterwards.
                assert!(!ncs.probe(None, None, None));
            }
        });
    });
    sim.run().assert_clean();
}

#[test]
fn probe_true_when_message_waiting() {
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                ncs.send(ThreadAddr::new(1, 0), 3, Bytes::from_static(b"x"));
            } else {
                // Give the message time to land, then probe before recv.
                ncs.mctx().sleep(Dur::from_millis(50));
                assert!(ncs.probe(Some(0), None, Some(3)));
                assert!(!ncs.probe(Some(0), None, Some(4)), "wrong tag");
                let m = ncs.recv(Some(0), None, Some(3));
                assert_eq!(&m.data[..], b"x");
            }
        });
    });
    sim.run().assert_clean();
}

#[test]
fn flow_and_error_control_compose() {
    // The two NCS_init services active together, over a corrupting
    // transport: credit pacing bounds buffering while checksum/retransmit
    // repairs the stream.
    let sim = Sim::new();
    let base = fast_net(2, Dur::from_micros(10));
    let faulty: Arc<FaultyNet> = Arc::new(FaultyNet::new(base, 0.2, 0xC0));
    let faulty_dyn: Arc<dyn Network> = Arc::clone(&faulty) as Arc<dyn Network>;
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        error: ErrorControl::ChecksumRetransmit,
        ..quick_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![faulty_dyn], 2, cfg, |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..24u32 {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![i as u8; 512]));
                }
            } else {
                for i in 0..24u32 {
                    let m = ncs.recv(Some(0), None, Some(i));
                    assert!(m.data.iter().all(|&b| b == i as u8), "msg {i} corrupt");
                    ncs.compute(1_000_000, "drain");
                }
            }
        });
    });
    sim.run().assert_clean();
    assert!(faulty.corrupted_count() > 0);
    assert!(world.procs()[0].retransmits() > 0);
    assert!(
        world.procs()[1].peak_buffered() <= 8,
        "credit window must bound buffering even with retransmits: {}",
        world.procs()[1].peak_buffered()
    );
}

#[test]
fn filters_work_over_the_hsm_tier() {
    // Ported p4-style code running on the ATM API transport: the filter
    // stack composes with the HSM tier.
    let sim = Sim::new();
    let net = Testbed::SunAtmLanApi.build(2);
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |_, proc_| {
        proc_.t_create("main", 5, |ncs| {
            let p4 = P4Filter::new(ncs);
            if p4.my_id() == 0 {
                p4.send(1, 1, Bytes::from(vec![9u8; 20_000]));
                let (t, _, d) = p4.recv(Some(2), Some(1));
                assert_eq!(t, 2);
                assert_eq!(d.len(), 4);
            } else {
                let (_, _, d) = p4.recv(Some(1), Some(0));
                assert_eq!(d.len(), 20_000);
                p4.send(2, 0, Bytes::from_static(b"done"));
            }
        });
    });
    sim.run().assert_clean();
}

#[test]
fn messages_respect_destination_thread() {
    // A message addressed to thread 1 must never satisfy thread 0's recv.
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                ncs.send(ThreadAddr::new(1, 1), 5, Bytes::from_static(b"for-t1"));
                ncs.send(ThreadAddr::new(1, 0), 5, Bytes::from_static(b"for-t0"));
            });
        } else {
            proc_.t_create("t0", 5, |ncs| {
                let m = ncs.recv(None, None, Some(5));
                assert_eq!(&m.data[..], b"for-t0", "t0 stole t1's message");
            });
            proc_.t_create("t1", 5, |ncs| {
                let m = ncs.recv(None, None, Some(5));
                assert_eq!(&m.data[..], b"for-t1");
            });
        }
    });
    sim.run().assert_clean();
}

#[test]
fn communication_deadlock_is_reported_not_hung() {
    // Two threads both waiting for messages nobody sends: the run drains,
    // and the outcome names the blocked threads for diagnosis.
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    NcsWorld::launch(&sim, vec![net], 2, quick_cfg(), |_, proc_| {
        proc_.t_create("waiter", 5, |ncs| {
            let _ = ncs.recv_any(); // never satisfied
        });
    });
    let out = sim.run();
    assert!(out.panics.is_empty());
    assert!(
        out.blocked.iter().any(|n| n.contains("waiter")),
        "blocked list should name the stuck threads: {:?}",
        out.blocked
    );
    sim.finish();
}

#[test]
fn error_control_recovers_from_message_loss() {
    // Messages (including some ACKs) vanish outright; timeout-driven
    // retransmission with duplicate suppression still delivers everything
    // exactly once, in tag order.
    let sim = Sim::new();
    let base = fast_net(2, Dur::from_micros(10));
    let faulty: Arc<FaultyNet> = Arc::new(FaultyNet::with_loss(base, 0.0, 0.25, 77));
    let faulty_dyn: Arc<dyn Network> = Arc::clone(&faulty) as Arc<dyn Network>;
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: ncs_core::RtoConfig::from_base(Dur::from_millis(20)),
        ..quick_cfg()
    };
    let received = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&received);
    let world = NcsWorld::launch(&sim, vec![faulty_dyn], 2, cfg, move |id, proc_| {
        let r = Arc::clone(&r2);
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..25u32 {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![i as u8; 128]));
                }
            } else {
                for i in 0..25u32 {
                    let m = ncs.recv(Some(0), None, Some(i));
                    assert!(m.data.iter().all(|&b| b == i as u8));
                    r.lock().push(i);
                }
            }
        });
    });
    let out = sim.run();
    out.assert_clean();
    assert!(faulty.dropped_count() > 0, "loss injection never fired");
    assert!(
        world.procs()[0].retransmits() > 0,
        "no retransmits happened"
    );
    assert_eq!(*received.lock(), (0..25).collect::<Vec<_>>());
}

#[test]
fn error_control_gives_up_and_raises_exception() {
    // Total blackout: every message dropped. The sender's error control
    // exhausts its retries and raises EXC_DELIVERY_FAILED locally instead
    // of hanging the process forever.
    use ncs_core::EXC_DELIVERY_FAILED;
    let sim = Sim::new();
    let base = fast_net(2, Dur::from_micros(10));
    let faulty: Arc<FaultyNet> = Arc::new(FaultyNet::with_loss(base, 0.0, 1.0, 5));
    let faulty_dyn: Arc<dyn Network> = Arc::clone(&faulty) as Arc<dyn Network>;
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: ncs_core::RtoConfig::from_base(Dur::from_millis(10)),
        max_retries: 3,
        ..quick_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![faulty_dyn], 2, cfg, |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                ncs.send(
                    ThreadAddr::new(1, 0),
                    1,
                    Bytes::from_static(b"into the void"),
                );
            });
        }
        // Process 1 creates no threads: it shuts down immediately and never
        // receives anything (the wire eats it all anyway).
    });
    let out = sim.run();
    assert!(out.panics.is_empty(), "{:?}", out.panics);
    let exceptions = world.procs()[0].pending_exceptions();
    assert_eq!(exceptions.len(), 1, "expected one delivery failure");
    assert_eq!(exceptions[0].code, EXC_DELIVERY_FAILED);
    assert!(
        world.procs()[0].is_peer_dead(1),
        "retry exhaustion must mark the peer dead"
    );
    sim.finish();
}

#[test]
fn adaptive_rto_learns_from_samples() {
    // Clean wire: ACKs return unmolested, the estimator accumulates
    // Karn-clean samples, and the RTO converges near SRTT + 4·RTTVAR —
    // far below the 500 ms it would sit at with no samples.
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        ..quick_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..10u32 {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![i as u8; 256]));
                }
            } else {
                for i in 0..10u32 {
                    let _ = ncs.recv(Some(0), None, Some(i));
                }
            }
        });
    });
    sim.run().assert_clean();
    let stats = world.procs()[0].error_stats();
    assert!(stats.rtt_samples > 0, "no RTT samples: {stats:?}");
    assert_eq!(stats.retransmits, 0);
    assert_eq!(stats.delivery_failures, 0);
    assert!(stats.dead_peers.is_empty());
    let defaults = ncs_core::RtoConfig::default();
    let peer = stats
        .peers
        .iter()
        .find(|p| p.peer == 1)
        .expect("estimator for peer 1");
    assert!(peer.srtt > Dur::ZERO);
    assert!(peer.rto >= defaults.min && peer.rto <= defaults.max);
    assert!(
        peer.rto < defaults.initial,
        "RTO failed to adapt below the pre-sample initial: {:?}",
        peer.rto
    );
}

#[test]
fn lost_acks_never_cause_duplicate_delivery() {
    // Property sweep: under message loss that provably eats ACKs (the
    // receiver's duplicates_suppressed counter ticks only when a
    // retransmission arrives for an already-delivered frame), every data
    // message reaches the application exactly once.
    const MSGS: u32 = 30;
    let mut saw_ack_loss = false;
    for seed in [3u64, 17, 41, 99, 1234, 777777] {
        let sim = Sim::new();
        let base = fast_net(2, Dur::from_micros(10));
        let faulty: Arc<FaultyNet> = Arc::new(FaultyNet::with_loss(base, 0.0, 0.25, seed));
        let faulty_dyn: Arc<dyn Network> = Arc::clone(&faulty) as Arc<dyn Network>;
        let cfg = NcsConfig {
            error: ErrorControl::ChecksumRetransmit,
            rto: ncs_core::RtoConfig::from_base(Dur::from_millis(20)),
            max_retries: 12,
            ..quick_cfg()
        };
        let tags = Arc::new(Mutex::new(Vec::new()));
        let t2 = Arc::clone(&tags);
        let world = NcsWorld::launch(&sim, vec![faulty_dyn], 2, cfg, move |id, proc_| {
            let t = Arc::clone(&t2);
            proc_.t_create("w", 5, move |ncs| {
                if id == 0 {
                    for i in 0..MSGS {
                        ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![i as u8; 96]));
                    }
                } else {
                    // Wildcard receives: a duplicate, if one leaked through,
                    // would consume a slot and break the multiset check.
                    for _ in 0..MSGS {
                        let m = ncs.recv(Some(0), None, None);
                        assert!(m.data.iter().all(|&b| b == m.tag as u8));
                        t.lock().push(m.tag);
                    }
                }
            });
        });
        let out = sim.run();
        out.assert_clean();
        let mut got = tags.lock().clone();
        got.sort_unstable();
        assert_eq!(
            got,
            (0..MSGS).collect::<Vec<_>>(),
            "seed {seed}: duplicate or missing delivery"
        );
        if world.procs()[1].error_stats().duplicates_suppressed > 0 {
            saw_ack_loss = true;
        }
    }
    assert!(
        saw_ack_loss,
        "sweep never exercised the lost-ACK path; pick different seeds"
    );
}

#[test]
fn dead_peer_sends_fail_fast() {
    // Blackout wire. The first send exhausts its retry budget and marks
    // the peer dead; a later send fails immediately with the same
    // exception instead of burning a fresh budget (or hanging).
    use ncs_core::EXC_DELIVERY_FAILED;
    let sim = Sim::new();
    let base = fast_net(2, Dur::from_micros(10));
    let dead: Arc<dyn Network> = Arc::new(FaultyNet::with_loss(base, 0.0, 1.0, 11));
    let cfg = NcsConfig {
        error: ErrorControl::ChecksumRetransmit,
        rto: ncs_core::RtoConfig::from_base(Dur::from_millis(10)),
        max_retries: 3,
        ..quick_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![dead], 2, cfg, |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"first"));
                // Idle past the whole retry schedule (10 + 20 + 40 + 80 ms
                // of backed-off timeouts) so the budget is provably gone.
                ncs.ctx().sleep(Dur::from_secs(2));
                ncs.send(ThreadAddr::new(1, 0), 2, Bytes::from_static(b"second"));
            });
        }
    });
    let out = sim.run();
    assert!(out.panics.is_empty(), "{:?}", out.panics);
    assert!(world.procs()[0].is_peer_dead(1));
    let exceptions = world.procs()[0].pending_exceptions();
    assert_eq!(
        exceptions.len(),
        2,
        "one give-up exception + one fail-fast exception: {exceptions:?}"
    );
    assert!(exceptions.iter().all(|e| e.code == EXC_DELIVERY_FAILED));
    let stats = world.procs()[0].error_stats();
    assert_eq!(stats.retransmits, 3);
    assert!(stats.backoff_events >= 3);
    sim.finish();
}

#[test]
fn tree_bcast_reaches_everyone() {
    use ncs_core::group::tree_bcast;
    for n in [2usize, 3, 5, 8] {
        let sim = Sim::new();
        let net = fast_net(n, Dur::from_micros(10));
        let got = Arc::new(AtomicUsize::new(0));
        let g2 = Arc::clone(&got);
        NcsWorld::launch(&sim, vec![net], n, quick_cfg(), move |id, proc_| {
            let g = Arc::clone(&g2);
            proc_.t_create("w", 5, move |ncs| {
                let parties: Vec<ThreadAddr> = (0..ncs.proc().num_procs())
                    .map(|p| ThreadAddr::new(p, 0))
                    .collect();
                let data = if id == 0 {
                    Some(Bytes::from_static(b"fanned out"))
                } else {
                    None
                };
                let out = tree_bcast(ncs, &parties, data);
                assert_eq!(&out[..], b"fanned out");
                g.fetch_add(1, Ordering::SeqCst);
            });
        });
        sim.run().assert_clean();
        assert_eq!(got.load(Ordering::SeqCst), n, "n={n}");
    }
}

#[test]
fn tree_bcast_beats_flat_bcast_at_scale() {
    use ncs_core::group::tree_bcast;
    // 8 parties on the calibrated NYNET stack: O(log n) rounds must finish
    // well before the root's 7 serialized sends.
    let run = |tree: bool| {
        let sim = Sim::new();
        let net = Testbed::NynetTcp.build(8);
        NcsWorld::launch(
            &sim,
            vec![net],
            8,
            NcsConfig::default(),
            move |id, proc_| {
                proc_.t_create("w", 5, move |ncs| {
                    let parties: Vec<ThreadAddr> = (0..8).map(|p| ThreadAddr::new(p, 0)).collect();
                    let payload = Bytes::from(vec![7u8; 32 * 1024]);
                    if tree {
                        let data = (id == 0).then(|| payload.clone());
                        tree_bcast(ncs, &parties, data);
                    } else if id == 0 {
                        ncs.bcast(&parties[1..], 1, payload);
                    } else {
                        ncs.recv(Some(0), None, Some(1));
                    }
                });
            },
        );
        let out = sim.run();
        out.assert_clean();
        out.end_time
    };
    let flat = run(false);
    let tree = run(true);
    assert!(
        tree < flat,
        "tree bcast {tree} should beat flat bcast {flat}"
    );
}

#[test]
fn oversized_message_is_chunked_not_fatal() {
    // Regression: a >64 KiB message used to blow past the AAL5 65 535-byte
    // CS-PDU ceiling (a panic deep in segmentation). The pipelined data
    // path now chunks it through the I/O-buffer pool — over both the
    // TCP-based NSM and, critically, the ATM-API HSM whose PDUs really hit
    // AAL5 — with the protocol invariants armed.
    use ncs_sim::AnalysisConfig;
    let payload: Vec<u8> = (0..70_000u32).map(|i| (i * 31 + 7) as u8).collect();
    for hsm in [false, true] {
        let (analysis, sink) = AnalysisConfig::recording();
        let sim = Sim::new();
        let net = if hsm {
            Testbed::SunAtmLanApi.build(2)
        } else {
            fast_net(2, Dur::from_micros(10))
        };
        let cfg = NcsConfig {
            flow: FlowControl::Credit { window: 4 },
            error: ErrorControl::ChecksumRetransmit,
            analysis,
            ..quick_cfg()
        };
        let expect = payload.clone();
        let sent = Bytes::from(payload.clone());
        let world = NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
            let sent = sent.clone();
            let expect = expect.clone();
            proc_.t_create("w", 5, move |ncs| {
                if id == 0 {
                    ncs.send(ThreadAddr::new(1, 0), 9, sent.clone());
                } else {
                    let m = ncs.recv(Some(0), None, Some(9));
                    assert_eq!(m.data.len(), expect.len(), "length mangled");
                    assert_eq!(&m.data[..], &expect[..], "bytes mangled");
                }
            });
        });
        sim.run().assert_clean();
        let (fragmented, chunks, _) = world.procs()[0].pipeline_stats();
        assert_eq!(fragmented, 1, "hsm={hsm}: message should have been chunked");
        assert_eq!(chunks, 70_000u64.div_ceil(16 * 1024), "hsm={hsm}");
        let (_, _, reassembled) = world.procs()[1].pipeline_stats();
        assert_eq!(reassembled, 1, "hsm={hsm}");
        let violations = sink.take();
        assert!(violations.is_empty(), "hsm={hsm}: {violations:?}");
    }
}

#[test]
fn seq_wraparound_with_full_window() {
    // Drive the per-destination sequence counter across the u32 wrap with
    // credit flow control keeping a full window in flight. The wrap-aware
    // duplicate window and ACK checks must keep delivery exact — before
    // them, seq u32::MAX acked fine but 0, 1, 2... after the wrap looked
    // like replays of the very first frames.
    use ncs_sim::AnalysisConfig;
    const MSGS: u32 = 8;
    let (analysis, sink) = AnalysisConfig::recording();
    let sim = Sim::new();
    let net = fast_net(2, Dur::from_micros(10));
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 4 },
        error: ErrorControl::ChecksumRetransmit,
        analysis,
        ..quick_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![net], 2, cfg, |id, proc_| {
        proc_.t_create("w", 5, move |ncs| {
            if id == 0 {
                for i in 0..MSGS {
                    ncs.send(ThreadAddr::new(1, 0), i, Bytes::from(vec![i as u8; 64]));
                }
            } else {
                for i in 0..MSGS {
                    let m = ncs.recv(Some(0), None, Some(i));
                    assert!(m.data.iter().all(|&b| b == i as u8));
                }
            }
        });
    });
    // Start the counter 4 frames shy of the wrap: messages 0..=3 use
    // u32::MAX-3..=u32::MAX, messages 4..=7 use 0..=3.
    world.procs()[0].debug_seed_next_seq(1, u32::MAX - 3);
    sim.run().assert_clean();
    let stats = world.procs()[0].error_stats();
    assert_eq!(stats.delivery_failures, 0);
    assert_eq!(world.procs()[1].error_stats().duplicates_suppressed, 0);
    assert_eq!(world.procs()[1].msg_counts().1, u64::from(MSGS));
    let violations = sink.take();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn peer_death_while_parked_on_credits_raises_not_hangs() {
    // Lost-wakeup regression: the send thread parks waiting for credits
    // from a peer that then dies (total blackout, retry budget exhausted
    // on the first frame). The give-up path must wake the parked sender
    // and surface EXC_DELIVERY_FAILED for the gated message too — not
    // leave the process wedged forever.
    use ncs_core::EXC_DELIVERY_FAILED;
    use ncs_sim::AnalysisConfig;
    let (analysis, sink) = AnalysisConfig::recording();
    let sim = Sim::new();
    let base = fast_net(2, Dur::from_micros(10));
    let dead: Arc<dyn Network> = Arc::new(FaultyNet::with_loss(base, 0.0, 1.0, 23));
    let cfg = NcsConfig {
        flow: FlowControl::Credit { window: 1 },
        error: ErrorControl::ChecksumRetransmit,
        rto: ncs_core::RtoConfig::from_base(Dur::from_millis(10)),
        max_retries: 3,
        analysis,
        ..quick_cfg()
    };
    let world = NcsWorld::launch(&sim, vec![dead], 2, cfg, |id, proc_| {
        if id == 0 {
            proc_.t_create("sender", 5, |ncs| {
                // First send spends the only credit and vanishes on the
                // wire; the second parks the send thread on credits that
                // can never arrive.
                ncs.send(ThreadAddr::new(1, 0), 1, Bytes::from_static(b"first"));
                ncs.send(ThreadAddr::new(1, 0), 2, Bytes::from_static(b"second"));
            });
        }
        // Process 1 creates no threads and never grants anything.
    });
    let out = sim.run(); // completing at all proves the sender was woken
    assert!(out.panics.is_empty(), "{:?}", out.panics);
    assert!(world.procs()[0].is_peer_dead(1));
    let exceptions = world.procs()[0].pending_exceptions();
    assert_eq!(exceptions.len(), 2, "both sends must fail: {exceptions:?}");
    assert!(exceptions.iter().all(|e| e.code == EXC_DELIVERY_FAILED));
    let violations = sink.take();
    assert!(violations.is_empty(), "{violations:?}");
    sim.finish();
}

#[test]
fn chunked_delivery_is_byte_identical_to_monolithic() {
    // The pipelined path is a transport detail: for every size across the
    // chunking boundaries (including zero bytes and a 200 KiB worst case),
    // the application sees exactly the bytes of a monolithic transfer.
    let chunk = 16 * 1024;
    for &len in &[0usize, 1, 37, chunk - 1, chunk, chunk + 1, 3 * chunk, 200_000] {
        let payload: Vec<u8> = (0..len).map(|i| (i as u32).wrapping_mul(2654435761) as u8).collect();
        for monolithic in [false, true] {
            let sim = Sim::new();
            let net = fast_net(2, Dur::from_micros(10));
            let cfg = NcsConfig {
                flow: FlowControl::Credit { window: 4 },
                error: ErrorControl::ChecksumRetransmit,
                // Monolithic baseline: buffers wide enough to never chunk.
                io_buffer_bytes: if monolithic { usize::MAX } else { chunk },
                ..quick_cfg()
            };
            let sent = Bytes::from(payload.clone());
            let expect = payload.clone();
            let world = NcsWorld::launch(&sim, vec![net], 2, cfg, move |id, proc_| {
                let sent = sent.clone();
                let expect = expect.clone();
                proc_.t_create("w", 5, move |ncs| {
                    if id == 0 {
                        ncs.send(ThreadAddr::new(1, 0), 5, sent.clone());
                    } else {
                        let m = ncs.recv(Some(0), None, Some(5));
                        assert_eq!(&m.data[..], &expect[..], "len {}", expect.len());
                    }
                });
            });
            sim.run().assert_clean();
            let (fragmented, _, _) = world.procs()[0].pipeline_stats();
            assert_eq!(
                fragmented,
                u64::from(!monolithic && len > chunk),
                "len {len}, monolithic {monolithic}"
            );
        }
    }
}
