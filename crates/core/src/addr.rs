//! Message addressing: the paper's `(thread, process)` pairs.
//!
//! Every NCS primitive names endpoints as a thread id within a process
//! ([`ThreadAddr`]). On the wire, the class and both thread ids ride in the
//! transport's 64-bit tag next to a 32-bit user tag:
//!
//! ```text
//! | class (8) | from_thread (12) | to_thread (12) | user tag (32) |
//! ```

/// A thread endpoint: thread `thread` of process `proc`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadAddr {
    /// Process (node) id.
    pub proc: usize,
    /// Logical user-thread id within the process (creation order).
    pub thread: u32,
}

impl ThreadAddr {
    /// Convenience constructor.
    pub fn new(proc: usize, thread: u32) -> ThreadAddr {
        ThreadAddr { proc, thread }
    }
}

impl std::fmt::Display for ThreadAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}.t{}", self.proc, self.thread)
    }
}

/// Wire-level message class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum MsgClass {
    /// Application data (NCS_send / NCS_recv).
    Data = 0,
    /// Thread-to-thread signal (zero-byte synchronization).
    Signal = 1,
    /// Barrier arrival report.
    BarArrive = 2,
    /// Barrier release.
    BarGo = 3,
    /// Flow-control credit grant.
    Credit = 4,
    /// Error-control positive acknowledgment.
    Ack = 5,
    /// Error-control retransmission request.
    Nack = 6,
    /// Exception notification.
    Exception = 7,
    /// One chunk of a large data message staged through the I/O-buffer
    /// pool (the pipelined Approach-2 data path). Carries a
    /// `[xfer_id][idx][total]` header ahead of the chunk bytes; the
    /// receive thread reassembles the original [`MsgClass::Data`] message.
    Frag = 8,
}

impl MsgClass {
    /// Decodes a class byte.
    pub fn from_u8(v: u8) -> Option<MsgClass> {
        Some(match v {
            0 => MsgClass::Data,
            1 => MsgClass::Signal,
            2 => MsgClass::BarArrive,
            3 => MsgClass::BarGo,
            4 => MsgClass::Credit,
            5 => MsgClass::Ack,
            6 => MsgClass::Nack,
            7 => MsgClass::Exception,
            8 => MsgClass::Frag,
            _ => return None,
        })
    }
}

/// Maximum encodable thread id (12 bits).
pub const MAX_THREAD_ID: u32 = 0xFFF;

/// Packs class, thread ids and user tag into a transport tag.
pub fn encode_tag(class: MsgClass, from_thread: u32, to_thread: u32, user: u32) -> u64 {
    assert!(from_thread <= MAX_THREAD_ID, "from_thread exceeds 12 bits");
    assert!(to_thread <= MAX_THREAD_ID, "to_thread exceeds 12 bits");
    (u64::from(class as u8) << 56)
        | (u64::from(from_thread) << 44)
        | (u64::from(to_thread) << 32)
        | u64::from(user)
}

/// Unpacks a transport tag.
pub fn decode_tag(tag: u64) -> (MsgClass, u32, u32, u32) {
    let class = MsgClass::from_u8((tag >> 56) as u8).expect("unknown message class");
    let from_thread = ((tag >> 44) & 0xFFF) as u32;
    let to_thread = ((tag >> 32) & 0xFFF) as u32;
    let user = tag as u32;
    (class, from_thread, to_thread, user)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_all_classes() {
        for class in [
            MsgClass::Data,
            MsgClass::Signal,
            MsgClass::BarArrive,
            MsgClass::BarGo,
            MsgClass::Credit,
            MsgClass::Ack,
            MsgClass::Nack,
            MsgClass::Exception,
            MsgClass::Frag,
        ] {
            let tag = encode_tag(class, 7, 11, 0xDEAD_BEEF);
            assert_eq!(decode_tag(tag), (class, 7, 11, 0xDEAD_BEEF));
        }
    }

    #[test]
    fn tag_roundtrip_extremes() {
        let tag = encode_tag(MsgClass::Exception, MAX_THREAD_ID, 0, u32::MAX);
        assert_eq!(
            decode_tag(tag),
            (MsgClass::Exception, MAX_THREAD_ID, 0, u32::MAX)
        );
        let tag = encode_tag(MsgClass::Data, 0, MAX_THREAD_ID, 0);
        assert_eq!(decode_tag(tag), (MsgClass::Data, 0, MAX_THREAD_ID, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds 12 bits")]
    fn oversized_thread_id_rejected() {
        encode_tag(MsgClass::Data, MAX_THREAD_ID + 1, 0, 0);
    }

    #[test]
    fn addr_display() {
        assert_eq!(ThreadAddr::new(3, 1).to_string(), "p3.t1");
    }
}
