//! Payload marshalling helpers.
//!
//! The benchmark applications ship matrices, image tiles, and complex
//! signal vectors. These helpers convert between typed slices and the byte
//! payloads NCS and p4 carry, with explicit little-endian layout so results
//! are platform-independent.

use bytes::Bytes;

/// Serializes a slice of `f64` (little-endian).
pub fn f64s_to_bytes(xs: &[f64]) -> Bytes {
    let mut v = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        v.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(v)
}

/// Deserializes a slice of `f64`. Panics if the length is not a multiple
/// of 8.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert!(
        b.len().is_multiple_of(8),
        "not an f64 array: {} bytes",
        b.len()
    );
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Serializes `(re, im)` pairs.
pub fn complex_to_bytes(xs: &[(f64, f64)]) -> Bytes {
    let mut v = Vec::with_capacity(xs.len() * 16);
    for (re, im) in xs {
        v.extend_from_slice(&re.to_le_bytes());
        v.extend_from_slice(&im.to_le_bytes());
    }
    Bytes::from(v)
}

/// Deserializes `(re, im)` pairs.
pub fn bytes_to_complex(b: &[u8]) -> Vec<(f64, f64)> {
    assert!(
        b.len().is_multiple_of(16),
        "not a complex array: {} bytes",
        b.len()
    );
    b.chunks_exact(16)
        .map(|c| {
            (
                f64::from_le_bytes(c[..8].try_into().unwrap()),
                f64::from_le_bytes(c[8..].try_into().unwrap()),
            )
        })
        .collect()
}

/// Serializes a `u32` header followed by raw bytes (length-prefixed blob).
pub fn tagged_blob(header: u32, body: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(4 + body.len());
    v.extend_from_slice(&header.to_le_bytes());
    v.extend_from_slice(body);
    Bytes::from(v)
}

/// Splits a tagged blob back into header and body.
pub fn split_tagged_blob(b: &[u8]) -> (u32, &[u8]) {
    assert!(b.len() >= 4, "blob too short");
    (u32::from_le_bytes(b[..4].try_into().unwrap()), &b[4..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let xs = vec![0.0, -1.5, 3.25e300, f64::MIN_POSITIVE, 42.0];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&xs)), xs);
    }

    #[test]
    fn f64_empty() {
        assert!(bytes_to_f64s(&f64s_to_bytes(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "not an f64 array")]
    fn f64_bad_length() {
        bytes_to_f64s(&[1, 2, 3]);
    }

    #[test]
    fn complex_roundtrip() {
        let xs = vec![(1.0, -2.0), (0.5, 0.25), (-0.0, 1e-300)];
        assert_eq!(bytes_to_complex(&complex_to_bytes(&xs)), xs);
    }

    #[test]
    fn tagged_blob_roundtrip() {
        let b = tagged_blob(0xCAFE_F00D, b"payload");
        let (h, body) = split_tagged_blob(&b);
        assert_eq!(h, 0xCAFE_F00D);
        assert_eq!(body, b"payload");
    }
}
