//! Group communication (paper Section 3.1): 1-to-many, many-to-1 and
//! many-to-many patterns built on the point-to-point NCS core.
//!
//! All operations are *collective over an explicit participant list* —
//! every listed thread must call the same operation with the same list.
//! User tags at and above [`GROUP_TAG_BASE`] are reserved for these
//! operations; application point-to-point traffic should stay below it.

use bytes::Bytes;

use crate::addr::ThreadAddr;
use crate::codec;
use crate::env::NcsCtx;

/// First user tag reserved for collective operations.
pub const GROUP_TAG_BASE: u32 = 0xFFFF_FF00;
const TAG_GATHER: u32 = GROUP_TAG_BASE;
const TAG_SCATTER: u32 = GROUP_TAG_BASE + 1;
const TAG_REDUCE: u32 = GROUP_TAG_BASE + 2;
const TAG_ALLTOALL: u32 = GROUP_TAG_BASE + 3;
const TAG_TREE_BCAST: u32 = GROUP_TAG_BASE + 4;

/// 1-to-many over a binomial tree: `parties[0]` supplies `data`; every
/// party returns it after O(log n) communication rounds instead of the
/// O(n) serialized sends of the flat [`crate::env::NcsCtx::bcast`].
/// Collective: every listed thread calls it with the same list.
pub fn tree_bcast(ncs: &NcsCtx, parties: &[ThreadAddr], data: Option<Bytes>) -> Bytes {
    let me = ncs.my_addr();
    let idx = parties
        .iter()
        .position(|&p| p == me)
        .expect("caller must be a party");
    let n = parties.len();
    let payload = if idx == 0 {
        data.expect("root must supply the broadcast data")
    } else {
        assert!(data.is_none(), "only the root supplies data");
        // Receive from the parent: the rank that differs in our lowest set
        // bit (MPICH-style binomial tree rooted at index 0).
        let mut mask = 1usize;
        loop {
            if idx & mask != 0 {
                let parent = parties[idx - mask];
                break ncs
                    .recv(Some(parent.proc), Some(parent.thread), Some(TAG_TREE_BCAST))
                    .data;
            }
            mask <<= 1;
        }
    };
    // Forward to children: ranks idx + mask for each mask below our lowest
    // set bit (the root forwards for every mask).
    let low = if idx == 0 {
        n.next_power_of_two()
    } else {
        idx & idx.wrapping_neg()
    };
    let mut mask = low >> 1;
    while mask > 0 {
        if idx + mask < n {
            ncs.send(parties[idx + mask], TAG_TREE_BCAST, payload.clone());
        }
        mask >>= 1;
    }
    payload
}

/// Many-to-1: every party contributes `mine`; the root (`parties[0]`)
/// returns all contributions ordered by the participant list, others get
/// `None`.
pub fn gather(ncs: &NcsCtx, parties: &[ThreadAddr], mine: Bytes) -> Option<Vec<Bytes>> {
    let me = ncs.my_addr();
    let root = parties[0];
    if me == root {
        let mut out: Vec<Option<Bytes>> = vec![None; parties.len()];
        out[0] = Some(mine);
        for _ in 1..parties.len() {
            let m = ncs.recv(None, None, Some(TAG_GATHER));
            let idx = parties
                .iter()
                .position(|&p| p == m.from)
                .expect("gather from non-party");
            assert!(out[idx].is_none(), "duplicate gather contribution");
            out[idx] = Some(m.data);
        }
        Some(out.into_iter().map(|o| o.unwrap()).collect())
    } else {
        ncs.send(root, TAG_GATHER, mine);
        None
    }
}

/// 1-to-many: the root supplies one part per party (ordered like
/// `parties`); every party returns its own part.
pub fn scatter(ncs: &NcsCtx, parties: &[ThreadAddr], parts: Option<Vec<Bytes>>) -> Bytes {
    let me = ncs.my_addr();
    let root = parties[0];
    if me == root {
        let parts = parts.expect("root must supply parts");
        assert_eq!(parts.len(), parties.len(), "one part per party");
        let mut my_part = None;
        for (&p, part) in parties.iter().zip(parts) {
            if p == me {
                my_part = Some(part);
            } else {
                ncs.send(p, TAG_SCATTER, part);
            }
        }
        my_part.expect("root must be a party")
    } else {
        assert!(parts.is_none(), "only the root supplies parts");
        ncs.recv(Some(root.proc), Some(root.thread), Some(TAG_SCATTER))
            .data
    }
}

/// Element-wise reduction operators for `f64` vectors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], x: &[f64]) {
        assert_eq!(acc.len(), x.len(), "reduce length mismatch");
        for (a, b) in acc.iter_mut().zip(x) {
            *a = match self {
                ReduceOp::Sum => *a + *b,
                ReduceOp::Min => a.min(*b),
                ReduceOp::Max => a.max(*b),
            };
        }
    }
}

/// Many-to-1 with combination: the root returns the element-wise reduction
/// of every party's vector.
pub fn reduce_f64(
    ncs: &NcsCtx,
    parties: &[ThreadAddr],
    mine: &[f64],
    op: ReduceOp,
) -> Option<Vec<f64>> {
    let me = ncs.my_addr();
    let root = parties[0];
    if me == root {
        let mut acc = mine.to_vec();
        for _ in 1..parties.len() {
            let m = ncs.recv(None, None, Some(TAG_REDUCE));
            let xs = codec::bytes_to_f64s(&m.data);
            op.apply(&mut acc, &xs);
        }
        Some(acc)
    } else {
        ncs.send(root, TAG_REDUCE, codec::f64s_to_bytes(mine));
        None
    }
}

/// Many-to-many: party `i` supplies one part per party; returns the parts
/// addressed to it, ordered by the participant list.
pub fn all_to_all(ncs: &NcsCtx, parties: &[ThreadAddr], parts: Vec<Bytes>) -> Vec<Bytes> {
    assert_eq!(parts.len(), parties.len(), "one part per party");
    let me = ncs.my_addr();
    let my_idx = parties
        .iter()
        .position(|&p| p == me)
        .expect("caller must be a party");
    let mut out: Vec<Option<Bytes>> = vec![None; parties.len()];
    // Send own parts (keeping the self part), then collect the rest.
    for (i, (&p, part)) in parties.iter().zip(parts).enumerate() {
        if i == my_idx {
            out[i] = Some(part);
        } else {
            ncs.send(p, TAG_ALLTOALL, part);
        }
    }
    for _ in 0..parties.len() - 1 {
        let m = ncs.recv(None, None, Some(TAG_ALLTOALL));
        let idx = parties
            .iter()
            .position(|&p| p == m.from)
            .expect("all_to_all from non-party");
        assert!(out[idx].is_none(), "duplicate all_to_all part");
        out[idx] = Some(m.data);
    }
    out.into_iter().map(|o| o.unwrap()).collect()
}
