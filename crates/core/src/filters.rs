//! Message-passing filters (paper Figure 6): p4-, PVM- and MPI-style
//! interfaces mapped onto NCS primitives, so *"any parallel/distributed
//! application written using these tools can be ported to NCS without any
//! change"*.
//!
//! Each filter is a thin, zero-state adapter over an [`NcsCtx`]:
//! addressing and matching translate to NCS `(thread, process)` endpoints
//! and tags; the transfers themselves go through the NCS system threads,
//! so ported applications get the multithreaded overlap for free.
//!
//! Filters address *processes* (ranks / task ids), which NCS represents as
//! thread 0 of each process — matching how p4/PVM programs are structured
//! as one context per process.

use bytes::Bytes;

use crate::addr::ThreadAddr;
use crate::env::{NcsCtx, NcsMsg};

fn rank0(proc: usize) -> ThreadAddr {
    ThreadAddr::new(proc, 0)
}

/// p4-style interface (`p4_send` / `p4_recv` / `p4_broadcast`).
pub struct P4Filter<'a, 'b> {
    ncs: &'a NcsCtx<'b>,
}

impl<'a, 'b> P4Filter<'a, 'b> {
    /// Wraps an NCS thread context (should be thread 0 of its process).
    pub fn new(ncs: &'a NcsCtx<'b>) -> Self {
        P4Filter { ncs }
    }

    /// `p4_get_my_id`.
    pub fn my_id(&self) -> usize {
        self.ncs.proc().id()
    }

    /// `p4_num_total_slaves` + 1.
    pub fn num_procs(&self) -> usize {
        self.ncs.proc().num_procs()
    }

    /// `p4_send(type, to, data, size)`.
    pub fn send(&self, msg_type: i32, to: usize, data: Bytes) {
        self.ncs.send(rank0(to), msg_type as u32, data);
    }

    /// `p4_recv(&type, &from, ...)` with `None` as the `-1` wildcard.
    pub fn recv(&self, msg_type: Option<i32>, from: Option<usize>) -> (i32, usize, Bytes) {
        let m = self.ncs.recv(from, None, msg_type.map(|t| t as u32));
        (m.tag as i32, m.from.proc, m.data)
    }

    /// `p4_broadcast` to every other rank.
    pub fn broadcast(&self, msg_type: i32, data: Bytes) {
        for p in 0..self.num_procs() {
            if p != self.my_id() {
                self.ncs.send(rank0(p), msg_type as u32, data.clone());
            }
        }
    }
}

/// PVM-style interface (`pvm_send` / `pvm_recv` with task ids and tags).
pub struct PvmFilter<'a, 'b> {
    ncs: &'a NcsCtx<'b>,
}

impl<'a, 'b> PvmFilter<'a, 'b> {
    /// Wraps an NCS thread context.
    pub fn new(ncs: &'a NcsCtx<'b>) -> Self {
        PvmFilter { ncs }
    }

    /// `pvm_mytid`: this process's task id.
    pub fn mytid(&self) -> usize {
        self.ncs.proc().id()
    }

    /// `pvm_send(tid, msgtag)` with the payload pre-packed (the pack/unpack
    /// buffer layer collapses to a byte payload here).
    pub fn send(&self, tid: usize, msgtag: u32, data: Bytes) {
        self.ncs.send(rank0(tid), msgtag, data);
    }

    /// `pvm_recv(tid, msgtag)` — `None` is PVM's `-1` wildcard.
    pub fn recv(&self, tid: Option<usize>, msgtag: Option<u32>) -> (usize, u32, Bytes) {
        let m = self.ncs.recv(tid, None, msgtag);
        (m.from.proc, m.tag, m.data)
    }

    /// `pvm_mcast` to an explicit task list.
    pub fn mcast(&self, tids: &[usize], msgtag: u32, data: Bytes) {
        for &t in tids {
            if t != self.mytid() {
                self.ncs.send(rank0(t), msgtag, data.clone());
            }
        }
    }
}

/// MPI-style interface over `MPI_COMM_WORLD` (`MPI_Send` / `MPI_Recv` /
/// `MPI_Bcast` semantics on byte buffers).
pub struct MpiFilter<'a, 'b> {
    ncs: &'a NcsCtx<'b>,
}

/// MPI's `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: Option<usize> = None;
/// MPI's `MPI_ANY_TAG`.
pub const ANY_TAG: Option<u32> = None;

impl<'a, 'b> MpiFilter<'a, 'b> {
    /// Wraps an NCS thread context.
    pub fn new(ncs: &'a NcsCtx<'b>) -> Self {
        MpiFilter { ncs }
    }

    /// `MPI_Comm_rank(MPI_COMM_WORLD, ..)`.
    pub fn rank(&self) -> usize {
        self.ncs.proc().id()
    }

    /// `MPI_Comm_size(MPI_COMM_WORLD, ..)`.
    pub fn size(&self) -> usize {
        self.ncs.proc().num_procs()
    }

    /// `MPI_Send(buf, dest, tag, MPI_COMM_WORLD)`.
    pub fn send(&self, dest: usize, tag: u32, data: Bytes) {
        self.ncs.send(rank0(dest), tag, data);
    }

    /// `MPI_Recv` returning `(source, tag, data)`.
    pub fn recv(&self, source: Option<usize>, tag: Option<u32>) -> (usize, u32, Bytes) {
        let m: NcsMsg = self.ncs.recv(source, None, tag);
        (m.from.proc, m.tag, m.data)
    }

    /// `MPI_Bcast`: collective — every rank calls it; the root's buffer is
    /// returned at every rank.
    pub fn bcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        const BCAST_TAG: u32 = crate::group::GROUP_TAG_BASE + 16;
        if self.rank() == root {
            let data = data.expect("root must supply the bcast buffer");
            for p in 0..self.size() {
                if p != root {
                    self.ncs.send(rank0(p), BCAST_TAG, data.clone());
                }
            }
            data
        } else {
            self.ncs.recv(Some(root), None, Some(BCAST_TAG)).data
        }
    }

    /// `MPI_Barrier(MPI_COMM_WORLD)`: collective over all ranks' thread 0.
    pub fn barrier(&self) {
        let parties: Vec<ThreadAddr> = (0..self.size()).map(rank0).collect();
        self.ncs.barrier(&parties);
    }
}

/// PVM's typed pack buffer (`pvm_initsend` + `pvm_pk*`): values are packed
/// into a byte stream in call order and unpacked with matching `upk_*`
/// calls on the receiving side. Little-endian "raw" encoding (PvmDataRaw).
#[derive(Default, Clone, Debug)]
pub struct PvmPackBuf {
    data: Vec<u8>,
}

impl PvmPackBuf {
    /// `pvm_initsend(PvmDataRaw)`.
    pub fn new() -> PvmPackBuf {
        PvmPackBuf::default()
    }

    /// `pvm_pkint`.
    pub fn pk_int(&mut self, v: i32) -> &mut Self {
        self.data.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// `pvm_pkdouble`.
    pub fn pk_double(&mut self, v: f64) -> &mut Self {
        self.data.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// `pvm_pkdouble` over an array.
    pub fn pk_doubles(&mut self, vs: &[f64]) -> &mut Self {
        self.pk_int(vs.len() as i32);
        for v in vs {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// `pvm_pkstr`.
    pub fn pk_str(&mut self, s: &str) -> &mut Self {
        self.pk_int(s.len() as i32);
        self.data.extend_from_slice(s.as_bytes());
        self
    }

    /// Finalizes the buffer into a payload.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// PVM's unpack cursor over a received payload.
pub struct PvmUnpackBuf {
    data: Bytes,
    pos: usize,
}

impl PvmUnpackBuf {
    /// Wraps a received payload.
    pub fn new(data: Bytes) -> PvmUnpackBuf {
        PvmUnpackBuf { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.pos + n <= self.data.len(), "unpack past end of buffer");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// `pvm_upkint`.
    pub fn upk_int(&mut self) -> i32 {
        i32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// `pvm_upkdouble`.
    pub fn upk_double(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Unpacks a double array packed with [`PvmPackBuf::pk_doubles`].
    pub fn upk_doubles(&mut self) -> Vec<f64> {
        let n = self.upk_int() as usize;
        (0..n).map(|_| self.upk_double()).collect()
    }

    /// `pvm_upkstr`.
    pub fn upk_str(&mut self) -> String {
        let n = self.upk_int() as usize;
        String::from_utf8(self.take(n).to_vec()).expect("packed string was UTF-8")
    }

    /// Bytes not yet unpacked.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod pack_tests {
    use super::*;

    #[test]
    fn pack_unpack_mixed_sequence() {
        let mut b = PvmPackBuf::new();
        b.pk_int(-7)
            .pk_double(2.5)
            .pk_str("hello pvm")
            .pk_doubles(&[1.0, -2.0, 3.5]);
        let mut u = PvmUnpackBuf::new(b.into_bytes());
        assert_eq!(u.upk_int(), -7);
        assert_eq!(u.upk_double(), 2.5);
        assert_eq!(u.upk_str(), "hello pvm");
        assert_eq!(u.upk_doubles(), vec![1.0, -2.0, 3.5]);
        assert_eq!(u.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "unpack past end")]
    fn overrun_detected() {
        let mut u = PvmUnpackBuf::new(Bytes::from_static(&[1, 2]));
        u.upk_int();
    }

    #[test]
    fn empty_buffer_roundtrip() {
        let b = PvmPackBuf::new();
        let u = PvmUnpackBuf::new(b.into_bytes());
        assert_eq!(u.remaining(), 0);
    }
}
