//! # ncs-core — the NYNET Communication System
//!
//! The paper's primary contribution: a multithreaded message-passing
//! environment in which `NCS_send`/`NCS_recv` block only the calling
//! user-level thread, letting computation and communication overlap.
//!
//! * [`mod@env`] — `NCS_init` / `NCS_t_create` / `NCS_start`, the send and
//!   receive system threads, credit flow control, signals and barriers
//!   (paper Sections 3–4, Figures 8 and 10);
//! * [`world`] — whole-computation launcher;
//! * [`addr`] — `(thread, process)` addressing and wire tags;
//! * [`filters`] — the message-passing filters of Figure 6: p4-, PVM- and
//!   MPI-style interfaces mapped onto NCS primitives;
//! * [`group`] — group communication (1-to-many, many-to-1, many-to-many)
//!   built on the point-to-point core;
//! * [`faulty`] — a corrupting transport wrapper plus NCS checksum /
//!   retransmit error control;
//! * [`codec`] — payload marshalling for the benchmark applications.
//!
//! Both of the paper's NCS_MPS implementations are available by choosing
//! the transport: Approach 1 (over p4-style TCP) via
//! [`ncs_net::TcpNet`], Approach 2 (over the ATM API) via
//! [`ncs_net::AtmApiNet`]; a process may carry both tiers at once (NSM +
//! HSM) and pick per message with [`env::NcsCtx::send_via`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod codec;
pub mod env;
pub mod faulty;
pub mod filters;
pub mod group;
pub mod real;
pub mod world;

pub use addr::{MsgClass, ThreadAddr};
pub use env::{
    causal_component, ErrorControl, ErrorStats, FlowControl, NcsConfig, NcsCtx, NcsException,
    NcsMsg, NcsProc, PeerRto, RtoConfig, CAUSAL_STAGES, EXC_DELIVERY_FAILED,
};
pub use world::NcsWorld;
