//! A real (non-simulated) NCS runtime over TCP sockets.
//!
//! Everything else in this workspace runs on virtual time to reproduce the
//! paper's 1995 measurements. This module is the part you can use today:
//! the same `(thread, process)` addressing, tagged sends, wildcard
//! receives, broadcast and barrier — over `std::net` TCP and OS threads,
//! suitable for localhost or LAN deployments.
//!
//! Mapping to the paper: OS threads play the MTS compute threads (a modern
//! kernel schedules them preemptively, giving the computation/
//! communication overlap NCS built user-level machinery for); one reader
//! thread per peer plays the receive system thread; senders write framed
//! messages directly (the kernel socket buffer plays the send thread).
//!
//! ```no_run
//! use ncs_core::real::RealNcs;
//! use ncs_core::ThreadAddr;
//!
//! // Process 0 of 2 (process 1 runs the mirror image elsewhere):
//! let addrs = ["127.0.0.1:7401".parse().unwrap(), "127.0.0.1:7402".parse().unwrap()];
//! let ncs = RealNcs::connect(0, &addrs).unwrap();
//! ncs.send(0, ThreadAddr::new(1, 0), 7, b"hello").unwrap();
//! let reply = ncs.recv(Some(1), None, None).unwrap();
//! assert_eq!(reply.tag, 8);
//! ```

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::addr::{decode_tag, encode_tag, MsgClass, ThreadAddr};

/// Errors from the real-TCP backend, separating transport failures from
/// protocol violations so callers can react (retry, drop a peer, abort)
/// instead of unwinding on an `unwrap`.
#[derive(Debug)]
pub enum RealError {
    /// An underlying socket operation failed.
    Io(io::Error),
    /// Dialing a peer did not succeed within the mesh-formation timeout.
    DialTimedOut {
        /// Rank that could not be reached.
        peer: usize,
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The last connect error observed.
        last: io::Error,
    },
    /// A peer violated the mesh handshake (bad or duplicate rank
    /// announcement).
    Handshake(String),
    /// No connection to the addressed peer exists (it was never part of
    /// the mesh, or its rank is out of range).
    NotConnected {
        /// The unreachable rank.
        peer: usize,
    },
    /// Every peer has disconnected while no matching message is buffered.
    AllPeersDisconnected,
}

impl std::fmt::Display for RealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealError::Io(e) => write!(f, "I/O error: {e}"),
            RealError::DialTimedOut {
                peer,
                attempts,
                last,
            } => write!(
                f,
                "timed out dialing rank {peer} after {attempts} attempts: {last}"
            ),
            RealError::Handshake(msg) => write!(f, "mesh handshake violation: {msg}"),
            RealError::NotConnected { peer } => write!(f, "no connection to rank {peer}"),
            RealError::AllPeersDisconnected => write!(f, "all peers disconnected"),
        }
    }
}

impl std::error::Error for RealError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RealError::Io(e) | RealError::DialTimedOut { last: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RealError {
    fn from(e: io::Error) -> RealError {
        RealError::Io(e)
    }
}

/// Result type of the real-TCP backend.
pub type RealResult<T> = Result<T, RealError>;

/// First delay between connect attempts while the mesh forms; doubles per
/// failure up to [`DIAL_BACKOFF_MAX`].
const DIAL_BACKOFF_START: Duration = Duration::from_millis(10);
/// Ceiling for the connect-retry backoff.
const DIAL_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// A received message.
#[derive(Clone, Debug)]
pub struct RealMsg {
    /// Sending endpoint.
    pub from: ThreadAddr,
    /// Destination thread id the sender addressed.
    pub to_thread: u32,
    /// User tag.
    pub tag: u32,
    /// Payload.
    pub data: Vec<u8>,
}

struct Shared {
    stash: Mutex<SharedState>,
    cv: Condvar,
}

struct SharedState {
    msgs: VecDeque<RealMsg>,
    /// Peers whose reader thread has terminated (EOF or error).
    dead_peers: usize,
    n_peers: usize,
}

/// One process endpoint of a real NCS deployment.
pub struct RealNcs {
    id: usize,
    n: usize,
    writers: Vec<Option<Mutex<TcpStream>>>,
    shared: Arc<Shared>,
    readers: Vec<std::thread::JoinHandle<()>>,
}

const FRAME_MAGIC: u32 = 0x4E43_5331; // "NCS1"
/// Refuse frames beyond this size (corrupt stream guard).
pub const MAX_FRAME: usize = 256 * 1024 * 1024;

impl RealNcs {
    /// Establishes the full mesh for process `id` of `addrs.len()`:
    /// listens on `addrs[id]`, connects to every lower rank, accepts from
    /// every higher rank. All processes must call this with the same
    /// address list; the call returns once the mesh is complete.
    pub fn connect(id: usize, addrs: &[SocketAddr]) -> RealResult<RealNcs> {
        Self::connect_timeout(id, addrs, Duration::from_secs(30))
    }

    /// [`RealNcs::connect`] with an explicit mesh-formation timeout.
    ///
    /// Dial attempts toward not-yet-listening peers are retried with
    /// exponential backoff (starting at 10 ms, capped at 500 ms) until the
    /// timeout elapses, then fail with [`RealError::DialTimedOut`].
    pub fn connect_timeout(
        id: usize,
        addrs: &[SocketAddr],
        timeout: Duration,
    ) -> RealResult<RealNcs> {
        let n = addrs.len();
        assert!(id < n, "rank out of range");
        let deadline = Instant::now() + timeout;
        let listener = TcpListener::bind(addrs[id])?;
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Deterministic mesh: dial lower ranks (retrying until they are
        // up), accept higher ranks. Each dialer announces its rank.
        for peer in 0..id {
            let mut backoff = DIAL_BACKOFF_START;
            let mut attempts = 0u32;
            let stream = loop {
                attempts += 1;
                match TcpStream::connect(addrs[peer]) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() > deadline {
                            return Err(RealError::DialTimedOut {
                                peer,
                                attempts,
                                last: e,
                            });
                        }
                        std::thread::sleep(backoff.min(deadline.saturating_duration_since(
                            Instant::now(),
                        )));
                        backoff = (backoff * 2).min(DIAL_BACKOFF_MAX);
                    }
                }
            };
            stream.set_nodelay(true)?;
            let mut s = stream;
            s.write_all(&(id as u32).to_le_bytes())?;
            streams[peer] = Some(s);
        }
        for _ in id + 1..n {
            let (mut s, _) = listener.accept()?;
            s.set_nodelay(true)?;
            let mut rank_buf = [0u8; 4];
            s.read_exact(&mut rank_buf)?;
            let peer = u32::from_le_bytes(rank_buf) as usize;
            if peer <= id || peer >= n || streams[peer].is_some() {
                return Err(RealError::Handshake(format!(
                    "unexpected rank announcement {peer}"
                )));
            }
            streams[peer] = Some(s);
        }

        let shared = Arc::new(Shared {
            stash: Mutex::new(SharedState {
                msgs: VecDeque::new(),
                dead_peers: 0,
                n_peers: n - 1,
            }),
            cv: Condvar::new(),
        });
        let mut writers: Vec<Option<Mutex<TcpStream>>> = (0..n).map(|_| None).collect();
        let mut readers = Vec::new();
        for (peer, s) in streams.into_iter().enumerate() {
            let Some(stream) = s else { continue };
            let reader = stream.try_clone()?;
            writers[peer] = Some(Mutex::new(stream));
            let shared2 = Arc::clone(&shared);
            readers.push(
                std::thread::Builder::new()
                    .name(format!("ncs-real-rx-{id}-from-{peer}"))
                    .spawn(move || reader_loop(reader, peer, shared2))?,
            );
        }
        Ok(RealNcs {
            id,
            n,
            writers,
            shared,
            readers,
        })
    }

    /// This process's rank.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of processes in the mesh.
    pub fn num_procs(&self) -> usize {
        self.n
    }

    /// Sends `data` from local thread `from_thread` to endpoint `to`.
    /// Thread-safe: concurrent senders serialize per destination socket.
    pub fn send(&self, from_thread: u32, to: ThreadAddr, tag: u32, data: &[u8]) -> RealResult<()> {
        self.send_class(MsgClass::Data, from_thread, to, tag, data)
    }

    fn send_class(
        &self,
        class: MsgClass,
        from_thread: u32,
        to: ThreadAddr,
        tag: u32,
        data: &[u8],
    ) -> RealResult<()> {
        if to.proc >= self.n {
            return Err(RealError::NotConnected { peer: to.proc });
        }
        if to.proc == self.id {
            // Local delivery (threads share the address space).
            let mut st = self.shared.stash.lock();
            st.msgs.push_back(RealMsg {
                from: ThreadAddr::new(self.id, from_thread),
                to_thread: to.thread,
                tag,
                data: data.to_vec(),
            });
            self.shared.cv.notify_all();
            return Ok(());
        }
        let writer = self.writers[to.proc]
            .as_ref()
            .ok_or(RealError::NotConnected { peer: to.proc })?;
        let wire_tag = encode_tag(class, from_thread, to.thread, tag);
        let mut w = writer.lock();
        w.write_all(&FRAME_MAGIC.to_le_bytes())?;
        w.write_all(&(data.len() as u32).to_le_bytes())?;
        w.write_all(&wire_tag.to_le_bytes())?;
        w.write_all(&(self.id as u32).to_le_bytes())?;
        w.write_all(data)?;
        Ok(())
    }

    /// Receives the oldest message matching the filters, blocking the
    /// calling OS thread. Returns an error if every peer disconnected
    /// while no matching message is buffered.
    pub fn recv(
        &self,
        from_proc: Option<usize>,
        from_thread: Option<u32>,
        tag: Option<u32>,
    ) -> RealResult<RealMsg> {
        self.recv_to(None, from_proc, from_thread, tag)
    }

    /// Like [`RealNcs::recv`] but also filtering on the addressed local
    /// thread id (`to_thread`), for multithreaded receivers.
    pub fn recv_to(
        &self,
        to_thread: Option<u32>,
        from_proc: Option<usize>,
        from_thread: Option<u32>,
        tag: Option<u32>,
    ) -> RealResult<RealMsg> {
        let mut st = self.shared.stash.lock();
        loop {
            let pos = st.msgs.iter().position(|m| {
                to_thread.is_none_or(|t| t == m.to_thread)
                    && from_proc.is_none_or(|p| p == m.from.proc)
                    && from_thread.is_none_or(|t| t == m.from.thread)
                    && tag.is_none_or(|t| t == m.tag)
            });
            if let Some(pos) = pos {
                return Ok(st.msgs.remove(pos).expect("position just found"));
            }
            if st.dead_peers == st.n_peers {
                return Err(RealError::AllPeersDisconnected);
            }
            self.shared.cv.wait(&mut st);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(
        &self,
        from_proc: Option<usize>,
        from_thread: Option<u32>,
        tag: Option<u32>,
    ) -> Option<RealMsg> {
        let mut st = self.shared.stash.lock();
        let pos = st.msgs.iter().position(|m| {
            from_proc.is_none_or(|p| p == m.from.proc)
                && from_thread.is_none_or(|t| t == m.from.thread)
                && tag.is_none_or(|t| t == m.tag)
        })?;
        st.msgs.remove(pos)
    }

    /// Sends to every other process's thread 0.
    pub fn bcast(&self, from_thread: u32, tag: u32, data: &[u8]) -> RealResult<()> {
        for p in 0..self.n {
            if p != self.id {
                self.send(from_thread, ThreadAddr::new(p, 0), tag, data)?;
            }
        }
        Ok(())
    }

    /// Global barrier over all processes (rank 0 collects and releases).
    pub fn barrier(&self) -> RealResult<()> {
        const TAG_ARRIVE: u32 = u32::MAX - 1;
        const TAG_GO: u32 = u32::MAX;
        if self.n == 1 {
            return Ok(());
        }
        if self.id == 0 {
            for _ in 1..self.n {
                self.recv(None, None, Some(TAG_ARRIVE))?;
            }
            self.bcast(0, TAG_GO, &[])?;
        } else {
            self.send(0, ThreadAddr::new(0, 0), TAG_ARRIVE, &[])?;
            self.recv(Some(0), None, Some(TAG_GO))?;
        }
        Ok(())
    }

    /// Closes all connections; reader threads terminate on EOF.
    pub fn shutdown(mut self) {
        for w in self.writers.iter().flatten() {
            let _ = w.lock().shutdown(std::net::Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

fn reader_loop(mut stream: TcpStream, peer: usize, shared: Arc<Shared>) {
    let result = (|| -> io::Result<()> {
        loop {
            let mut header = [0u8; 4 + 4 + 8 + 4];
            if let Err(e) = stream.read_exact(&mut header) {
                return if e.kind() == io::ErrorKind::UnexpectedEof {
                    Ok(()) // orderly shutdown
                } else {
                    Err(e)
                };
            }
            let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
            if magic != FRAME_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad frame magic",
                ));
            }
            let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
            if len > MAX_FRAME {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "oversized frame",
                ));
            }
            let wire_tag = u64::from_le_bytes(header[8..16].try_into().unwrap());
            let from_proc = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
            if from_proc != peer {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "rank mismatch"));
            }
            let mut data = vec![0u8; len];
            stream.read_exact(&mut data)?;
            let (_class, from_thread, to_thread, tag) = decode_tag(wire_tag);
            let mut st = shared.stash.lock();
            st.msgs.push_back(RealMsg {
                from: ThreadAddr::new(from_proc, from_thread),
                to_thread,
                tag,
                data,
            });
            shared.cv.notify_all();
        }
    })();
    let mut st = shared.stash.lock();
    st.dead_peers += 1;
    shared.cv.notify_all();
    if let Err(e) = result {
        eprintln!("ncs-real: reader for peer {peer} failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};
    use std::sync::atomic::{AtomicU16, Ordering};

    /// Allocates a batch of distinct loopback addresses on free ports.
    fn free_addrs(n: usize) -> Vec<SocketAddr> {
        static NEXT: AtomicU16 = AtomicU16::new(0);
        let _ = NEXT.fetch_add(n as u16, Ordering::SeqCst);
        (0..n)
            .map(|_| {
                // Bind to port 0 to get a free port, then release it.
                let l = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
                l.local_addr().unwrap()
            })
            .collect()
    }

    fn mesh(n: usize) -> Vec<RealNcs> {
        let addrs = free_addrs(n);
        let mut handles = Vec::new();
        for id in 0..n {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                RealNcs::connect_timeout(id, &addrs, Duration::from_secs(10)).unwrap()
            }));
        }
        let mut nodes: Vec<Option<RealNcs>> = (0..n).map(|_| None).collect();
        for (i, h) in handles.into_iter().enumerate() {
            nodes[i] = Some(h.join().unwrap());
        }
        nodes.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn two_process_ping_pong() {
        let mut nodes = mesh(2);
        let n1 = nodes.pop().unwrap();
        let n0 = nodes.pop().unwrap();
        let t1 = std::thread::spawn(move || {
            let m = n1.recv(Some(0), None, Some(1)).unwrap();
            assert_eq!(&m.data, b"ping");
            assert_eq!(m.from, ThreadAddr::new(0, 3));
            n1.send(0, ThreadAddr::new(0, 3), 2, b"pong").unwrap();
            n1.shutdown();
        });
        n0.send(3, ThreadAddr::new(1, 0), 1, b"ping").unwrap();
        let m = n0.recv(Some(1), None, Some(2)).unwrap();
        assert_eq!(&m.data, b"pong");
        n0.shutdown();
        t1.join().unwrap();
    }

    #[test]
    fn broadcast_and_barrier_three_ways() {
        let nodes = mesh(3);
        let mut joins = Vec::new();
        for node in nodes {
            joins.push(std::thread::spawn(move || {
                if node.id() == 0 {
                    node.bcast(0, 42, b"fanout").unwrap();
                } else {
                    let m = node.recv(Some(0), None, Some(42)).unwrap();
                    assert_eq!(&m.data, b"fanout");
                }
                node.barrier().unwrap();
                node.barrier().unwrap(); // barriers are reusable
                node.shutdown();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn large_message_integrity() {
        let mut nodes = mesh(2);
        let n1 = nodes.pop().unwrap();
        let n0 = nodes.pop().unwrap();
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let t = std::thread::spawn(move || {
            let m = n1.recv(Some(0), None, None).unwrap();
            assert_eq!(m.data.len(), expect.len());
            assert_eq!(m.data, expect);
            n1.shutdown();
        });
        n0.send(0, ThreadAddr::new(1, 0), 9, &payload).unwrap();
        n0.shutdown();
        t.join().unwrap();
    }

    #[test]
    fn local_send_between_threads() {
        let mut nodes = mesh(2);
        let n1 = nodes.pop().unwrap();
        let n0 = nodes.pop().unwrap();
        n0.send(0, ThreadAddr::new(0, 1), 5, b"local").unwrap();
        let m = n0.recv_to(Some(1), Some(0), Some(0), Some(5)).unwrap();
        assert_eq!(&m.data, b"local");
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn overlap_compute_and_recv_with_os_threads() {
        // The paper's headline property, for free from the OS scheduler:
        // one thread computes while another blocks in recv.
        let mut nodes = mesh(2);
        let n1 = Arc::new(nodes.pop().unwrap());
        let n0 = nodes.pop().unwrap();
        let n1b = Arc::clone(&n1);
        let receiver = std::thread::spawn(move || {
            let m = n1b.recv(Some(0), None, Some(7)).unwrap();
            assert_eq!(&m.data, b"late");
        });
        let computer = std::thread::spawn(move || {
            // Busy work that must finish long before the late message.
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            acc
        });
        let acc = computer.join().unwrap();
        assert_ne!(acc, 0);
        std::thread::sleep(Duration::from_millis(50));
        n0.send(0, ThreadAddr::new(1, 0), 7, b"late").unwrap();
        receiver.join().unwrap();
        n0.shutdown();
        match Arc::try_unwrap(n1) {
            Ok(n1) => n1.shutdown(),
            Err(_) => panic!("receiver still holds the endpoint"),
        }
    }

    #[test]
    fn dial_timeout_is_typed_and_backed_off() {
        // Nobody listens on rank 0's address (free_addrs released it), so
        // rank 1's dial loop retries with backoff until the deadline.
        let addrs = free_addrs(2);
        match RealNcs::connect_timeout(1, &addrs, Duration::from_millis(200)) {
            Err(RealError::DialTimedOut { peer, attempts, .. }) => {
                assert_eq!(peer, 0);
                assert!(attempts >= 2, "expected retries, got {attempts}");
            }
            Err(other) => panic!("expected DialTimedOut, got {other}"),
            Ok(_) => panic!("mesh cannot form without rank 0"),
        }
    }

    #[test]
    fn send_to_unknown_rank_is_typed() {
        let mut nodes = mesh(2);
        let n1 = nodes.pop().unwrap();
        let n0 = nodes.pop().unwrap();
        match n0.send(0, ThreadAddr::new(5, 0), 1, b"x") {
            Err(RealError::NotConnected { peer: 5 }) => {}
            other => panic!("expected NotConnected, got {other:?}"),
        }
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn recv_after_all_peers_gone_is_typed() {
        let mut nodes = mesh(2);
        let n1 = nodes.pop().unwrap();
        let n0 = nodes.pop().unwrap();
        n1.shutdown();
        match n0.recv(Some(1), None, None) {
            Err(RealError::AllPeersDisconnected) => {}
            other => panic!("expected AllPeersDisconnected, got {other:?}"),
        }
        n0.shutdown();
    }

    #[test]
    fn wildcard_filters() {
        let mut nodes = mesh(2);
        let n1 = nodes.pop().unwrap();
        let n0 = nodes.pop().unwrap();
        n0.send(0, ThreadAddr::new(1, 0), 10, b"a").unwrap();
        n0.send(1, ThreadAddr::new(1, 0), 20, b"b").unwrap();
        // Tag filter skips the earlier message.
        let m = n1.recv(None, None, Some(20)).unwrap();
        assert_eq!(&m.data, b"b");
        assert_eq!(m.from.thread, 1);
        let m = n1.recv(None, Some(0), None).unwrap();
        assert_eq!(&m.data, b"a");
        n0.shutdown();
        n1.shutdown();
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use std::time::Duration;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|_| {
                TcpListener::bind("127.0.0.1:0")
                    .unwrap()
                    .local_addr()
                    .unwrap()
            })
            .collect()
    }

    use std::net::TcpListener;

    #[test]
    fn five_node_all_to_all_stress() {
        const N: usize = 5;
        const ROUNDS: u32 = 20;
        let addrs = addrs(N);
        let mut joins = Vec::new();
        for id in 0..N {
            let addrs = addrs.clone();
            joins.push(std::thread::spawn(move || {
                let ncs = RealNcs::connect_timeout(id, &addrs, Duration::from_secs(10)).unwrap();
                for round in 0..ROUNDS {
                    // Everyone sends to everyone, then collects N-1 messages
                    // tagged with the round.
                    for peer in 0..N {
                        if peer != id {
                            let body = vec![(id * 41 + round as usize) as u8; 700];
                            ncs.send(0, ThreadAddr::new(peer, 0), round, &body).unwrap();
                        }
                    }
                    for _ in 0..N - 1 {
                        let m = ncs.recv(None, None, Some(round)).unwrap();
                        let want = (m.from.proc * 41 + round as usize) as u8;
                        assert!(m.data.iter().all(|&b| b == want));
                    }
                    ncs.barrier().unwrap();
                }
                ncs.shutdown();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn concurrent_senders_share_one_endpoint() {
        let addrs = addrs(2);
        let a0 = addrs.clone();
        let t0 = std::thread::spawn(move || {
            let ncs = Arc::new(RealNcs::connect_timeout(0, &a0, Duration::from_secs(10)).unwrap());
            // Four OS threads blast through the same socket mesh.
            let mut senders = Vec::new();
            for t in 0..4u32 {
                let ncs = Arc::clone(&ncs);
                senders.push(std::thread::spawn(move || {
                    for i in 0..50u32 {
                        ncs.send(t, ThreadAddr::new(1, 0), t * 1000 + i, &[t as u8; 64])
                            .unwrap();
                    }
                }));
            }
            for s in senders {
                s.join().unwrap();
            }
            let m = ncs.recv(Some(1), None, Some(9)).unwrap();
            assert_eq!(&m.data, b"done");
            match Arc::try_unwrap(ncs) {
                Ok(n) => n.shutdown(),
                Err(_) => panic!("endpoint still shared"),
            }
        });
        let a1 = addrs.clone();
        let t1 = std::thread::spawn(move || {
            let ncs = RealNcs::connect_timeout(1, &a1, Duration::from_secs(10)).unwrap();
            // 200 messages from 4 logical threads, FIFO per thread.
            let mut next = [0u32; 4];
            for _ in 0..200 {
                let m = ncs.recv(Some(0), None, None).unwrap();
                let t = m.from.thread as usize;
                assert_eq!(m.tag, m.from.thread * 1000 + next[t], "per-thread order");
                next[t] += 1;
            }
            ncs.send(0, ThreadAddr::new(0, 0), 9, b"done").unwrap();
            ncs.shutdown();
        });
        t0.join().unwrap();
        t1.join().unwrap();
    }
}
