//! Fault injection: a corrupting transport wrapper.
//!
//! ATM links in the field flip bits; AAL5's CRC-32 catches them at the
//! adaptation layer, but NCS's Normal Speed Mode can also ride transports
//! modeled as unreliable. [`FaultyNet`] wraps any [`Network`] and corrupts
//! message payloads with a configurable, seeded probability, so tests can
//! drive the NCS checksum/retransmit error-control thread end to end
//! ([`crate::env::ErrorControl::ChecksumRetransmit`]).

use bytes::Bytes;
use ncs_net::stack::WaitPolicy;
use ncs_net::{Delivery, HostParams, Network, NodeId};
use ncs_sim::{Ctx, Dur, SimChannel, SimRng};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transport decorator that corrupts one payload byte with probability
/// `p_corrupt`, and silently discards whole messages with probability
/// `p_drop`, per message. Deterministic under a fixed seed.
///
/// Faults are rolled per *transmission*, not per logical message: a
/// retransmission of the same frame draws fresh luck, which is what makes
/// timeout-driven recovery converge under partial loss.
pub struct FaultyNet {
    inner: Arc<dyn Network>,
    p_corrupt: f64,
    p_drop: f64,
    rng: Mutex<SimRng>,
    corrupted: AtomicU64,
    dropped: AtomicU64,
}

impl FaultyNet {
    /// Wraps `inner`, corrupting with probability `p_corrupt` (0..=1).
    pub fn new(inner: Arc<dyn Network>, p_corrupt: f64, seed: u64) -> FaultyNet {
        Self::with_loss(inner, p_corrupt, 0.0, seed)
    }

    /// Wraps `inner` with both corruption and loss.
    pub fn with_loss(inner: Arc<dyn Network>, p_corrupt: f64, p_drop: f64, seed: u64) -> FaultyNet {
        assert!((0.0..=1.0).contains(&p_corrupt));
        assert!((0.0..=1.0).contains(&p_drop));
        FaultyNet {
            inner,
            p_corrupt,
            p_drop,
            rng: Mutex::new(SimRng::new(seed)),
            corrupted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Messages corrupted so far.
    pub fn corrupted_count(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Messages silently discarded so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Network for FaultyNet {
    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn host(&self, node: NodeId) -> &HostParams {
        self.inner.host(node)
    }

    fn send(
        &self,
        ctx: &Ctx,
        policy: &dyn WaitPolicy,
        src: NodeId,
        dst: NodeId,
        tag: u64,
        payload: Bytes,
    ) {
        {
            let mut rng = self.rng.lock();
            if rng.gen_bool(self.p_drop) {
                // The message vanishes on the wire (a burst error past the
                // CRC budget, a dropped cell). Sender-side costs are
                // skipped with it — loss is rare enough that the timing
                // error is negligible, and the protocol-level consequences
                // (timeout, retransmit) are what the tests exercise.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let payload = {
            let mut rng = self.rng.lock();
            if !payload.is_empty() && rng.gen_bool(self.p_corrupt) {
                let mut v = payload.to_vec();
                let idx = rng.gen_index(v.len());
                v[idx] ^= 0x40;
                self.corrupted.fetch_add(1, Ordering::Relaxed);
                Bytes::from(v)
            } else {
                payload
            }
        };
        self.inner.send(ctx, policy, src, dst, tag, payload);
    }

    fn inbox(&self, node: NodeId) -> SimChannel<Delivery> {
        self.inner.inbox(node)
    }

    fn recv_pickup_cost(&self, node: NodeId, bytes: usize) -> Dur {
        self.inner.recv_pickup_cost(node, bytes)
    }

    fn recv_reaction_cost(&self, node: NodeId, bytes: usize) -> Dur {
        // Must delegate: the trait default is zero, which would silently
        // erase the wrapped transport's blocking-receiver latency.
        self.inner.recv_reaction_cost(node, bytes)
    }

    fn peer_unreachable(&self, src: NodeId, dst: NodeId, now: ncs_sim::SimTime) -> bool {
        // Must delegate: the trait default is "never partitioned", which
        // would hide the wrapped fabric's outage windows.
        self.inner.peer_unreachable(src, dst, now)
    }

    fn description(&self) -> String {
        format!(
            "{} with byte corruption p={}",
            self.inner.description(),
            self.p_corrupt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::stack::BlockingWait;
    use ncs_net::{IdealFabric, TcpNet, TcpParams};
    use ncs_sim::Sim;

    fn base_net(n: usize) -> Arc<dyn Network> {
        let fabric = Arc::new(IdealFabric::new(n, Dur::from_micros(5)));
        let hosts = (0..n).map(|_| HostParams::test_fast()).collect();
        Arc::new(TcpNet::new(fabric, hosts, TcpParams::ethernet()))
    }

    #[test]
    fn zero_probability_never_corrupts() {
        let net = Arc::new(FaultyNet::new(base_net(2), 0.0, 1));
        let sim = Sim::new();
        let n2 = Arc::clone(&net);
        sim.spawn("tx", move |ctx| {
            for _ in 0..50 {
                n2.send(
                    ctx,
                    &BlockingWait,
                    NodeId(0),
                    NodeId(1),
                    0,
                    Bytes::from_static(b"abc"),
                );
            }
        });
        let n3 = Arc::clone(&net);
        sim.spawn("rx", move |ctx| {
            let inbox = n3.inbox(NodeId(1));
            for _ in 0..50 {
                let d = inbox.recv(ctx).unwrap();
                assert_eq!(&d.payload[..], b"abc");
            }
        });
        sim.run().assert_clean();
        assert_eq!(net.corrupted_count(), 0);
    }

    #[test]
    fn certain_probability_always_corrupts() {
        let net = Arc::new(FaultyNet::new(base_net(2), 1.0, 2));
        let sim = Sim::new();
        let n2 = Arc::clone(&net);
        sim.spawn("tx", move |ctx| {
            n2.send(
                ctx,
                &BlockingWait,
                NodeId(0),
                NodeId(1),
                0,
                Bytes::from_static(b"abcd"),
            );
        });
        let n3 = Arc::clone(&net);
        sim.spawn("rx", move |ctx| {
            let d = n3.inbox(NodeId(1)).recv(ctx).unwrap();
            assert_ne!(&d.payload[..], b"abcd", "must be corrupted");
            assert_eq!(d.payload.len(), 4, "corruption preserves length");
        });
        sim.run().assert_clean();
        assert_eq!(net.corrupted_count(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let net = Arc::new(FaultyNet::new(base_net(2), 0.5, seed));
            let sim = Sim::new();
            let n2 = Arc::clone(&net);
            sim.spawn("tx", move |ctx| {
                for i in 0..100u8 {
                    n2.send(
                        ctx,
                        &BlockingWait,
                        NodeId(0),
                        NodeId(1),
                        0,
                        Bytes::from(vec![i; 16]),
                    );
                }
            });
            sim.run().assert_clean();
            net.corrupted_count()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(1234567), "different seeds should differ");
    }

    #[test]
    fn faults_rerolled_per_transmission() {
        // The same frame sent repeatedly (as a retransmitting sender would)
        // draws fresh luck each time: under p_drop = 0.5 some copies die and
        // some survive, rather than every copy sharing one verdict.
        let net = Arc::new(FaultyNet::with_loss(base_net(2), 0.0, 0.5, 42));
        let sim = Sim::new();
        let n2 = Arc::clone(&net);
        const COPIES: u64 = 64;
        sim.spawn("tx", move |ctx| {
            for _ in 0..COPIES {
                n2.send(
                    ctx,
                    &BlockingWait,
                    NodeId(0),
                    NodeId(1),
                    7,
                    Bytes::from_static(b"same frame"),
                );
            }
        });
        sim.run().assert_clean();
        let dropped = net.dropped_count();
        assert!(dropped > 0, "no copy was ever dropped");
        assert!(dropped < COPIES, "every copy was dropped");
    }

    #[test]
    fn reaction_cost_delegates_to_inner() {
        let inner = base_net(2);
        let wrapped = FaultyNet::new(Arc::clone(&inner), 0.5, 9);
        for bytes in [0usize, 1 << 10, 1 << 20] {
            assert_eq!(
                wrapped.recv_reaction_cost(NodeId(1), bytes),
                inner.recv_reaction_cost(NodeId(1), bytes),
                "reaction cost must pass through for {bytes} bytes"
            );
        }
    }

    #[test]
    fn empty_payloads_pass_untouched() {
        let net = Arc::new(FaultyNet::new(base_net(2), 1.0, 3));
        let sim = Sim::new();
        let n2 = Arc::clone(&net);
        sim.spawn("tx", move |ctx| {
            n2.send(ctx, &BlockingWait, NodeId(0), NodeId(1), 9, Bytes::new());
        });
        sim.run().assert_clean();
        assert_eq!(net.corrupted_count(), 0);
    }
}
