//! Launching a whole NCS computation (the paper's Figure 10 generic model,
//! once per process).

use ncs_net::Network;
use ncs_sim::Sim;
use std::sync::Arc;

use crate::env::{NcsConfig, NcsProc, TermBarrier};

/// Spawns `n` NCS processes on `nets` (tier 0 first). For each process, the
/// `setup` closure runs on the process main thread and creates its user
/// threads (`NCS_t_create`); then the process starts (`NCS_start`) and runs
/// to completion. Returns the process handles.
///
/// ```
/// use ncs_core::{NcsWorld, NcsConfig};
/// use ncs_net::Testbed;
/// use ncs_sim::Sim;
/// use bytes::Bytes;
///
/// let sim = Sim::new();
/// let net = Testbed::SunAtmLanTcp.build(2);
/// NcsWorld::launch(&sim, vec![net], 2, NcsConfig::default(), |id, proc_| {
///     proc_.t_create("worker", 5, move |ncs| {
///         if ncs.proc().id() == 0 {
///             ncs.send(ncs_core::ThreadAddr::new(1, 0), 7, Bytes::from_static(b"hi"));
///         } else {
///             let m = ncs.recv_any();
///             assert_eq!(m.tag, 7);
///         }
///     });
///     let _ = id;
/// });
/// sim.run().assert_clean();
/// ```
pub struct NcsWorld {
    procs: Vec<NcsProc>,
}

impl NcsWorld {
    /// Builds and schedules the computation; run the simulation to execute.
    pub fn launch(
        sim: &Sim,
        nets: Vec<Arc<dyn Network>>,
        n: usize,
        config: NcsConfig,
        setup: impl Fn(usize, &NcsProc) + Send + Sync + 'static,
    ) -> NcsWorld {
        assert!(n >= 1);
        let setup = Arc::new(setup);
        // `NCS_end` is collective: a locally-finished process lingers at
        // this barrier (still re-ACKing duplicate frames) until every peer
        // is quiescent, so a lost final acknowledgment never leaves a peer
        // retransmitting at a torn-down receiver.
        let term = TermBarrier::new(n);
        let mut procs = Vec::with_capacity(n);
        for id in 0..n {
            let proc_ = NcsProc::init_collective(sim, id, n, nets.clone(), config.clone(), &term);
            procs.push(proc_.clone());
            let setup = Arc::clone(&setup);
            sim.spawn(format!("proc{id}-main"), move |ctx| {
                setup(id, &proc_);
                proc_.start(ctx);
            });
        }
        NcsWorld { procs }
    }

    /// Handles of the launched processes.
    pub fn procs(&self) -> &[NcsProc] {
        &self.procs
    }
}
